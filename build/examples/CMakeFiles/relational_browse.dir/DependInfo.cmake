
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/relational_browse.cc" "examples/CMakeFiles/relational_browse.dir/relational_browse.cc.o" "gcc" "examples/CMakeFiles/relational_browse.dir/relational_browse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/pathexpr/CMakeFiles/mix_pathexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/rdb/CMakeFiles/mix_rdb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mix_net.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/mix_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/wrappers/CMakeFiles/mix_wrappers.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/mix_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/xmas/CMakeFiles/mix_xmas.dir/DependInfo.cmake"
  "/root/repo/build/src/mediator/CMakeFiles/mix_mediator.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/mix_client.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
