file(REMOVE_RECURSE
  "CMakeFiles/relational_browse.dir/relational_browse.cc.o"
  "CMakeFiles/relational_browse.dir/relational_browse.cc.o.d"
  "relational_browse"
  "relational_browse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_browse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
