# Empty dependencies file for relational_browse.
# This may be replaced when dependencies are built.
