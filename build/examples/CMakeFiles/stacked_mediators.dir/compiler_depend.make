# Empty compiler generated dependencies file for stacked_mediators.
# This may be replaced when dependencies are built.
