file(REMOVE_RECURSE
  "CMakeFiles/stacked_mediators.dir/stacked_mediators.cc.o"
  "CMakeFiles/stacked_mediators.dir/stacked_mediators.cc.o.d"
  "stacked_mediators"
  "stacked_mediators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacked_mediators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
