// A BBQ-flavored interactive browser (paper Sections 5-6: "the DTD-oriented
// query interface BBQ which blends browsing and querying of XML data").
//
// Navigates the Fig. 3 virtual answer view with single-letter DOM-VXD
// commands read from stdin, printing the per-command *source navigation*
// cost — so you can watch the lazy mediator at work:
//
//   d            down (first child)
//   r            right sibling
//   s <label>    σ: next sibling with the given label
//   u            up (client-side breadcrumb stack)
//   p            print the subtree under the cursor (explores it!)
//   q            quit
//
// Try:  echo "d p r p q" | ./bbq_browse
#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "client/client.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;

void PrintSubtree(const client::XmlElement& e, int depth) {
  std::printf("%*s%s\n", depth * 2, "", e.Name().c_str());
  for (client::XmlElement c = e.FirstChild(); !c.IsNull();
       c = c.NextSibling()) {
    PrintSubtree(c, depth + 1);
  }
}

}  // namespace

int main() {
  auto homes = xml::MakeHomesDoc(100, 20);
  auto schools = xml::MakeSchoolsDoc(100, 20);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  NavStats stats;
  CountingNavigable hc(&homes_nav, &stats);
  CountingNavigable sc(&schools_nav, &stats);

  auto query = xmas::ParseQuery(R"(
    CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
    WHERE homesSrc homes.home $H AND $H zip._ $V1
      AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2
  )").ValueOrDie();
  auto plan = mediator::TranslateQuery(query).ValueOrDie();
  mediator::SourceRegistry sources;
  sources.Register("homesSrc", &hc);
  sources.Register("schoolsSrc", &sc);
  auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();

  client::VirtualXmlDocument vdoc(med->document());
  std::vector<client::XmlElement> breadcrumbs;
  client::XmlElement cursor = vdoc.Root();
  std::printf("browsing virtual <%s> — commands: d r s<label> u p q\n",
              cursor.Name().c_str());

  std::string cmd;
  while (std::cin >> cmd) {
    int64_t before = stats.total();
    if (cmd == "q") break;
    if (cmd == "d") {
      client::XmlElement child = cursor.FirstChild();
      if (child.IsNull()) {
        std::printf("  (leaf)\n");
      } else {
        breadcrumbs.push_back(cursor);
        cursor = child;
      }
    } else if (cmd == "r") {
      client::XmlElement sib = cursor.NextSibling();
      if (sib.IsNull()) {
        std::printf("  (no right sibling)\n");
      } else {
        cursor = sib;
      }
    } else if (cmd == "s") {
      std::string label;
      if (!(std::cin >> label)) break;
      client::XmlElement hit = cursor.SelectSibling(label);
      if (hit.IsNull()) {
        std::printf("  (no later sibling <%s>)\n", label.c_str());
      } else {
        cursor = hit;
      }
    } else if (cmd == "u") {
      if (breadcrumbs.empty()) {
        std::printf("  (at root)\n");
      } else {
        cursor = breadcrumbs.back();
        breadcrumbs.pop_back();
      }
    } else if (cmd == "p") {
      PrintSubtree(cursor, 1);
    } else {
      std::printf("  ? unknown command '%s'\n", cmd.c_str());
      continue;
    }
    std::printf("@ <%s>  [+%lld source navs, %lld total]\n",
                cursor.Name().c_str(),
                static_cast<long long>(stats.total() - before),
                static_cast<long long>(stats.total()));
  }
  std::printf("session done: %s\n", stats.ToString().c_str());
  return 0;
}
