// Browsing a relational database through the VXD stack (paper Section 4,
// Fig. 6): mini-SQL query views exported as XML, chunked LXP fills, and
// the granularity trade-off (messages vs. bytes) as the chunk size n
// varies.
#include <cstdio>

#include "buffer/buffer.h"
#include "client/client.h"
#include "net/sim_net.h"
#include "rdb/database.h"
#include "wrappers/relational_wrapper.h"

int main() {
  using namespace mix;

  // A realty database.
  rdb::Database db("realty");
  rdb::Schema schema({{"addr", rdb::Type::kString},
                      {"zip", rdb::Type::kInt},
                      {"price", rdb::Type::kInt}});
  rdb::Table* homes = db.CreateTable("homes", schema).ValueOrDie();
  for (int i = 0; i < 2000; ++i) {
    homes
        ->Insert({rdb::Value("street " + std::to_string(i)),
                  rdb::Value(int64_t{91200 + i % 40}),
                  rdb::Value(int64_t{100000 + (i * 7919) % 900000})});
  }

  // 1. Whole-database view, browsed through the buffer.
  {
    wrappers::RelationalLxpWrapper wrapper(&db);
    buffer::BufferComponent buffer(&wrapper, "db");
    client::VirtualXmlDocument vdoc(&buffer);
    client::XmlElement table = vdoc.Root().FirstChild();
    std::printf("database view: <%s> first table <%s>\n",
                vdoc.Root().Name().c_str(), table.Name().c_str());
    client::XmlElement row = table.FirstChild();
    std::printf("first row: addr=%s zip=%s price=%s\n",
                row.Child("addr").Text().c_str(),
                row.Child("zip").Text().c_str(),
                row.Child("price").Text().c_str());
  }

  // 2. A query view: the wrapper has translated a XMAS subquery into SQL.
  {
    wrappers::RelationalLxpWrapper::Options options;
    options.chunk = 10;
    wrappers::RelationalLxpWrapper wrapper(&db, options);
    buffer::BufferComponent buffer(
        &wrapper, "sql:SELECT addr, price FROM homes WHERE zip = 91205");
    client::VirtualXmlDocument vdoc(&buffer);
    std::printf("\nquery view rows (first 5):\n");
    int shown = 0;
    for (client::XmlElement row = vdoc.Root().FirstChild();
         !row.IsNull() && shown < 5; row = row.NextSibling(), ++shown) {
      std::printf("  %s  $%s\n", row.Child("addr").Text().c_str(),
                  row.Child("price").Text().c_str());
    }
    std::printf("rows scanned in the RDB so far: %lld of %lld\n",
                static_cast<long long>(wrapper.rows_scanned()),
                static_cast<long long>(homes->row_count()));
  }

  // 3. The granularity trade-off: browse the first 100 rows with different
  //    chunk sizes; node-at-a-time (n=1) pays per-message latency, huge
  //    chunks ship unread tuples.
  std::printf("\nchunk-size sweep (browse first 100 rows of full table):\n");
  std::printf("%8s %10s %10s %12s\n", "chunk", "messages", "bytes",
              "sim_ms");
  for (int chunk : {1, 5, 10, 50, 100, 500}) {
    wrappers::RelationalLxpWrapper::Options options;
    options.chunk = chunk;
    wrappers::RelationalLxpWrapper wrapper(&db, options);
    net::SimClock clock;
    net::Channel channel(&clock, net::ChannelOptions{});
    buffer::BufferComponent::Options buf_options;
    buf_options.channel = &channel;
    buffer::BufferComponent buffer(&wrapper, "sql:SELECT * FROM homes",
                                   buf_options);
    client::VirtualXmlDocument vdoc(&buffer);
    int count = 0;
    for (client::XmlElement row = vdoc.Root().FirstChild();
         !row.IsNull() && count < 100; row = row.NextSibling(), ++count) {
    }
    std::printf("%8d %10lld %10lld %12.3f\n", chunk,
                static_cast<long long>(channel.stats().messages),
                static_cast<long long>(channel.stats().bytes),
                clock.now_ns() / 1e6);
  }
  return 0;
}
