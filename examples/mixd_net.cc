// mixd_net: a real, standalone mixd server over TCP.
//
// Hosts the paper's homes/schools sources behind the framed wire protocol
// on a loopback socket: point any FrameTransport client at the printed
// port (e.g. mixd_demo's --transport=tcp path, or tests/bench binaries) and
// drive DOM-VXD dialogues against it. Serves until stdin reaches EOF (pipe
// /dev/null for "run until killed"), then drains in-flight commands and
// prints the listener's final accounting.
//
// Usage: mixd_net [--port=N] [--loops=N] [--workers=N] [--self-test]
//   --port=0 (default) binds an ephemeral port (printed on stdout).
//   --self-test: after starting, run one Fig. 3 session against the server
//     over the real wire, verify the answer shape, and exit — a one-binary
//     smoke of the whole stack.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <memory>
#include <string>

#include "client/framed_document.h"
#include "client/client.h"
#include "net/tcp/tcp_server.h"
#include "net/tcp/tcp_transport.h"
#include "service/service.h"
#include "service/wire.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/parser.h"

namespace {

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace mix;

  long port = 0;
  long loops = 2;
  long workers = 4;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = std::strtol(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--loops=", 8) == 0) {
      loops = std::strtol(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::strtol(argv[i] + 10, nullptr, 10);
    } else if (std::strcmp(argv[i], "--self-test") == 0) {
      self_test = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--loops=N] [--workers=N] "
                   "[--self-test]\n",
                   argv[0]);
      return 1;
    }
  }
  if (port < 0 || port > 65535 || loops < 1 || workers < 1) {
    std::fprintf(stderr, "bad --port/--loops/--workers value\n");
    return 1;
  }

  auto homes = xml::ParseTerm(
                   "homes[home[addr[La Jolla],zip[91220]],"
                   "home[addr[El Cajon],zip[91223]],"
                   "home[addr[Nowhere],zip[99999]]]")
                   .ValueOrDie();
  auto schools = xml::ParseTerm(
                     "schools[school[dir[Smith],zip[91220]],"
                     "school[dir[Bar],zip[91220]],"
                     "school[dir[Hart],zip[91223]]]")
                     .ValueOrDie();
  service::SessionEnvironment env;
  env.RegisterWrapperFactory(
      "homesSrc",
      [&homes] { return std::make_unique<wrappers::XmlLxpWrapper>(homes.get()); },
      "homes.xml");
  env.RegisterWrapperFactory(
      "schoolsSrc",
      [&schools] {
        return std::make_unique<wrappers::XmlLxpWrapper>(schools.get());
      },
      "schools.xml");

  service::MediatorService::Options options;
  options.workers = static_cast<int>(workers);
  options.queue_capacity = 1024;
  service::MediatorService service(&env, options);

  net::tcp::TcpServerOptions sopts;
  sopts.port = static_cast<uint16_t>(port);
  sopts.event_loops = static_cast<int>(loops);
  net::tcp::TcpServer server(&service, sopts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "mixd_net: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("mixd_net: listening on 127.0.0.1:%u (%ld loops, %ld workers)\n",
              server.port(), loops, workers);
  std::fflush(stdout);

  int rc = 0;
  if (self_test) {
    net::tcp::TcpTransportOptions copts;
    copts.port = server.port();
    net::tcp::TcpFrameTransport transport(copts);
    auto doc = client::FramedDocument::Open(&transport, kFig3);
    if (!doc.ok()) {
      std::fprintf(stderr, "self-test open: %s\n",
                   doc.status().ToString().c_str());
      rc = 1;
    } else {
      client::VirtualXmlDocument vdoc(doc.value().get());
      int n = static_cast<int>(vdoc.Root().Children().size());
      std::printf("self-test: %d med_home elements over the wire\n", n);
      if (n != 2) rc = 1;
      (void)doc.value()->Close();
    }
  } else {
    // Serve until whoever started us closes our stdin.
    char buf[256];
    while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
    }
  }

  server.Stop();
  std::printf("mixd_net: drained; net{%s}\n",
              server.stats().ToString().c_str());
  return rc;
}
