// mixd_fleet: a fleet of mixd servers behind the consistent-hash session
// router, with a live failover demonstration.
//
// Starts N full mixd backends (each hosting the paper's homes/schools
// sources behind its own TCP listener), fronts them with
// fleet::SessionRouter, and drives Fig. 3 sessions through it:
//
//   1. placement — opens a few sessions of the same query and shows them
//      co-locating on the ring owner (cache-affine placement);
//   2. failover — opens a session, navigates partway, STOPS the backend it
//      lives on, and finishes the navigation: the router ejects the dead
//      backend, re-opens on a ring successor, re-derives the client's node
//      handles by path replay, and the answer comes out byte-identical;
//   3. accounting — prints the aggregated kMetrics frame (per-backend
//      snapshots plus the router's fleet{...} line).
//
// Usage: mixd_fleet [--backends=N] [--workers=N]
//   Exits 0 iff every answer (before and after the kill) matches the
//   paper's Fig. 3 result, so it doubles as a one-binary fleet smoke test.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <memory>
#include <string>
#include <vector>

#include "client/framed_document.h"
#include "fleet/router.h"
#include "mediator/plan_cache.h"
#include "net/tcp/tcp_server.h"
#include "net/tcp/tcp_transport.h"
#include "service/service.h"
#include "service/wire.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/materialize.h"
#include "xml/parser.h"

namespace {

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

const char* kExpectedAnswer =
    "answer["
    "med_home[home[addr[La Jolla],zip[91220]],"
    "school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]]],"
    "med_home[home[addr[El Cajon],zip[91223]],school[dir[Hart],zip[91223]]]]";

}  // namespace

int main(int argc, char** argv) {
  using namespace mix;

  long backends = 3;
  long workers = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backends=", 11) == 0) {
      backends = std::strtol(argv[i] + 11, nullptr, 10);
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::strtol(argv[i] + 10, nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--backends=N] [--workers=N]\n",
                   argv[0]);
      return 1;
    }
  }
  if (backends < 2 || backends > 16 || workers < 1) {
    std::fprintf(stderr, "bad --backends (2..16) or --workers value\n");
    return 1;
  }

  auto homes = xml::ParseTerm(
                   "homes[home[addr[La Jolla],zip[91220]],"
                   "home[addr[El Cajon],zip[91223]],"
                   "home[addr[Nowhere],zip[99999]]]")
                   .ValueOrDie();
  auto schools = xml::ParseTerm(
                     "schools[school[dir[Smith],zip[91220]],"
                     "school[dir[Bar],zip[91220]],"
                     "school[dir[Hart],zip[91223]]]")
                     .ValueOrDie();

  // One full mixd per backend: environment + service + TCP listener.
  std::vector<std::unique_ptr<service::SessionEnvironment>> envs;
  std::vector<std::unique_ptr<service::MediatorService>> services;
  std::vector<std::unique_ptr<net::tcp::TcpServer>> servers;
  std::vector<fleet::SessionRouter::Backend> ring;
  for (long i = 0; i < backends; ++i) {
    auto env = std::make_unique<service::SessionEnvironment>();
    env->RegisterWrapperFactory(
        "homesSrc",
        [&homes] {
          return std::make_unique<wrappers::XmlLxpWrapper>(homes.get());
        },
        "homes.xml");
    env->RegisterWrapperFactory(
        "schoolsSrc",
        [&schools] {
          return std::make_unique<wrappers::XmlLxpWrapper>(schools.get());
        },
        "schools.xml");
    service::MediatorService::Options options;
    options.backend_id = "b" + std::to_string(i);
    options.workers = static_cast<int>(workers);
    auto service =
        std::make_unique<service::MediatorService>(env.get(), options);
    auto server = std::make_unique<net::tcp::TcpServer>(
        service.get(), net::tcp::TcpServerOptions{});
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "mixd_fleet: backend %ld: %s\n", i,
                   started.ToString().c_str());
      return 1;
    }
    std::printf("mixd_fleet: backend b%ld on 127.0.0.1:%u\n", i,
                server->port());
    uint16_t port = server->port();
    ring.push_back(fleet::SessionRouter::Backend{
        "b" + std::to_string(i), [port] {
          net::tcp::TcpTransportOptions copts;
          copts.port = port;
          copts.op_timeout_ns = 5'000'000'000;
          copts.connect_timeout_ns = 1'000'000'000;
          return std::make_unique<net::tcp::TcpFrameTransport>(copts);
        }});
    envs.push_back(std::move(env));
    services.push_back(std::move(service));
    servers.push_back(std::move(server));
  }

  fleet::SessionRouter::Options ropts;
  ropts.health.failure_threshold = 1;  // demo: eject on the first failure
  fleet::SessionRouter router(std::move(ring), ropts);

  int rc = 0;
  auto check = [&rc](const std::string& got, const char* what) {
    if (got == kExpectedAnswer) {
      std::printf("  %s: answer byte-identical to Fig. 3\n", what);
    } else {
      std::printf("  %s: MISMATCH\n    got      %s\n    expected %s\n", what,
                  got.c_str(), kExpectedAnswer);
      rc = 1;
    }
  };
  auto materialize = [](client::FramedDocument* doc) {
    xml::Document out;
    return xml::ToTerm(xml::MaterializeInto(doc, &out));
  };

  // 1. Placement: same query, same home backend.
  size_t home =
      router.ring().PreferenceFor(mediator::CanonicalXmasKey(kFig3))[0];
  std::printf("placement: Fig. 3 sessions home on backend %s\n",
              router.backend_name(home).c_str());
  for (int i = 0; i < 2; ++i) {
    auto doc = router.OpenDocument(kFig3);
    if (!doc.ok()) {
      std::fprintf(stderr, "open: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    check(materialize(doc.value().get()),
          i == 0 ? "session 1" : "session 2 (warm caches)");
    (void)doc.value()->Close();
  }

  // 2. Failover: kill the home backend under a live, half-navigated session.
  auto doc = router.OpenDocument(kFig3);
  if (!doc.ok()) {
    std::fprintf(stderr, "open: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::optional<NodeId> first = doc.value()->Down(doc.value()->Root());
  if (!first.has_value()) {
    std::fprintf(stderr, "mixd_fleet: empty answer document\n");
    return 1;
  }
  std::printf("failover: stopping backend %s mid-session\n",
              router.backend_name(home).c_str());
  servers[home]->Stop();
  std::printf("  pre-kill handle still resolves: label '%s'\n",
              doc.value()->Fetch(*first).c_str());
  check(materialize(doc.value().get()), "post-failover continuation");
  (void)doc.value()->Close();

  // 3. Accounting: the fleet metrics frame (dead backend omitted).
  auto transport = router.MakeTransport();
  service::wire::Frame metrics;
  metrics.type = service::wire::MsgType::kMetrics;
  auto reply = service::wire::Call(transport.get(), metrics);
  if (reply.ok()) std::printf("%s\n", reply.value().text.c_str());

  for (auto& s : servers) s->Stop();
  return rc;
}
