// The full Fig. 1 architecture: a tree of mediators over heterogeneous
// wrapped sources.
//
//          upper mediator  (XMAS view over the lower's virtual XML view)
//                |
//          lower mediator  (integrates RDB + XML sources, Fig. 3 query)
//           /          \ .
//   RDB-XML wrapper   XML source
//   (mini-SQL view)   (in-memory document)
//
// Client navigations on the upper view cascade down through both
// mediators into minimal wrapper accesses — query composition by plan
// stacking, with no materialization anywhere.
#include <cstdio>

#include "buffer/buffer.h"
#include "client/client.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "rdb/database.h"
#include "wrappers/relational_wrapper.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/parser.h"

int main() {
  using namespace mix;

  // --- sources ---------------------------------------------------------
  // Homes live in a relational database, exported as view[row[...]].
  rdb::Database db("realty");
  rdb::Schema schema({{"addr", rdb::Type::kString}, {"zip", rdb::Type::kInt}});
  rdb::Table* homes = db.CreateTable("homes", schema).ValueOrDie();
  homes->Insert({rdb::Value("12 Ocean Ave"), rdb::Value(int64_t{91220})});
  homes->Insert({rdb::Value("9 Canyon Rd"), rdb::Value(int64_t{91223})});
  homes->Insert({rdb::Value("3 Mesa Blvd"), rdb::Value(int64_t{91220})});
  wrappers::RelationalLxpWrapper rdb_wrapper(&db);
  buffer::BufferComponent rdb_view(&rdb_wrapper,
                                   "sql:SELECT addr, zip FROM homes");

  // Schools live in an XML document.
  auto schools_doc = xml::Parse(R"(
    <schools>
      <school><dir>Smith</dir><zip>91220</zip></school>
      <school><dir>Bar</dir><zip>91220</zip></school>
      <school><dir>Hart</dir><zip>91223</zip></school>
    </schools>)")
                         .ValueOrDie();
  xml::DocNavigable schools_view(schools_doc.get());

  // --- lower mediator: integrate both sources ---------------------------
  auto lower_query = xmas::ParseQuery(R"(
    CONSTRUCT <answer>
      <med_home> $R $S {$S} </med_home> {$R}
    </answer> {}
    WHERE homesSrc view.row $R AND $R zip._ $V1
      AND schoolsSrc schools.school $S AND $S zip._ $V2
      AND $V1 = $V2
  )")
                         .ValueOrDie();
  auto lower_plan = mediator::TranslateQuery(lower_query).ValueOrDie();
  mediator::SourceRegistry lower_sources;
  lower_sources.Register("homesSrc", &rdb_view);
  lower_sources.Register("schoolsSrc", &schools_view);
  auto lower =
      mediator::LazyMediator::Build(*lower_plan, lower_sources).ValueOrDie();

  // --- upper mediator: all school directors per zip 91220 ---------------
  auto upper_query = xmas::ParseQuery(R"(
    CONSTRUCT <directors> $D {$D} </directors> {}
    WHERE lowerView answer.med_home $M
      AND $M row.zip._ $Z
      AND $Z = '91220'
      AND $M school.dir._ $D
  )")
                         .ValueOrDie();
  auto upper_plan = mediator::TranslateQuery(upper_query).ValueOrDie();
  std::printf("--- upper plan over the lower mediator's virtual view ---\n%s\n",
              upper_plan->ToString().c_str());

  mediator::SourceRegistry upper_sources;
  upper_sources.Register("lowerView", lower->document());
  auto upper =
      mediator::LazyMediator::Build(*upper_plan, upper_sources).ValueOrDie();

  client::VirtualXmlDocument vdoc(upper->document());
  std::printf("directors of schools in zip 91220 (via 2 mediators + RDB):\n");
  for (client::XmlElement d = vdoc.Root().FirstChild(); !d.IsNull();
       d = d.NextSibling()) {
    std::printf("  %s\n", d.Text().c_str());
  }
  std::printf("\nLXP fills answered by the relational wrapper: %lld\n",
              static_cast<long long>(rdb_wrapper.fills_served()));
  return 0;
}
