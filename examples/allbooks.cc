// The introduction's motivating scenario: a virtual `allbooks` view over
// two Web bookstores. A warehousing approach is not viable (the complete
// dataset cannot be obtained; availability changes constantly); the user
// issues a broad query, browses the first few results, and stops.
//
// This example builds the integrated view as an algebra plan directly
// (union of the two scraped book streams, with an availability filter),
// stacks it over HTML-scraping LXP wrappers behind generic buffers with
// simulated network channels, and shows how little of the "Web" a short
// browsing session touches.
#include <cstdio>

#include "buffer/buffer.h"
#include "client/client.h"
#include "mediator/instantiate.h"
#include "net/sim_net.h"
#include "wrappers/bookstore.h"

int main() {
  using namespace mix;

  // Two simulated bookstores: 5000 titles each, 200 shared, 25 per page.
  wrappers::BookstoreSite amazon(
      "amazon", wrappers::MakeCatalog({5000, /*seed=*/1, /*shared=*/200}), 25);
  wrappers::BookstoreSite bn(
      "barnesandnoble", wrappers::MakeCatalog({5000, 2, 200}), 25);
  wrappers::BookstoreLxpWrapper amazon_wrapper(&amazon);
  wrappers::BookstoreLxpWrapper bn_wrapper(&bn);

  net::SimClock clock;
  net::Channel amazon_channel(&clock, net::ChannelOptions{});
  net::Channel bn_channel(&clock, net::ChannelOptions{});
  buffer::BufferComponent::Options amazon_buf_opts;
  amazon_buf_opts.channel = &amazon_channel;
  buffer::BufferComponent amazon_buffer(&amazon_wrapper, "http://amazon",
                                        amazon_buf_opts);
  buffer::BufferComponent::Options bn_buf_opts;
  bn_buf_opts.channel = &bn_channel;
  buffer::BufferComponent bn_buffer(&bn_wrapper, "http://bn", bn_buf_opts);

  // The allbooks view: concatenate both stores' in-stock books.
  //   union of getDescendants(books.book) over each store,
  //   filtered on stock > 0, regrouped under one <allbooks> element.
  using mediator::PlanNode;
  auto chain = [](const char* source) {
    return PlanNode::Select(
        PlanNode::GetDescendants(
            PlanNode::GetDescendants(PlanNode::Source(source, "R"), "R",
                                     "books.book", "B"),
            "B", "stock._", "K"),
        algebra::BindingPredicate::VarConst("K", algebra::CompareOp::kGt,
                                            "0"));
  };
  auto plan = PlanNode::TupleDestroy(
      PlanNode::CreateElement(
          PlanNode::GroupBy(PlanNode::Union(chain("amazon"), chain("bn")), {},
                            "B", "All"),
          /*label_is_constant=*/true, "allbooks", "All", "Doc"),
      "Doc");
  std::printf("--- allbooks plan ---\n%s\n", plan->ToString().c_str());

  mediator::SourceRegistry sources;
  sources.Register("amazon", &amazon_buffer);
  sources.Register("bn", &bn_buffer);
  auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();

  // The user browses the first 12 available books, then stops.
  client::VirtualXmlDocument vdoc(med->document());
  int shown = 0;
  for (client::XmlElement book = vdoc.Root().FirstChild();
       !book.IsNull() && shown < 12; book = book.NextSibling(), ++shown) {
    std::printf("  %-28s by %-18s $%s (stock %s)\n",
                book.Child("title").Text().c_str(),
                book.Child("author").Text().c_str(),
                book.Child("price").Text().c_str(),
                book.Child("stock").Text().c_str());
  }

  std::printf("\npages fetched: amazon %lld/%d, bn %lld/%d\n",
              static_cast<long long>(amazon_wrapper.pages_fetched()),
              amazon.page_count(),
              static_cast<long long>(bn_wrapper.pages_fetched()),
              bn.page_count());
  std::printf("network: amazon {%s}\n         bn     {%s}\n",
              amazon_channel.stats().ToString().c_str(),
              bn_channel.stats().ToString().c_str());
  std::printf("simulated elapsed: %.2f ms\n", clock.now_ns() / 1e6);
  std::printf(
      "\nA materializing mediator would have fetched all %d + %d pages "
      "before showing the first book.\n",
      amazon.page_count(), bn.page_count());
  return 0;
}
