// mixql — run an XMAS query against XML file sources from the shell.
//
//   mixql [options] <query.xmas> name=source.xml [name=source.xml ...]
//
//   --plan      print the algebra plan (after rewriting) and exit
//   --analyze   print the browsability report and exit
//   --algebra   the query file contains plan text (PlanNode::ToString
//               format, see mediator/plan_text.h) instead of XMAS
//   --view name=view.xmas
//               define a virtual view: the query may use `name` as a
//               source. Statically composed into the query when possible
//               (mediator/compose.h), otherwise evaluated by runtime
//               mediator stacking
//   --schema    print the inferred answer schema and exit
//   --first N   materialize only the first N answer children
//
// The query file uses the Fig. 3 syntax; each `name=path` pair binds a
// WHERE-clause source name to a document on disk — XML, or (by the .csv
// extension) a CSV file exported as csv[row[col[v]...]*] through the CSV
// LXP wrapper behind a generic buffer. The answer is evaluated lazily and
// serialized to stdout.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "mediator/browsability.h"
#include "mediator/compose.h"
#include "mediator/plan_text.h"
#include "mediator/view_schema.h"
#include "mediator/instantiate.h"
#include "mediator/rewrite.h"
#include "mediator/translate.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/parser.h"
#include "buffer/buffer.h"
#include "wrappers/csv_wrapper.h"

namespace {

using namespace mix;

int Usage() {
  std::fprintf(stderr,
               "usage: mixql [--plan] [--analyze] [--schema] [--algebra] "
               "[--first N] [--view name=view.xmas] "
               "<query.xmas> name=source.{xml,csv} ...\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool print_plan = false;
  bool analyze = false;
  bool algebra_input = false;
  bool print_schema = false;
  int64_t first_n = -1;
  std::string query_path;
  std::string view_name;
  std::string view_path;
  std::vector<std::pair<std::string, std::string>> bindings;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--plan") {
      print_plan = true;
    } else if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--algebra") {
      algebra_input = true;
    } else if (arg == "--schema") {
      print_schema = true;
    } else if (arg == "--first") {
      if (++i >= argc) return Usage();
      first_n = std::atoll(argv[i]);
    } else if (arg == "--view") {
      if (++i >= argc) return Usage();
      std::string spec = argv[i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos) return Usage();
      view_name = spec.substr(0, eq);
      view_path = spec.substr(eq + 1);
    } else if (arg.find('=') != std::string::npos) {
      size_t eq = arg.find('=');
      bindings.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (query_path.empty()) {
      query_path = arg;
    } else {
      return Usage();
    }
  }
  if (query_path.empty()) return Usage();

  auto query_text = ReadFile(query_path);
  if (!query_text.ok()) {
    std::fprintf(stderr, "%s\n", query_text.status().ToString().c_str());
    return 1;
  }
  Result<mediator::PlanPtr> plan = Status::Internal("unset");
  if (algebra_input) {
    plan = mediator::ParsePlanText(query_text.value());
  } else {
    auto query = xmas::ParseQuery(query_text.value());
    if (!query.ok()) {
      std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
      return 1;
    }
    plan = mediator::TranslateQuery(query.value());
  }
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  // Optional view: try static composition first.
  Result<mediator::PlanPtr> view_plan = Status::Internal("unset");
  bool view_composed = false;
  if (!view_name.empty()) {
    auto view_text = ReadFile(view_path);
    if (!view_text.ok()) {
      std::fprintf(stderr, "%s\n", view_text.status().ToString().c_str());
      return 1;
    }
    auto view_query = xmas::ParseQuery(view_text.value());
    if (!view_query.ok()) {
      std::fprintf(stderr, "%s\n", view_query.status().ToString().c_str());
      return 1;
    }
    view_plan = mediator::TranslateQuery(view_query.value());
    if (!view_plan.ok()) {
      std::fprintf(stderr, "%s\n", view_plan.status().ToString().c_str());
      return 1;
    }
    auto composed = mediator::ComposeQueryOverView(*plan.value(), view_name,
                                                   *view_plan.value());
    if (composed.ok()) {
      plan = std::move(composed);
      view_composed = true;
      std::fprintf(stderr, "[view '%s' statically composed]\n",
                   view_name.c_str());
    } else {
      std::fprintf(stderr, "[view '%s' stacked at runtime: %s]\n",
                   view_name.c_str(), composed.status().ToString().c_str());
    }
  }

  mediator::RewriteOptions rewrite_options;
  rewrite_options.sigma_capable_sources = true;
  mediator::Rewrite(&plan.value(), rewrite_options);

  if (print_plan) {
    std::printf("%s", plan.value()->ToString().c_str());
    return 0;
  }
  if (print_schema) {
    auto schema = mediator::InferAnswerSchema(*plan.value());
    if (!schema.ok()) {
      std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", schema.value()->ToString().c_str());
    return 0;
  }
  if (analyze) {
    mediator::BrowsabilityOptions options;
    options.sigma_available = true;
    auto report = mediator::Classify(*plan.value(), options);
    std::printf("browsability: %s\n", BrowsabilityName(report.cls));
    for (const std::string& reason : report.reasons) {
      std::printf("  - %s\n", reason.c_str());
    }
    return 0;
  }

  // Load and register the sources (XML documents, or CSV by extension).
  std::vector<std::unique_ptr<xml::Document>> docs;
  std::vector<std::unique_ptr<Navigable>> navs;
  std::vector<std::unique_ptr<wrappers::CsvTable>> csv_tables;
  std::vector<std::unique_ptr<wrappers::CsvLxpWrapper>> csv_wrappers;
  mediator::SourceRegistry sources;
  for (const auto& [name, path] : bindings) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    bool is_csv =
        path.size() > 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
    if (is_csv) {
      auto table = wrappers::ParseCsv(text.value());
      if (!table.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     table.status().ToString().c_str());
        return 1;
      }
      csv_tables.push_back(std::make_unique<wrappers::CsvTable>(
          std::move(table).ValueOrDie()));
      csv_wrappers.push_back(
          std::make_unique<wrappers::CsvLxpWrapper>(csv_tables.back().get()));
      navs.push_back(std::make_unique<buffer::BufferComponent>(
          csv_wrappers.back().get(), path));
    } else {
      auto doc = xml::Parse(text.value());
      if (!doc.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     doc.status().ToString().c_str());
        return 1;
      }
      docs.push_back(std::move(doc).ValueOrDie());
      navs.push_back(std::make_unique<xml::DocNavigable>(docs.back().get()));
    }
    sources.Register(name, navs.back().get());
  }

  // Runtime stacking fallback for a non-composable view.
  std::unique_ptr<mediator::LazyMediator> lower;
  if (!view_name.empty() && !view_composed) {
    auto built = mediator::LazyMediator::Build(*view_plan.value(), sources);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    lower = std::move(built).ValueOrDie();
    sources.Register(view_name, lower->document());
  }

  auto med = mediator::LazyMediator::Build(*plan.value(), sources);
  if (!med.ok()) {
    std::fprintf(stderr, "%s\n", med.status().ToString().c_str());
    return 1;
  }

  // Materialize the answer (optionally only a prefix) and print it.
  Navigable* answer = med.value()->document();
  xml::Document out;
  xml::Node* root = nullptr;
  if (first_n >= 0) {
    // Prefix: the root element plus the first N children (fully explored).
    root = out.NewElement(answer->Fetch(answer->Root()));
    auto child = answer->Down(answer->Root());
    for (int64_t i = 0; i < first_n && child.has_value(); ++i) {
      // Materialize this child completely via a scoped walk.
      struct Sub : Navigable {
        Navigable* inner;
        NodeId top;
        NodeId Root() override { return top; }
        std::optional<NodeId> Down(const NodeId& p) override {
          return inner->Down(p);
        }
        std::optional<NodeId> Right(const NodeId& p) override {
          if (p == top) return std::nullopt;
          return inner->Right(p);
        }
        Label Fetch(const NodeId& p) override { return inner->Fetch(p); }
      } sub;
      sub.inner = answer;
      sub.top = *child;
      out.AppendChild(root, xml::MaterializeInto(&sub, &out));
      child = answer->Right(*child);
    }
  } else {
    root = xml::MaterializeInto(answer, &out);
  }
  std::printf("%s", xml::ToXml(root, /*pretty=*/true).c_str());
  return 0;
}
