// Quickstart: query an XML document with XMAS and browse the *virtual*
// answer through the DOM-style client library.
//
// Pipeline: parse XML -> parse XMAS -> translate to an algebra plan
// (Fig. 4) -> instantiate the tree of lazy mediators -> navigate.
#include <cstdio>

#include "client/client.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/parser.h"

int main() {
  using namespace mix;

  // 1. A small catalog source.
  const char* catalog_xml = R"(
    <catalog>
      <item><name>lamp</name><price>40</price></item>
      <item><name>desk</name><price>120</price></item>
      <item><name>chair</name><price>55</price></item>
      <item><name>rug</name><price>75</price></item>
    </catalog>)";
  auto doc = xml::Parse(catalog_xml).ValueOrDie();
  xml::DocNavigable source(doc.get());

  // 2. An XMAS view: names of items costing more than 50.
  const char* query = R"(
    CONSTRUCT <expensive> $N {$N} </expensive> {}
    WHERE catalogSrc catalog.item $I
      AND $I name._ $N
      AND $I price._ $P
      AND $P > 50
  )";
  auto parsed = xmas::ParseQuery(query).ValueOrDie();
  auto plan = mediator::TranslateQuery(parsed).ValueOrDie();
  std::printf("--- algebra plan ---\n%s\n", plan->ToString().c_str());

  // 3. Instantiate the lazy mediator.
  mediator::SourceRegistry sources;
  sources.Register("catalogSrc", &source);
  auto mediator_instance =
      mediator::LazyMediator::Build(*plan, sources).ValueOrDie();

  // 4. Browse the virtual answer exactly like a memory-resident document.
  client::VirtualXmlDocument vdoc(mediator_instance->document());
  client::XmlElement root = vdoc.Root();
  std::printf("--- browsing <%s> ---\n", root.Name().c_str());
  for (client::XmlElement name = root.FirstChild(); !name.IsNull();
       name = name.NextSibling()) {
    std::printf("  expensive item: %s\n", name.Text().c_str());
  }
  return 0;
}
