// mixd demo: the MIX mediator as a concurrent multi-session server.
//
// Starts a MediatorService over the paper's homes/schools sources, opens
// several client sessions against it (each session gets its own
// demand-paged BufferComponents), browses one session through the DOM-style
// client library — every command crossing the framed wire protocol — and
// prints the service metrics snapshot at the end.
//
// Usage: mixd_demo [--transport={sim,tcp}]
//   sim (default): clients call the service's in-process FrameTransport.
//   tcp: an epoll TcpServer hosts the same service on a loopback port and
//        every client dialogue crosses a real socket — same frames, same
//        answers, plus the listener/connection metrics block at the end.
#include <cstdio>
#include <cstring>

#include <memory>
#include <thread>
#include <vector>

#include "buffer/source_cache.h"
#include "client/client.h"
#include "client/framed_document.h"
#include "net/tcp/tcp_server.h"
#include "net/tcp/tcp_transport.h"
#include "service/service.h"
#include "service/wire.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/materialize.h"
#include "xml/parser.h"

namespace {

/// Non-owning FrameTransport view of the in-process service, so sim and tcp
/// clients can hold transports with the same ownership shape.
class InProcessTransport : public mix::service::wire::FrameTransport {
 public:
  explicit InProcessTransport(mix::service::MediatorService* service)
      : service_(service) {}
  mix::Result<std::string> RoundTrip(const std::string& request) override {
    return service_->RoundTrip(request);
  }

 private:
  mix::service::MediatorService* service_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mix;

  bool use_tcp = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transport=tcp") == 0) {
      use_tcp = true;
    } else if (std::strcmp(argv[i], "--transport=sim") == 0) {
      use_tcp = false;
    } else {
      std::fprintf(stderr, "usage: %s [--transport={sim,tcp}]\n", argv[0]);
      return 1;
    }
  }

  // 1. The Fig. 1 sources, served through LXP wrappers: every session the
  // server opens gets its own wrapper instance and buffer.
  auto homes = xml::ParseTerm(
                   "homes[home[addr[La Jolla],zip[91220]],"
                   "home[addr[El Cajon],zip[91223]],"
                   "home[addr[Nowhere],zip[99999]]]")
                   .ValueOrDie();
  auto schools = xml::ParseTerm(
                     "schools[school[dir[Smith],zip[91220]],"
                     "school[dir[Bar],zip[91220]],"
                     "school[dir[Hart],zip[91223]]]")
                     .ValueOrDie();

  service::SessionEnvironment env;
  env.RegisterWrapperFactory(
      "homesSrc",
      [&homes] { return std::make_unique<wrappers::XmlLxpWrapper>(homes.get()); },
      "homes.xml");
  env.RegisterWrapperFactory(
      "schoolsSrc",
      [&schools] {
        return std::make_unique<wrappers::XmlLxpWrapper>(schools.get());
      },
      "schools.xml");

  // 2. Start the service: 4 workers, bounded admission queue, 30s idle TTL,
  // and both cross-session caches on — the shared source-fragment cache
  // (DESIGN.md §4) and the answer-view cache, so the later sessions below
  // are served warm.
  service::MediatorService::Options options;
  options.workers = 4;
  options.queue_capacity = 256;
  options.session_idle_ttl_ns = int64_t{30} * 1'000'000'000;
  options.source_cache_bytes = int64_t{1} << 20;
  options.answer_view_cache_bytes = int64_t{1} << 20;
  service::MediatorService server(&env, options);

  // With --transport=tcp the same service goes behind a real socket.
  // (Declared after `server` on purpose: the reactor must shut down before
  // the service it dispatches into.)
  std::unique_ptr<net::tcp::TcpServer> tcp_server;
  if (use_tcp) {
    tcp_server =
        std::make_unique<net::tcp::TcpServer>(&server, net::tcp::TcpServerOptions{});
    Status started = tcp_server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "TcpServer: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("mixd: tcp transport on 127.0.0.1:%u\n", tcp_server->port());
  } else {
    std::printf("mixd: in-process (sim) transport\n");
  }
  auto new_transport =
      [&]() -> std::unique_ptr<service::wire::FrameTransport> {
    if (!use_tcp) return std::make_unique<InProcessTransport>(&server);
    net::tcp::TcpTransportOptions copts;
    copts.port = tcp_server->port();
    return std::make_unique<net::tcp::TcpFrameTransport>(copts);
  };

  // 3. The Fig. 3 query: homes joined with schools on zip.
  const char* query = R"(
    CONSTRUCT <answer>
      <med_home> $H $S {$S} </med_home> {$H}
    </answer> {}
    WHERE homesSrc homes.home $H AND $H zip._ $V1
      AND schoolsSrc schools.school $S AND $S zip._ $V2
      AND $V1 = $V2
  )";

  // 4. A few concurrent clients, each with its own session (and, over tcp,
  // its own connection).
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&new_transport, query, c] {
      auto transport = new_transport();
      auto doc =
          client::FramedDocument::Open(transport.get(), query).ValueOrDie();
      client::VirtualXmlDocument vdoc(doc.get());
      int n = static_cast<int>(vdoc.Root().Children().size());
      std::printf("client %d: session %llu sees %d med_home elements\n", c,
                  static_cast<unsigned long long>(doc->session_id()), n);
      (void)doc->Close();
    });
  }
  for (auto& t : clients) t.join();

  // 5. One more session, browsed in detail — XmlElement code cannot tell
  // this framed session from an in-process mediator (or a socket).
  auto transport = new_transport();
  auto doc = client::FramedDocument::Open(transport.get(), query).ValueOrDie();
  client::VirtualXmlDocument vdoc(doc.get());
  client::XmlElement answer = vdoc.Root();
  std::printf("--- browsing <%s> over the wire ---\n", answer.Name().c_str());
  for (client::XmlElement mh = answer.FirstChild(); !mh.IsNull();
       mh = mh.NextSibling()) {
    client::XmlElement home = mh.Child("home");
    std::printf("  med_home: %s (zip %s), schools:", home.Child("addr").Text().c_str(),
                home.Child("zip").Text().c_str());
    for (client::XmlElement s = mh.FirstChild().SelectSibling("school");
         !s.IsNull(); s = s.SelectSibling("school")) {
      std::printf(" %s", s.Child("dir").Text().c_str());
    }
    std::printf("\n");
  }
  (void)doc->Close();

  // 6. Donate and reuse an answer view: one session materializes the full
  // answer (publishing its navigation-complete export), and the next open
  // of the same query is served from the snapshot with zero wrapper work.
  {
    auto donor_transport = new_transport();
    auto donor =
        client::FramedDocument::Open(donor_transport.get(), query).ValueOrDie();
    xml::Document full;
    (void)xml::MaterializeInto(donor.get(), &full);
    (void)donor->Close();
    auto warm_transport = new_transport();
    auto warm =
        client::FramedDocument::Open(warm_transport.get(), query).ValueOrDie();
    client::VirtualXmlDocument warm_vdoc(warm.get());
    std::printf("view-served session %llu sees %d med_home elements\n",
                static_cast<unsigned long long>(warm->session_id()),
                static_cast<int>(warm_vdoc.Root().Children().size()));
    (void)warm->Close();
  }

  // 7. The shared fragment cache, shard by shard: per-stripe hit/miss/byte
  // counters plus the byte high-water mark of the whole cache.
  buffer::SourceCache::Stats cache_stats = server.source_cache().stats();
  std::printf("--- source cache shards (peak %lld bytes) ---\n",
              static_cast<long long>(cache_stats.peak_bytes));
  for (size_t i = 0; i < cache_stats.shards.size(); ++i) {
    const auto& shard = cache_stats.shards[i];
    std::printf("  shard %zu: hits=%lld misses=%lld entries=%lld bytes=%lld\n",
                i, static_cast<long long>(shard.hits),
                static_cast<long long>(shard.misses),
                static_cast<long long>(shard.entries),
                static_cast<long long>(shard.bytes));
  }

  // 8. Service-wide metrics, fetched through the wire like any command —
  // over tcp the snapshot's net{...} block is the live listener counters.
  auto metrics_transport = new_transport();
  service::wire::Frame req;
  req.type = service::wire::MsgType::kMetrics;
  auto resp = service::wire::Call(metrics_transport.get(), req).ValueOrDie();
  std::printf("--- mixd metrics ---\n%s", resp.text.c_str());

  // 9. Over tcp: drain the listener and print its final per-connection
  // accounting (every client above was one accept).
  if (tcp_server) {
    tcp_server->Stop();
    std::printf("--- tcp listener ---\nnet{%s}\n",
                tcp_server->stats().ToString().c_str());
  }
  return 0;
}
