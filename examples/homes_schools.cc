// The paper's running example (Figs. 3 & 4): homes with local schools.
//
// Demonstrates:
//   * the Fig. 3 XMAS query, verbatim;
//   * the generated algebra plan (compare with Fig. 4);
//   * the browsability report (Section 2) with and without σ;
//   * navigation-driven evaluation: source navigations consumed by a user
//     who browses only the first med_home vs. full materialization.
#include <cstdio>

#include "client/client.h"
#include "mediator/browsability.h"
#include "mediator/instantiate.h"
#include "mediator/rewrite.h"
#include "mediator/translate.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

int main() {
  using namespace mix;

  const char* kQuery = R"(
CONSTRUCT <answer>
  <med_home> $H          % ... med_home elements followed by
    $S {$S}              % ... school elements (one for each $S)
  </med_home> {$H}       % (one med_home element for each $H)
</answer> {}             % create one answer element (= for each {})
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

  auto query = xmas::ParseQuery(kQuery).ValueOrDie();
  std::printf("--- XMAS query (Fig. 3) ---\n%s\n\n", query.ToString().c_str());

  auto plan = mediator::TranslateQuery(query).ValueOrDie();
  std::printf("--- initial plan E_q (Fig. 4) ---\n%s\n", plan->ToString().c_str());

  // Browsability (Section 2).
  for (bool sigma : {false, true}) {
    mediator::BrowsabilityOptions options;
    options.sigma_available = sigma;
    auto report = mediator::Classify(*plan, options);
    std::printf("browsability (sigma %s): %s\n", sigma ? "on" : "off",
                mediator::BrowsabilityName(report.cls));
  }
  std::printf("\n");

  // Rewriting phase.
  mediator::RewriteOptions rewrite_options;
  rewrite_options.sigma_capable_sources = true;
  auto rewritten = plan->Clone();
  auto stats = mediator::Rewrite(&rewritten, rewrite_options);
  std::printf("--- rewriting: %s ---\n%s\n", stats.ToString().c_str(),
              rewritten->ToString().c_str());

  // Evaluate over synthetic sources: 200 homes / 200 schools, 40 zips.
  auto homes = xml::MakeHomesDoc(200, 40);
  auto schools = xml::MakeSchoolsDoc(200, 40);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  NavStats homes_stats, schools_stats;
  CountingNavigable homes_counted(&homes_nav, &homes_stats);
  CountingNavigable schools_counted(&schools_nav, &schools_stats);

  mediator::SourceRegistry sources;
  sources.Register("homesSrc", &homes_counted);
  sources.Register("schoolsSrc", &schools_counted);
  auto med = mediator::LazyMediator::Build(*rewritten, sources).ValueOrDie();

  // Browse just the first result.
  client::VirtualXmlDocument vdoc(med->document());
  client::XmlElement first = vdoc.Root().FirstChild();
  if (!first.IsNull()) {
    std::printf("first med_home addr: %s\n",
                first.Child("home").Child("addr").Text().c_str());
  }
  std::printf("source navigations after browsing ONE result:\n");
  std::printf("  homes:   %s\n", homes_stats.ToString().c_str());
  std::printf("  schools: %s\n", schools_stats.ToString().c_str());

  // Now materialize everything (what a non-navigation-driven mediator does).
  auto full = xml::Materialize(med->document());
  std::printf("source navigations after FULL materialization:\n");
  std::printf("  homes:   %s\n", homes_stats.ToString().c_str());
  std::printf("  schools: %s\n", schools_stats.ToString().c_str());
  std::printf("answer med_home count: %zu\n", full->root()->children.size());
  return 0;
}
