// Tree patterns (paper footnote 6): XML-QL-style pattern syntax in the
// WHERE clause, desugared to generalized path conditions.
#include <gtest/gtest.h>

#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "test_util.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"

namespace mix::xmas {
namespace {

TEST(TreePatternTest, FootnoteSixDesugarsToPathConditions) {
  // The footnote's example: `<homes> $H: <home> <zip>$V1</zip> </home>
  // </homes> IN homesSrc` ≡ `homesSrc homes.home $H AND $H zip._ $V1`.
  Query q = ParseQuery(
                "CONSTRUCT <out> $H {$H} </out> {} "
                "WHERE <homes> $H: <home> <zip> $V1 </zip> </home> </homes> "
                "IN homesSrc")
                .ValueOrDie();
  ASSERT_EQ(q.conditions.size(), 2u);
  EXPECT_EQ(q.conditions[0].ToString(), "homesSrc homes.home $H");
  EXPECT_EQ(q.conditions[1].ToString(), "$H zip._ $V1");
}

TEST(TreePatternTest, BinderColonVariants) {
  // `$H:` glued and `$H :` spaced both work.
  for (const char* cond :
       {"<homes> $H: <home> </home> </homes> IN s",
        "<homes> $H : <home> </home> </homes> IN s"}) {
    Query q = ParseQuery(std::string("CONSTRUCT <o> $H {$H} </o> {} WHERE ") +
                         cond)
                  .ValueOrDie();
    ASSERT_EQ(q.conditions.size(), 1u) << cond;
    EXPECT_EQ(q.conditions[0].ToString(), "s homes.home $H") << cond;
  }
}

TEST(TreePatternTest, BranchingElementGetsFreshAnchor) {
  Query q = ParseQuery(
                "CONSTRUCT <o> $A {$A} </o> {} "
                "WHERE <r> <p> <a> $A </a> <b> $B </b> </p> </r> IN s")
                .ValueOrDie();
  // r.p gets a fresh anchor; a and b chain below it.
  ASSERT_EQ(q.conditions.size(), 3u);
  EXPECT_EQ(q.conditions[0].kind, Condition::Kind::kSourcePath);
  EXPECT_EQ(q.conditions[0].path, "r.p");
  std::string anchor = q.conditions[0].out_var;
  EXPECT_EQ(anchor.rfind("#p", 0), 0u);  // fresh pattern variable
  EXPECT_EQ(q.conditions[1].src_var, anchor);
  EXPECT_EQ(q.conditions[1].path, "a._");
  EXPECT_EQ(q.conditions[1].out_var, "A");
  EXPECT_EQ(q.conditions[2].path, "b._");
}

TEST(TreePatternTest, MixedPatternAndPathConditions) {
  Query q = ParseQuery(
                "CONSTRUCT <o> $V {$V} </o> {} "
                "WHERE <homes> $H: <home> </home> </homes> IN src "
                "AND $H zip._ $V AND $V = '91220'")
                .ValueOrDie();
  ASSERT_EQ(q.conditions.size(), 3u);
  EXPECT_EQ(q.conditions[2].kind, Condition::Kind::kCompare);
}

TEST(TreePatternTest, PatternErrors) {
  EXPECT_FALSE(ParseQuery("CONSTRUCT <o> $X {$X} </o> {} "
                          "WHERE <a> $X </a>")
                   .ok());  // missing IN
  EXPECT_FALSE(ParseQuery("CONSTRUCT <o> $X {$X} </o> {} "
                          "WHERE <a> $X </b> IN s")
                   .ok());  // mismatched tags
  EXPECT_FALSE(ParseQuery("CONSTRUCT <o> $X {$X} </o> {} "
                          "WHERE <a> 'txt' </a> IN s")
                   .ok());  // literals not allowed in patterns
}

TEST(TreePatternTest, PatternQueryEvaluatesLikePathQuery) {
  const char* pattern_q =
      "CONSTRUCT <out> <med> $H $V1 {$V1} </med> {$H} </out> {} "
      "WHERE <homes> $H: <home> <zip> $V1 </zip> </home> </homes> "
      "IN homesSrc";
  const char* path_q =
      "CONSTRUCT <out> <med> $H $V1 {$V1} </med> {$H} </out> {} "
      "WHERE homesSrc homes.home $H AND $H zip._ $V1";

  auto homes = testing::Doc(
      "homes[home[addr[A],zip[1]],home[addr[B],zip[2]]]");

  auto run = [&](const char* text) {
    auto q = ParseQuery(text).ValueOrDie();
    auto plan = mediator::TranslateQuery(q).ValueOrDie();
    xml::DocNavigable nav(homes.get());
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &nav);
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    return testing::MaterializeToTerm(med->document());
  };
  EXPECT_EQ(run(pattern_q), run(path_q));
  EXPECT_EQ(run(pattern_q),
            "out[med[home[addr[A],zip[1]],1],med[home[addr[B],zip[2]],2]]");
}

TEST(TreePatternTest, DeepUnboundChainFolds) {
  Query q = ParseQuery(
                "CONSTRUCT <o> $X {$X} </o> {} "
                "WHERE <a> <b> <c> <d> $X: <e> </e> </d> </c> </b> </a> IN s")
                .ValueOrDie();
  ASSERT_EQ(q.conditions.size(), 1u);
  EXPECT_EQ(q.conditions[0].path, "a.b.c.d.e");
  EXPECT_EQ(q.conditions[0].out_var, "X");
}

}  // namespace
}  // namespace mix::xmas
