#include <gtest/gtest.h>

#include "pathexpr/path_expr.h"

namespace mix::pathexpr {
namespace {

bool Matches(const std::string& expr, const std::vector<std::string>& path) {
  auto p = PathExpr::Parse(expr);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.value().Matches(path);
}

TEST(PathExprTest, SingleLabel) {
  EXPECT_TRUE(Matches("home", {"home"}));
  EXPECT_FALSE(Matches("home", {"school"}));
  EXPECT_FALSE(Matches("home", {"home", "zip"}));
  EXPECT_FALSE(Matches("home", {}));
}

TEST(PathExprTest, Chain) {
  EXPECT_TRUE(Matches("homes.home", {"homes", "home"}));
  EXPECT_FALSE(Matches("homes.home", {"homes"}));
  EXPECT_FALSE(Matches("homes.home", {"home", "homes"}));
}

TEST(PathExprTest, Wildcard) {
  EXPECT_TRUE(Matches("zip._", {"zip", "91220"}));
  EXPECT_TRUE(Matches("zip._", {"zip", "anything"}));
  EXPECT_FALSE(Matches("zip._", {"zip"}));
  EXPECT_FALSE(Matches("_", {}));
  EXPECT_TRUE(Matches("_", {"x"}));
}

TEST(PathExprTest, Alternation) {
  EXPECT_TRUE(Matches("a|b", {"a"}));
  EXPECT_TRUE(Matches("a|b", {"b"}));
  EXPECT_FALSE(Matches("a|b", {"c"}));
  EXPECT_TRUE(Matches("x.(a|b).y", {"x", "b", "y"}));
}

TEST(PathExprTest, Star) {
  EXPECT_TRUE(Matches("a*.b", {"b"}));
  EXPECT_TRUE(Matches("a*.b", {"a", "b"}));
  EXPECT_TRUE(Matches("a*.b", {"a", "a", "a", "b"}));
  EXPECT_FALSE(Matches("a*.b", {"a", "c", "b"}));
}

TEST(PathExprTest, AnyDepthDescendant) {
  // `_*.zip` — zip at any depth.
  EXPECT_TRUE(Matches("_*.zip", {"zip"}));
  EXPECT_TRUE(Matches("_*.zip", {"home", "zip"}));
  EXPECT_TRUE(Matches("_*.zip", {"a", "b", "c", "zip"}));
  EXPECT_FALSE(Matches("_*.zip", {"a", "b"}));
}

TEST(PathExprTest, PlusAndOpt) {
  EXPECT_FALSE(Matches("a+.b", {"b"}));
  EXPECT_TRUE(Matches("a+.b", {"a", "b"}));
  EXPECT_TRUE(Matches("a+.b", {"a", "a", "b"}));
  EXPECT_TRUE(Matches("a?.b", {"b"}));
  EXPECT_TRUE(Matches("a?.b", {"a", "b"}));
  EXPECT_FALSE(Matches("a?.b", {"a", "a", "b"}));
}

TEST(PathExprTest, GroupedExpressions) {
  EXPECT_TRUE(Matches("(a.b)*.c", {"c"}));
  EXPECT_TRUE(Matches("(a.b)*.c", {"a", "b", "c"}));
  EXPECT_TRUE(Matches("(a.b)*.c", {"a", "b", "a", "b", "c"}));
  EXPECT_FALSE(Matches("(a.b)*.c", {"a", "c"}));
}

TEST(PathExprTest, LabelChainDetection) {
  std::vector<std::string> chain;
  EXPECT_TRUE(PathExpr::Parse("homes.home").value().IsLabelChain(&chain));
  EXPECT_EQ(chain, (std::vector<std::string>{"homes", "home"}));
  EXPECT_TRUE(PathExpr::Parse("a").value().IsLabelChain(&chain));
  EXPECT_EQ(chain, (std::vector<std::string>{"a"}));
  EXPECT_FALSE(PathExpr::Parse("zip._").value().IsLabelChain());
  EXPECT_FALSE(PathExpr::Parse("a|b").value().IsLabelChain());
  EXPECT_FALSE(PathExpr::Parse("a*").value().IsLabelChain());
}

TEST(PathExprTest, RecursiveDetection) {
  EXPECT_FALSE(PathExpr::Parse("a.b").value().IsRecursive());
  EXPECT_FALSE(PathExpr::Parse("a|b").value().IsRecursive());
  EXPECT_TRUE(PathExpr::Parse("a*").value().IsRecursive());
  EXPECT_TRUE(PathExpr::Parse("x.(a.b)+").value().IsRecursive());
  EXPECT_FALSE(PathExpr::Parse("a?").value().IsRecursive());
}

TEST(PathExprTest, TextNormalization) {
  EXPECT_EQ(PathExpr::Parse(" homes . home ").value().text(), "homes.home");
}

TEST(PathExprTest, ParseErrors) {
  EXPECT_FALSE(PathExpr::Parse("").ok());
  EXPECT_FALSE(PathExpr::Parse("a..b").ok());
  EXPECT_FALSE(PathExpr::Parse("(a").ok());
  EXPECT_FALSE(PathExpr::Parse("a)").ok());
  EXPECT_FALSE(PathExpr::Parse("|a").ok());
  EXPECT_FALSE(PathExpr::Parse("*").ok());
}

TEST(PathExprTest, LabelsWithSpecialNameChars) {
  EXPECT_TRUE(Matches("med_home", {"med_home"}));
  EXPECT_TRUE(Matches("@class", {"@class"}));
  EXPECT_TRUE(Matches("ns:tag", {"ns:tag"}));
}

// Property-style sweep: chains of length k match exactly their own path.
class ChainLengthTest : public ::testing::TestWithParam<int> {};

TEST_P(ChainLengthTest, ChainMatchesExactlyItself) {
  int k = GetParam();
  std::string expr;
  std::vector<std::string> path;
  for (int i = 0; i < k; ++i) {
    if (i > 0) expr += ".";
    std::string label = "l" + std::to_string(i);
    expr += label;
    path.push_back(label);
  }
  auto p = PathExpr::Parse(expr);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().Matches(path));
  // Any prefix fails; any extension fails.
  std::vector<std::string> prefix(path.begin(), path.end() - 1);
  EXPECT_FALSE(p.value().Matches(prefix));
  auto extended = path;
  extended.push_back("extra");
  EXPECT_FALSE(p.value().Matches(extended));
}

INSTANTIATE_TEST_SUITE_P(Chains, ChainLengthTest, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace mix::pathexpr
