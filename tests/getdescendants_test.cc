#include <gtest/gtest.h>

#include "algebra/get_descendants_op.h"
#include "algebra/source_op.h"
#include "test_util.h"
#include "xml/doc_navigable.h"

namespace mix::algebra {
namespace {

using pathexpr::PathExpr;

std::vector<std::string> Matches(const std::string& term,
                                 const std::string& path,
                                 GetDescendantsOp::Options options = {}) {
  auto doc = testing::Doc(term);
  xml::DocNavigable nav(doc.get());
  SourceOp source(&nav, "R");
  GetDescendantsOp gd(&source, "R", PathExpr::Parse(path).ValueOrDie(), "X",
                      options);
  std::vector<std::string> out;
  for (auto b = gd.FirstBinding(); b.has_value(); b = gd.NextBinding(*b)) {
    out.push_back(TermOfValue(gd.Attr(*b, "X")));
  }
  return out;
}

TEST(GetDescendantsTest, PaperExampleZipExtraction) {
  // The §3 example: getDescendants_{$H, zip._ -> $V1} on home trees.
  auto doc = testing::Doc(
      "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]]]");
  xml::DocNavigable nav(doc.get());
  SourceOp source(&nav, "R");
  GetDescendantsOp homes(&source, "R",
                         PathExpr::Parse("home").ValueOrDie(), "H");
  GetDescendantsOp zips(&homes, "H", PathExpr::Parse("zip._").ValueOrDie(),
                        "V1");
  EXPECT_EQ(zips.schema(), (VarList{"R", "H", "V1"}));

  // Matches the paper's output binding list.
  EXPECT_EQ(testing::StreamToTerm(&zips),
            "bs[b[R[homes[home[addr[La Jolla],zip[91220]],"
            "home[addr[El Cajon],zip[91223]]]],"
            "H[home[addr[La Jolla],zip[91220]]],V1[91220]],"
            "b[R[homes[home[addr[La Jolla],zip[91220]],"
            "home[addr[El Cajon],zip[91223]]]],"
            "H[home[addr[El Cajon],zip[91223]]],V1[91223]]]");
}

TEST(GetDescendantsTest, DocumentOrder) {
  EXPECT_EQ(Matches("r[a[b[x]],b[y],c[b[z]]]", "_.b|b"),
            (std::vector<std::string>{"b[x]", "b[y]", "b[z]"}));
}

TEST(GetDescendantsTest, WildcardStep) {
  EXPECT_EQ(Matches("r[a[1],b[2]]", "_._"),
            (std::vector<std::string>{"1", "2"}));
}

TEST(GetDescendantsTest, RecursiveDescent) {
  EXPECT_EQ(Matches("r[a[a[a[leaf]]],a[x]]", "a+"),
            (std::vector<std::string>{"a[a[a[leaf]]]", "a[a[leaf]]", "a[leaf]",
                                      "a[x]"}));
}

TEST(GetDescendantsTest, AnyDepthSearch) {
  EXPECT_EQ(Matches("r[x[y[zip[1]]],zip[2],q[zip[3]]]", "_*.zip"),
            (std::vector<std::string>{"zip[1]", "zip[2]", "zip[3]"}));
}

TEST(GetDescendantsTest, NoMatchesSkipsBinding) {
  EXPECT_TRUE(Matches("r[a,b,c]", "nothing").empty());
}

TEST(GetDescendantsTest, AcceptingNodeMayHaveMatchingDescendants) {
  // a and a.b both match a.b? — wait: re a.b? matches [a] and [a,b].
  EXPECT_EQ(Matches("r[a[b[1],c[2]]]", "a.b?"),
            (std::vector<std::string>{"a[b[1],c[2]]", "b[1]"}));
}

TEST(GetDescendantsTest, PruningSkipsDeadSubtrees) {
  auto doc = testing::Doc("r[junk[deep[deep[deep[x]]]],home[zip[1]]]");
  xml::DocNavigable nav(doc.get());
  NavStats stats;
  CountingNavigable counted(&nav, &stats);
  SourceOp source(&counted, "R");
  GetDescendantsOp gd(&source, "R", PathExpr::Parse("home.zip").ValueOrDie(),
                      "X");
  auto b = gd.FirstBinding();
  ASSERT_TRUE(b.has_value());
  // The junk subtree is pruned at its root: its interior (4 nodes deep) is
  // never descended into.
  EXPECT_LE(stats.downs, 4);
}

TEST(GetDescendantsTest, SigmaModeFindsSameMatches) {
  GetDescendantsOp::Options sigma;
  sigma.use_select_sibling = true;
  const std::string doc = "r[x,home[zip[1]],y,home[zip[2]],z]";
  EXPECT_EQ(Matches(doc, "home.zip", sigma), Matches(doc, "home.zip"));
}

TEST(GetDescendantsTest, SigmaModeReducesSourceCommands) {
  // A long list where only the last child matches.
  std::string term = "r[";
  for (int i = 0; i < 50; ++i) term += "x,";
  term += "home[zip[1]]]";

  auto count = [&](bool use_sigma) {
    auto doc = testing::Doc(term);
    xml::DocNavigable nav(doc.get());
    NavStats stats;
    CountingNavigable counted(&nav, &stats);
    SourceOp source(&counted, "R");
    GetDescendantsOp::Options options;
    options.use_select_sibling = use_sigma;
    GetDescendantsOp gd(&source, "R", PathExpr::Parse("home").ValueOrDie(),
                        "X", options);
    EXPECT_TRUE(gd.FirstBinding().has_value());
    return stats;
  };
  NavStats with_sigma = count(true);
  NavStats without = count(false);
  // Without σ: ~50 r and ~50 f commands. With σ: one f + one σ.
  EXPECT_GT(without.total(), 50);
  EXPECT_LE(with_sigma.total(), 5);
  EXPECT_EQ(with_sigma.selects, 1);
}

TEST(GetDescendantsTest, ResumeFromStaleBindingIsConstantCost) {
  auto doc = testing::Doc("r[n[1],n[2],n[3],n[4]]");
  xml::DocNavigable nav(doc.get());
  SourceOp source(&nav, "R");
  GetDescendantsOp gd(&source, "R", PathExpr::Parse("n").ValueOrDie(), "X");

  auto b1 = gd.FirstBinding();
  auto b2 = gd.NextBinding(*b1);
  auto b3 = gd.NextBinding(*b2);
  ASSERT_TRUE(b3.has_value());
  // Resuming from b1 again yields an id equivalent to b2's match.
  auto again = gd.NextBinding(*b1);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(TermOfValue(gd.Attr(*again, "X")), "n[2]");
  // And the old ids still resolve.
  EXPECT_EQ(TermOfValue(gd.Attr(*b1, "X")), "n[1]");
  EXPECT_EQ(TermOfValue(gd.Attr(*b3, "X")), "n[3]");
}

TEST(GetDescendantsTest, MultipleInputBindings) {
  // Two anchors, each with matches: output is the concatenation.
  auto doc = testing::Doc("r[g[m[1],m[2]],g[m[3]]]");
  xml::DocNavigable nav(doc.get());
  SourceOp source(&nav, "R");
  GetDescendantsOp groups(&source, "R", PathExpr::Parse("g").ValueOrDie(),
                          "G");
  GetDescendantsOp members(&groups, "G", PathExpr::Parse("m._").ValueOrDie(),
                           "M");
  std::vector<std::string> out;
  for (auto b = members.FirstBinding(); b.has_value();
       b = members.NextBinding(*b)) {
    out.push_back(AtomOf(members.Attr(*b, "M")));
  }
  EXPECT_EQ(out, (std::vector<std::string>{"1", "2", "3"}));
}

TEST(GetDescendantsTest, AlternationPaths) {
  EXPECT_EQ(Matches("r[home[zip[1]],school[zip[2]],shop[zip[3]]]",
                    "(home|school).zip._"),
            (std::vector<std::string>{"1", "2"}));
}

TEST(GetDescendantsTest, LazyFirstMatchTouchesPrefixOnly) {
  // 1000 children; the first one matches — FirstBinding must not scan on.
  std::string term = "r[home[zip[1]]";
  for (int i = 0; i < 1000; ++i) term += ",x";
  term += "]";
  auto doc = testing::Doc(term);
  xml::DocNavigable nav(doc.get());
  NavStats stats;
  CountingNavigable counted(&nav, &stats);
  SourceOp source(&counted, "R");
  GetDescendantsOp gd(&source, "R", PathExpr::Parse("home").ValueOrDie(), "X");
  ASSERT_TRUE(gd.FirstBinding().has_value());
  EXPECT_LE(stats.total(), 5);
}

}  // namespace
}  // namespace mix::algebra
