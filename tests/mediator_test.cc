#include <gtest/gtest.h>

#include "buffer/buffer.h"
#include "mediator/instantiate.h"
#include "mediator/reference_eval.h"
#include "mediator/translate.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/random_tree.h"

namespace mix::mediator {
namespace {

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

const char* kHomes =
    "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]],"
    "home[addr[Nowhere],zip[99999]]]";
const char* kSchools =
    "schools[school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],"
    "school[dir[Hart],zip[91223]]]";

const char* kExpectedAnswer =
    "answer["
    "med_home[home[addr[La Jolla],zip[91220]],"
    "school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]]],"
    "med_home[home[addr[El Cajon],zip[91223]],school[dir[Hart],zip[91223]]]]";

PlanPtr Fig3Plan() {
  auto q = xmas::ParseQuery(kFig3);
  EXPECT_TRUE(q.ok());
  auto plan = TranslateQuery(q.value());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).ValueOrDie();
}

TEST(MediatorTest, RunningExampleEndToEnd) {
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());

  SourceRegistry sources;
  sources.Register("homesSrc", &homes_nav);
  sources.Register("schoolsSrc", &schools_nav);

  auto mediator = LazyMediator::Build(*Fig3Plan(), sources).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(mediator->document()), kExpectedAnswer);
}

TEST(MediatorTest, MatchesReferenceEvaluation) {
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  xml::Document scratch;
  ReferenceSources sources{{"homesSrc", homes->root()},
                           {"schoolsSrc", schools->root()}};
  const xml::Node* answer =
      EvaluateReference(*Fig3Plan(), sources, &scratch).ValueOrDie();
  EXPECT_EQ(xml::ToTerm(answer), kExpectedAnswer);
}

TEST(MediatorTest, RootHandleWithoutSourceAccess) {
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  NavStats homes_stats;
  NavStats schools_stats;
  CountingNavigable homes_counted(&homes_nav, &homes_stats);
  CountingNavigable schools_counted(&schools_nav, &schools_stats);

  SourceRegistry sources;
  sources.Register("homesSrc", &homes_counted);
  sources.Register("schoolsSrc", &schools_counted);
  auto mediator = LazyMediator::Build(*Fig3Plan(), sources).ValueOrDie();

  // Preprocessing contract: the root handle costs zero source navigations.
  NodeId root = mediator->document()->Root();
  EXPECT_EQ(homes_stats.total(), 0);
  EXPECT_EQ(schools_stats.total(), 0);

  // First use of the handle resolves the first binding lazily: a handful
  // of navigations, far from a full evaluation of either source.
  EXPECT_EQ(mediator->document()->Fetch(root), "answer");
  EXPECT_GT(homes_stats.total(), 0);
  EXPECT_LT(homes_stats.total(), 25);
  EXPECT_LT(schools_stats.total(), 25);
}

TEST(MediatorTest, PartialNavigationTouchesPartOfSources) {
  // A large instance; the client browses only the first med_home.
  auto homes = xml::MakeHomesDoc(500, 50);
  auto schools = xml::MakeSchoolsDoc(500, 50);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  NavStats homes_stats;
  CountingNavigable homes_counted(&homes_nav, &homes_stats);

  SourceRegistry sources;
  sources.Register("homesSrc", &homes_counted);
  sources.Register("schoolsSrc", &schools_nav);
  auto mediator = LazyMediator::Build(*Fig3Plan(), sources).ValueOrDie();

  Navigable* doc = mediator->document();
  auto mh = doc->Down(doc->Root());
  ASSERT_TRUE(mh.has_value());
  EXPECT_EQ(doc->Fetch(*mh), "med_home");
  // The homes source was only touched around its first matching home, not
  // the ~1500 nodes a full evaluation would visit.
  EXPECT_LT(homes_stats.total(), 100);
}

TEST(MediatorTest, OverBufferedLxpSources) {
  // Full stack: XML-file LXP wrappers under buffers under the mediator.
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  wrappers::XmlLxpWrapper::Options wopts;
  wopts.chunk = 2;
  wopts.inline_limit = 3;
  wrappers::XmlLxpWrapper homes_wrapper(homes.get(), wopts);
  wrappers::XmlLxpWrapper schools_wrapper(schools.get(), wopts);
  buffer::BufferComponent homes_buffer(&homes_wrapper, "homes");
  buffer::BufferComponent schools_buffer(&schools_wrapper, "schools");

  SourceRegistry sources;
  sources.Register("homesSrc", &homes_buffer);
  sources.Register("schoolsSrc", &schools_buffer);
  auto mediator = LazyMediator::Build(*Fig3Plan(), sources).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(mediator->document()), kExpectedAnswer);
}

TEST(MediatorTest, StackedMediators) {
  // Fig. 1: a mediator over another mediator's virtual view.
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  SourceRegistry lower_sources;
  lower_sources.Register("homesSrc", &homes_nav);
  lower_sources.Register("schoolsSrc", &schools_nav);
  auto lower = LazyMediator::Build(*Fig3Plan(), lower_sources).ValueOrDie();

  // Upper mediator: extract every school from the lower's virtual answer.
  auto upper_q = xmas::ParseQuery(
      "CONSTRUCT <schools_found> $S {$S} </schools_found> {} "
      "WHERE lower answer.med_home.school $S");
  auto upper_plan = TranslateQuery(upper_q.value()).ValueOrDie();
  SourceRegistry upper_sources;
  upper_sources.Register("lower", lower->document());
  auto upper = LazyMediator::Build(*upper_plan, upper_sources).ValueOrDie();

  EXPECT_EQ(testing::MaterializeToTerm(upper->document()),
            "schools_found[school[dir[Smith],zip[91220]],"
            "school[dir[Bar],zip[91220]],school[dir[Hart],zip[91223]]]");
}

TEST(MediatorTest, UnknownSourceFails) {
  SourceRegistry sources;
  auto result = LazyMediator::Build(*Fig3Plan(), sources);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kNotFound);
}

TEST(MediatorTest, EmptyJoinStillYieldsAnswerElement) {
  auto homes = testing::Doc("homes[home[addr[A],zip[1]]]");
  auto schools = testing::Doc("schools[school[dir[S],zip[2]]]");
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  SourceRegistry sources;
  sources.Register("homesSrc", &homes_nav);
  sources.Register("schoolsSrc", &schools_nav);
  auto mediator = LazyMediator::Build(*Fig3Plan(), sources).ValueOrDie();
  // groupBy{} over an empty stream: one empty answer element.
  EXPECT_EQ(testing::MaterializeToTerm(mediator->document()), "answer");
}

TEST(MediatorTest, EagerBaselineEqualsLazyMaterialization) {
  auto homes = xml::MakeHomesDoc(20, 4);
  auto schools = xml::MakeSchoolsDoc(20, 4);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  SourceRegistry sources;
  sources.Register("homesSrc", &homes_nav);
  sources.Register("schoolsSrc", &schools_nav);
  auto mediator = LazyMediator::Build(*Fig3Plan(), sources).ValueOrDie();
  std::string lazy = testing::MaterializeToTerm(mediator->document());

  xml::Document scratch;
  ReferenceSources ref{{"homesSrc", homes->root()},
                       {"schoolsSrc", schools->root()}};
  const xml::Node* answer =
      EvaluateReference(*Fig3Plan(), ref, &scratch).ValueOrDie();
  EXPECT_EQ(lazy, xml::ToTerm(answer));
}

}  // namespace
}  // namespace mix::mediator
