#include <gtest/gtest.h>

#include "algebra/concatenate_op.h"
#include "algebra/create_element_op.h"
#include "algebra/extra_ops.h"
#include "algebra/group_by_op.h"
#include "test_util.h"
#include "xml/doc_navigable.h"

namespace mix::algebra {
namespace {

struct Fixture {
  explicit Fixture(const std::string& term) : doc(testing::Doc(term)), nav(doc.get()) {}

  ValueRef Node(std::initializer_list<int> path) {
    const xml::Node* n = doc->root();
    for (int i : path) n = n->children[static_cast<size_t>(i)];
    return testing::RefTo(&nav, n);
  }

  std::unique_ptr<xml::Document> doc;
  xml::DocNavigable nav;
};

// ---------------------------------------------------------------------------
// concatenate: the four cases of the paper's definition.
// ---------------------------------------------------------------------------

TEST(ConcatenateTest, ListList) {
  Fixture f("d[list[a,b],list[c,d]]");
  testing::VectorBindingStream in(VarList{"X", "Y"},
                                  {{f.Node({0}), f.Node({1})}});
  ConcatenateOp cc(&in, "X", "Y", "Z");
  auto b = cc.FirstBinding();
  EXPECT_EQ(TermOfValue(cc.Attr(*b, "Z")), "list[a,b,c,d]");
}

TEST(ConcatenateTest, ListValue) {
  Fixture f("d[list[a,b],v]");
  testing::VectorBindingStream in(VarList{"X", "Y"},
                                  {{f.Node({0}), f.Node({1})}});
  ConcatenateOp cc(&in, "X", "Y", "Z");
  auto b = cc.FirstBinding();
  EXPECT_EQ(TermOfValue(cc.Attr(*b, "Z")), "list[a,b,v]");
}

TEST(ConcatenateTest, ValueList) {
  Fixture f("d[v,list[c,d]]");
  testing::VectorBindingStream in(VarList{"X", "Y"},
                                  {{f.Node({0}), f.Node({1})}});
  ConcatenateOp cc(&in, "X", "Y", "Z");
  auto b = cc.FirstBinding();
  EXPECT_EQ(TermOfValue(cc.Attr(*b, "Z")), "list[v,c,d]");
}

TEST(ConcatenateTest, ValueValue) {
  Fixture f("d[home[zip[1]],school[zip[1]]]");
  testing::VectorBindingStream in(VarList{"X", "Y"},
                                  {{f.Node({0}), f.Node({1})}});
  ConcatenateOp cc(&in, "X", "Y", "Z");
  auto b = cc.FirstBinding();
  EXPECT_EQ(TermOfValue(cc.Attr(*b, "Z")), "list[home[zip[1]],school[zip[1]]]");
}

TEST(ConcatenateTest, EmptyListSides) {
  Fixture f("d[list,list[c]]");
  testing::VectorBindingStream in(VarList{"X", "Y"},
                                  {{f.Node({0}), f.Node({1})}});
  ConcatenateOp cc(&in, "X", "Y", "Z");
  auto b = cc.FirstBinding();
  EXPECT_EQ(TermOfValue(cc.Attr(*b, "Z")), "list[c]");

  testing::VectorBindingStream in2(VarList{"X", "Y"},
                                   {{f.Node({0}), f.Node({0})}});
  ConcatenateOp cc2(&in2, "X", "Y", "Z");
  auto b2 = cc2.FirstBinding();
  // Both sides empty: the result list is empty (a leaf when materialized).
  EXPECT_EQ(TermOfValue(cc2.Attr(*b2, "Z")), "list");
}

TEST(ConcatenateTest, CrossingFromXToYMidNavigation) {
  Fixture f("d[list[a,b],list[c]]");
  testing::VectorBindingStream in(VarList{"X", "Y"},
                                  {{f.Node({0}), f.Node({1})}});
  ConcatenateOp cc(&in, "X", "Y", "Z");
  auto b = cc.FirstBinding();
  ValueRef z = cc.Attr(*b, "Z");
  auto item = z.nav->Down(z.id);
  EXPECT_EQ(z.nav->Fetch(*item), "a");
  item = z.nav->Right(*item);
  EXPECT_EQ(z.nav->Fetch(*item), "b");
  item = z.nav->Right(*item);  // crosses to the y side
  EXPECT_EQ(z.nav->Fetch(*item), "c");
  EXPECT_FALSE(z.nav->Right(*item).has_value());
}

TEST(ConcatenateTest, PreservesOtherVariables) {
  Fixture f("d[k,list[a],list[b]]");
  testing::VectorBindingStream in(
      VarList{"K", "X", "Y"}, {{f.Node({0}), f.Node({1}), f.Node({2})}});
  ConcatenateOp cc(&in, "X", "Y", "Z");
  EXPECT_EQ(cc.schema(), (VarList{"K", "X", "Y", "Z"}));
  auto b = cc.FirstBinding();
  EXPECT_EQ(AtomOf(cc.Attr(*b, "K")), "k");
  EXPECT_EQ(TermOfValue(cc.Attr(*b, "X")), "list[a]");
}

// ---------------------------------------------------------------------------
// createElement (Fig. 9).
// ---------------------------------------------------------------------------

TEST(CreateElementTest, ConstantLabelChildrenFromList) {
  Fixture f("d[list[home[zip[1]],school[zip[1]]]]");
  testing::VectorBindingStream in(VarList{"HLSs"}, {{f.Node({0})}});
  CreateElementOp ce(&in, CreateElementOp::LabelSpec::Constant("med_home"),
                     "HLSs", "MH");
  auto b = ce.FirstBinding();
  // Fig. 9, 7th mapping: fetching the label needs no input navigation.
  ValueRef mh = ce.Attr(*b, "MH");
  EXPECT_EQ(mh.nav->Fetch(mh.id), "med_home");
  // 6th mapping: children are the subtrees of b.ch.
  EXPECT_EQ(TermOfValue(mh), "med_home[home[zip[1]],school[zip[1]]]");
}

TEST(CreateElementTest, VariableLabel) {
  Fixture f("d[tagname[med_home],list[x]]");
  testing::VectorBindingStream in(VarList{"T", "Ch"},
                                  {{f.Node({0, 0}), f.Node({1})}});
  CreateElementOp ce(&in, CreateElementOp::LabelSpec::Variable("T"), "Ch",
                     "E");
  auto b = ce.FirstBinding();
  EXPECT_EQ(TermOfValue(ce.Attr(*b, "E")), "med_home[x]");
}

TEST(CreateElementTest, EmptyChildren) {
  Fixture f("d[list]");
  testing::VectorBindingStream in(VarList{"Ch"}, {{f.Node({0})}});
  CreateElementOp ce(&in, CreateElementOp::LabelSpec::Constant("answer"), "Ch",
                     "E");
  auto b = ce.FirstBinding();
  ValueRef e = ce.Attr(*b, "E");
  EXPECT_EQ(e.nav->Fetch(e.id), "answer");
  EXPECT_FALSE(e.nav->Down(e.id).has_value());
  EXPECT_FALSE(e.nav->Right(e.id).has_value());
}

TEST(CreateElementTest, PerBindingElements) {
  Fixture f("d[list[a],list[b]]");
  testing::VectorBindingStream in(VarList{"Ch"},
                                  {{f.Node({0})}, {f.Node({1})}});
  CreateElementOp ce(&in, CreateElementOp::LabelSpec::Constant("e"), "Ch",
                     "E");
  EXPECT_EQ(testing::StreamToTerm(&ce),
            "bs[b[Ch[list[a]],E[e[a]]],b[Ch[list[b]],E[e[b]]]]");
}

// ---------------------------------------------------------------------------
// The paper's pipeline fragment: groupBy → concatenate → createElement
// reproduces the §3 worked example output.
// ---------------------------------------------------------------------------

TEST(PipelineTest, GroupConcatCreateMatchesPaperExample) {
  Fixture f(
      "d[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]],"
      "school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],"
      "school[dir[Hart],zip[91223]]]");
  // Join output from §3: (home1,school1),(home1,school2),(home2,school3).
  testing::VectorBindingStream in(
      VarList{"H", "S"},
      {{f.Node({0}), f.Node({2})},
       {f.Node({0}), f.Node({3})},
       {f.Node({1}), f.Node({4})}});
  GroupByOp gb(&in, {"H"}, "S", "LSs");
  ConcatenateOp cc(&gb, "H", "LSs", "HLSs");
  CreateElementOp ce(&cc, CreateElementOp::LabelSpec::Constant("med_home"),
                     "HLSs", "MHs");

  std::vector<std::string> med_homes;
  for (auto b = ce.FirstBinding(); b.has_value(); b = ce.NextBinding(*b)) {
    med_homes.push_back(TermOfValue(ce.Attr(*b, "MHs")));
  }
  ASSERT_EQ(med_homes.size(), 2u);
  EXPECT_EQ(med_homes[0],
            "med_home[home[addr[La Jolla],zip[91220]],"
            "school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]]]");
  EXPECT_EQ(med_homes[1],
            "med_home[home[addr[El Cajon],zip[91223]],"
            "school[dir[Hart],zip[91223]]]");
}

// ---------------------------------------------------------------------------
// wrapList / const.
// ---------------------------------------------------------------------------

TEST(WrapListTest, SingletonList) {
  Fixture f("d[home[zip[1]]]");
  testing::VectorBindingStream in(VarList{"H"}, {{f.Node({0})}});
  WrapListOp wl(&in, "H", "L");
  auto b = wl.FirstBinding();
  EXPECT_EQ(TermOfValue(wl.Attr(*b, "L")), "list[home[zip[1]]]");
  // The wrapped item has no right sibling even though the underlying node
  // might (it is the sole list member).
  ValueRef l = wl.Attr(*b, "L");
  auto item = l.nav->Down(l.id);
  EXPECT_FALSE(l.nav->Right(*item).has_value());
}

TEST(ConstTest, LeafPerBinding) {
  Fixture f("d[a,b]");
  testing::VectorBindingStream in(VarList{"X"}, {{f.Node({0})}, {f.Node({1})}});
  ConstOp c(&in, "hello", "T");
  EXPECT_EQ(testing::StreamToTerm(&c),
            "bs[b[X[a],T[hello]],b[X[b],T[hello]]]");
}

}  // namespace
}  // namespace mix::algebra
