// Randomized plan-level differential testing: build random (but
// schema-valid) algebra plans over random documents and check that the
// lazily navigated virtual answer equals the eager reference evaluation.
// This sweeps operator interactions no hand-written test enumerates.
#include <gtest/gtest.h>

#include "mediator/instantiate.h"
#include "mediator/reference_eval.h"
#include "mediator/rewrite.h"
#include "test_util.h"
#include "xml/doc_navigable.h"
#include "xml/random_tree.h"

namespace mix::mediator {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  int Pick(int bound) { return static_cast<int>(Next() % static_cast<uint64_t>(bound)); }

 private:
  uint64_t state_;
};

const char* kPaths[] = {"a0", "a1", "_", "a0._", "_._", "(a0|a1)", "_*.a1",
                        "a0*.a1", "a2?._"};

struct GenStream {
  PlanPtr plan;
  algebra::VarList schema;
};

/// Applies `steps` random schema-valid operators to a source stream.
GenStream GenerateStream(Rng* rng, const std::string& source_name,
                         const std::string& prefix, int steps) {
  GenStream s;
  std::string root = prefix + "root";
  s.plan = PlanNode::Source(source_name, root);
  s.schema = {root};
  int fresh = 0;
  for (int i = 0; i < steps; ++i) {
    int op = rng->Pick(9);
    switch (op) {
      case 0:
      case 1:
      case 2: {  // getDescendants (weighted: keeps schemas growing)
        std::string anchor =
            s.schema[static_cast<size_t>(rng->Pick(static_cast<int>(s.schema.size())))];
        std::string out = prefix + "v" + std::to_string(fresh++);
        s.plan = PlanNode::GetDescendants(std::move(s.plan), anchor,
                                          kPaths[rng->Pick(9)], out);
        s.schema.push_back(out);
        break;
      }
      case 3: {  // select var-const
        std::string var =
            s.schema[static_cast<size_t>(rng->Pick(static_cast<int>(s.schema.size())))];
        algebra::CompareOp cmp = static_cast<algebra::CompareOp>(rng->Pick(6));
        s.plan = PlanNode::Select(
            std::move(s.plan),
            algebra::BindingPredicate::VarConst(
                var, cmp, "t" + std::to_string(rng->Pick(20))));
        break;
      }
      case 4: {  // wrapList
        std::string var =
            s.schema[static_cast<size_t>(rng->Pick(static_cast<int>(s.schema.size())))];
        std::string out = prefix + "w" + std::to_string(fresh++);
        s.plan = PlanNode::WrapList(std::move(s.plan), var, out);
        s.schema.push_back(out);
        break;
      }
      case 5: {  // const
        std::string out = prefix + "c" + std::to_string(fresh++);
        s.plan = PlanNode::Const(std::move(s.plan),
                                 "k" + std::to_string(rng->Pick(5)), out);
        s.schema.push_back(out);
        break;
      }
      case 6: {  // distinct or orderBy
        if (rng->Pick(2) == 0) {
          s.plan = PlanNode::Distinct(std::move(s.plan));
        } else {
          std::string var =
              s.schema[static_cast<size_t>(rng->Pick(static_cast<int>(s.schema.size())))];
          s.plan = PlanNode::OrderBy(std::move(s.plan), {var});
        }
        break;
      }
      case 7: {  // concatenate or materialize
        if (rng->Pick(2) == 0 && s.schema.size() >= 2) {
          std::string x =
              s.schema[static_cast<size_t>(rng->Pick(static_cast<int>(s.schema.size())))];
          std::string y =
              s.schema[static_cast<size_t>(rng->Pick(static_cast<int>(s.schema.size())))];
          std::string out = prefix + "z" + std::to_string(fresh++);
          s.plan = PlanNode::Concatenate(std::move(s.plan), x, y, out);
          s.schema.push_back(out);
        } else {
          s.plan = PlanNode::Materialize(std::move(s.plan));
        }
        break;
      }
      case 8: {  // rename
        std::string old_var =
            s.schema[static_cast<size_t>(rng->Pick(static_cast<int>(s.schema.size())))];
        std::string new_var = prefix + "n" + std::to_string(fresh++);
        s.plan = PlanNode::Rename(std::move(s.plan), old_var, new_var);
        for (auto& v : s.schema) {
          if (v == old_var) v = new_var;
        }
        break;
      }
    }
  }
  return s;
}

/// Full random plan: 1-2 source streams, joined if 2, grouped and wrapped
/// into a single answer element.
PlanPtr GeneratePlan(Rng* rng) {
  bool two_sources = rng->Pick(2) == 1;
  GenStream left = GenerateStream(rng, "src1", "l", 2 + rng->Pick(3));
  GenStream top = std::move(left);
  if (two_sources) {
    GenStream right = GenerateStream(rng, "src2", "r", 1 + rng->Pick(3));
    std::string lv =
        top.schema[static_cast<size_t>(rng->Pick(static_cast<int>(top.schema.size())))];
    std::string rv = right.schema[static_cast<size_t>(
        rng->Pick(static_cast<int>(right.schema.size())))];
    algebra::CompareOp cmp =
        rng->Pick(2) == 0 ? algebra::CompareOp::kEq : algebra::CompareOp::kNe;
    PlanPtr join =
        PlanNode::Join(std::move(top.plan), std::move(right.plan),
                       algebra::BindingPredicate::VarVar(lv, cmp, rv));
    // Randomly exercise the join strategy options (semantics-neutral).
    join->join_cache_inner = rng->Pick(2) == 0;
    join->join_index_inner = rng->Pick(3) == 0;
    GenStream merged;
    merged.plan = std::move(join);
    merged.schema = top.schema;
    for (auto& v : right.schema) merged.schema.push_back(v);
    top = std::move(merged);
  }
  std::string grouped =
      top.schema[static_cast<size_t>(rng->Pick(static_cast<int>(top.schema.size())))];
  PlanPtr gb = PlanNode::GroupBy(std::move(top.plan), {}, grouped, "ALL");
  PlanPtr ce = PlanNode::CreateElement(std::move(gb), true, "answer", "ALL",
                                       "DOC");
  return PlanNode::TupleDestroy(std::move(ce), "DOC");
}

class RandomPlanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPlanTest, LazyEqualsReference) {
  Rng rng(GetParam());

  xml::RandomTreeOptions tree_options;
  tree_options.seed = GetParam() * 31 + 1;
  tree_options.max_depth = 4;
  tree_options.max_fanout = 3;
  tree_options.label_alphabet = 3;
  auto doc1 = xml::RandomTree(tree_options);
  tree_options.seed = GetParam() * 31 + 2;
  auto doc2 = xml::RandomTree(tree_options);

  for (int round = 0; round < 5; ++round) {
    PlanPtr plan = GeneratePlan(&rng);
    ASSERT_TRUE(ComputeSchema(*plan->children[0]).ok());

    xml::DocNavigable nav1(doc1.get());
    xml::DocNavigable nav2(doc2.get());
    SourceRegistry sources;
    sources.Register("src1", &nav1);
    sources.Register("src2", &nav2);
    auto med = LazyMediator::Build(*plan, sources).ValueOrDie();
    std::string lazy = testing::MaterializeToTerm(med->document());

    xml::Document scratch;
    ReferenceSources ref{{"src1", doc1->root()}, {"src2", doc2->root()}};
    auto answer = EvaluateReference(*plan, ref, &scratch);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_EQ(lazy, xml::ToTerm(answer.value()))
        << "seed=" << GetParam() << " round=" << round << "\n"
        << plan->ToString();

    // And rewriting must not change the answer either.
    PlanPtr rewritten = plan->Clone();
    RewriteOptions options;
    options.sigma_capable_sources = true;
    Rewrite(&rewritten, options);
    xml::DocNavigable nav1b(doc1.get());
    xml::DocNavigable nav2b(doc2.get());
    SourceRegistry sources_b;
    sources_b.Register("src1", &nav1b);
    sources_b.Register("src2", &nav2b);
    auto med_b = LazyMediator::Build(*rewritten, sources_b).ValueOrDie();
    EXPECT_EQ(lazy, testing::MaterializeToTerm(med_b->document()))
        << "seed=" << GetParam() << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace mix::mediator
