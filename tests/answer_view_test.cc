// Tests for the cross-session answer-view cache (DESIGN.md §4 "Answer-view
// cache"): view-shape computation (select-chain factoring, transparent
// project stripping), the conservative predicate-implication test, publish
// rejection of degraded/truncated exports, LRU eviction under a byte
// budget, generation-bump invalidation, and the end-to-end service path —
// a subsumed warm Open is served from the snapshot with ZERO wrapper
// exchanges at byte-identical answers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "buffer/lxp.h"
#include "client/framed_document.h"
#include "mediator/answer_view_cache.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "service/service.h"
#include "service/session.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"

namespace mix::mediator {
namespace {

using algebra::CompareOp;
using service::MediatorService;
using service::SessionEnvironment;

// The Fig. 3 running example (same fixture as tests/service_test.cc).
const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

/// Base view: all zip values. The narrowed variants put a var-constant
/// select directly on the grouped variable, so their shapes share the base
/// key and differ only in the stripped predicate set — the case-2
/// subsumption target.
const char* kZipsBase = R"(
CONSTRUCT <answer> $V {$V} </answer> {}
WHERE homesSrc homes.home.zip._ $V
)";
const char* kZipsEq = R"(
CONSTRUCT <answer> $V {$V} </answer> {}
WHERE homesSrc homes.home.zip._ $V AND $V = '91220'
)";
const char* kZipsLt = R"(
CONSTRUCT <answer> $V {$V} </answer> {}
WHERE homesSrc homes.home.zip._ $V AND $V < '91225'
)";

/// A predicate on a variable that is NOT the grouped one cannot be
/// factored out of the base key (the snapshot does not retain $V per $H):
/// such plans stay exact-match-only.
const char* kHomesByZip = R"(
CONSTRUCT <answer> $H {$H} </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V AND $V = '91220'
)";

const char* kHomes =
    "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]],"
    "home[addr[Nowhere],zip[99999]]]";
const char* kSchools =
    "schools[school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],"
    "school[dir[Hart],zip[91223]]]";

ViewShape ShapeOf(const char* query) {
  auto plan = CompileXmas(query);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return ComputeViewShape(*plan.value());
}

// ---------------------------------------------------------------------------
// View-shape computation.
// ---------------------------------------------------------------------------

TEST(ViewShapeTest, SelectChainOnGroupedVarIsFactored) {
  ViewShape base = ShapeOf(kZipsBase);
  ViewShape eq = ShapeOf(kZipsEq);
  ViewShape lt = ShapeOf(kZipsLt);

  ASSERT_TRUE(base.valid && eq.valid && lt.valid);
  EXPECT_TRUE(base.factored && eq.factored && lt.factored);
  // All three collapse to the same predicate-free base key...
  EXPECT_EQ(base.base_key, eq.base_key);
  EXPECT_EQ(base.base_key, lt.base_key);
  EXPECT_EQ(base.base_key.find("select"), std::string::npos);
  // ...with the stripped conjuncts recorded on the grouped variable.
  EXPECT_TRUE(base.preds.empty());
  ASSERT_EQ(eq.preds.size(), 1u);
  EXPECT_EQ(eq.preds[0].var, base.grouped_var);
  EXPECT_EQ(eq.preds[0].op, CompareOp::kEq);
  EXPECT_EQ(eq.preds[0].constant, "91220");
  ASSERT_EQ(lt.preds.size(), 1u);
  EXPECT_EQ(lt.preds[0].op, CompareOp::kLt);
  EXPECT_EQ(base.sources, std::vector<std::string>{"homesSrc"});
}

TEST(ViewShapeTest, PredicateOnForeignVarStaysInBaseKey) {
  // σ is on $V while the grouped variable is $H: the select cannot move
  // out of the base key, so this shape only ever matches itself.
  ViewShape s = ShapeOf(kHomesByZip);
  ASSERT_TRUE(s.valid);
  EXPECT_TRUE(s.preds.empty());
  EXPECT_NE(s.base_key.find("select"), std::string::npos);
}

TEST(ViewShapeTest, Fig3IsFactoredWithoutPredicates) {
  ViewShape s = ShapeOf(kFig3);
  ASSERT_TRUE(s.valid);
  EXPECT_TRUE(s.factored);
  EXPECT_TRUE(s.preds.empty());
  EXPECT_EQ(s.root_label, "answer");
  EXPECT_EQ(s.sources,
            (std::vector<std::string>{"homesSrc", "schoolsSrc"}));
}

TEST(ViewShapeTest, TransparentProjectUnderTupleDestroyIsStripped) {
  auto compiled = CompileXmas(kZipsBase);
  ASSERT_TRUE(compiled.ok());
  ViewShape plain = ComputeViewShape(*compiled.value());

  // Wrap the same crown in project[{create_out}] under tupleDestroy — a
  // schema-only narrowing the descriptor must see through.
  PlanPtr clone = compiled.value()->Clone();
  std::string out = clone->var;
  PlanPtr inner = std::move(clone->children[0]);
  PlanPtr wrapped = PlanNode::TupleDestroy(
      PlanNode::Project(std::move(inner), {out}), out);
  ViewShape projected = ComputeViewShape(*wrapped);

  ASSERT_TRUE(plain.valid && projected.valid);
  EXPECT_EQ(plain.base_key, projected.base_key);
  EXPECT_EQ(plain.factored, projected.factored);
}

TEST(ViewShapeTest, NonTupleDestroyRootIsInvalid) {
  PlanPtr leaf = PlanNode::Source("homesSrc", "H");
  EXPECT_FALSE(ComputeViewShape(*leaf).valid);
}

// ---------------------------------------------------------------------------
// Predicate implication (conservative, dual-order).
// ---------------------------------------------------------------------------

ViewPredicate P(const char* var, CompareOp op, const char* c) {
  return ViewPredicate{var, op, c};
}

TEST(PredicateImpliesTest, TruthTableAndConservatism) {
  using Op = CompareOp;
  // Reflexive / strengthening rows.
  EXPECT_TRUE(PredicateImplies(P("V", Op::kEq, "91220"), P("V", Op::kEq, "91220")));
  EXPECT_FALSE(PredicateImplies(P("V", Op::kEq, "91220"), P("V", Op::kEq, "91223")));
  EXPECT_TRUE(PredicateImplies(P("V", Op::kLt, "91220"), P("V", Op::kLe, "91220")));
  EXPECT_FALSE(PredicateImplies(P("V", Op::kLe, "91220"), P("V", Op::kLt, "91220")));
  EXPECT_TRUE(PredicateImplies(P("V", Op::kGt, "91223"), P("V", Op::kGe, "91220")));
  // Numeric constants where BOTH orders agree: eq ⇒ lt holds.
  EXPECT_TRUE(PredicateImplies(P("V", Op::kEq, "91220"), P("V", Op::kLt, "91225")));
  EXPECT_TRUE(PredicateImplies(P("V", Op::kEq, "91220"), P("V", Op::kNe, "91223")));
  // Numeric and lexicographic orders DISAGREE (9 < 10 but "9" > "10"):
  // CompareAtoms would sort mixed values inconsistently, so claim nothing.
  EXPECT_FALSE(PredicateImplies(P("V", Op::kEq, "9"), P("V", Op::kLt, "10")));
  // Mixed numeric-ness is never claimed.
  EXPECT_FALSE(PredicateImplies(P("V", Op::kEq, "10"), P("V", Op::kNe, "abc")));
  // Pure lexicographic (non-numeric) constants use the lex order alone.
  EXPECT_TRUE(PredicateImplies(P("V", Op::kEq, "apple"), P("V", Op::kLt, "banana")));
  // Different variables never imply.
  EXPECT_FALSE(PredicateImplies(P("V", Op::kEq, "x"), P("W", Op::kEq, "x")));
}

// ---------------------------------------------------------------------------
// Cache mechanics (direct, no service).
// ---------------------------------------------------------------------------

std::vector<SubtreeEntry> Export(const char* term) {
  auto doc = testing::Doc(term);
  xml::DocNavigable nav(doc.get());
  std::vector<SubtreeEntry> entries;
  nav.FetchSubtree(nav.Root(), -1, &entries);
  return entries;
}

ViewShape HandShape(const std::string& key,
                    std::vector<std::string> sources = {"homesSrc"}) {
  ViewShape s;
  s.valid = true;
  s.base_key = key;
  s.sources = std::move(sources);
  return s;
}

TEST(AnswerViewCacheTest, DegradedAndTruncatedExportsAreNeverPublished) {
  AnswerViewCache cache(AnswerViewCache::Options{1 << 20});

  cache.Publish(HandShape("k1"), Export("answer[a,#unavailable]"), {{"homesSrc", 0}});
  std::vector<SubtreeEntry> cut = Export("answer[a,b]");
  cut[1].truncated = true;
  cache.Publish(HandShape("k2"), cut, {{"homesSrc", 0}});
  std::vector<SubtreeEntry> malformed = Export("answer[a,b]");
  malformed[2].depth = 5;  // depth can grow by at most 1 per entry
  cache.Publish(HandShape("k3"), malformed, {{"homesSrc", 0}});

  AnswerViewCache::Stats s = cache.stats();
  EXPECT_EQ(s.publishes, 0);
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(s.rejects["degraded"], 1);
  EXPECT_EQ(s.rejects["truncated"], 1);
  EXPECT_EQ(s.rejects["malformed"], 1);
}

TEST(AnswerViewCacheTest, LruEvictsUnderByteBudgetAndMatchReplays) {
  // Budget sized for roughly one snapshot: the second publish evicts the
  // first (LRU), and the byte account stays within budget throughout.
  std::vector<SubtreeEntry> a = Export("answer[aaaa,bbbb]");
  int64_t one = 0;
  for (const SubtreeEntry& e : a) {
    one += static_cast<int64_t>(e.label.name().size()) + kViewNodeOverheadBytes;
  }
  AnswerViewCache cache(AnswerViewCache::Options{one + one / 2});
  cache.Publish(HandShape("k1"), a, {{"homesSrc", 0}});
  EXPECT_EQ(cache.stats().entries, 1);

  AnswerViewCache::Match m = cache.TryMatch(HandShape("k1"));
  ASSERT_NE(m.snapshot, nullptr);
  ASSERT_NE(m.plan, nullptr);
  EXPECT_EQ(testing::MaterializeToTerm(m.snapshot->nav.get()),
            "answer[aaaa,bbbb]");

  cache.Publish(HandShape("k2"), Export("answer[cccc,dddd]"), {{"homesSrc", 0}});
  AnswerViewCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_LE(s.bytes, one + one / 2);
  // k1 was evicted; the pinned shared_ptr from the earlier match stays
  // valid (eviction never invalidates an in-flight reader).
  EXPECT_EQ(cache.TryMatch(HandShape("k1")).snapshot, nullptr);
  EXPECT_EQ(testing::MaterializeToTerm(m.snapshot->nav.get()),
            "answer[aaaa,bbbb]");
}

TEST(AnswerViewCacheTest, InvalidateSourceDropsDependentsAndStalePins) {
  AnswerViewCache cache(AnswerViewCache::Options{1 << 20});
  cache.Publish(HandShape("homes", {"homesSrc"}), Export("answer[a]"),
                {{"homesSrc", 0}});
  cache.Publish(HandShape("schools", {"schoolsSrc"}), Export("answer[b]"),
                {{"schoolsSrc", 0}});
  EXPECT_EQ(cache.stats().entries, 2);

  cache.InvalidateSource("homesSrc");
  AnswerViewCache::Stats s = cache.stats();
  EXPECT_EQ(s.invalidations, 1);
  EXPECT_EQ(s.entries, 1);  // only the schools view survives
  EXPECT_EQ(cache.TryMatch(HandShape("homes", {"homesSrc"})).snapshot, nullptr);
  EXPECT_NE(cache.TryMatch(HandShape("schools", {"schoolsSrc"})).snapshot,
            nullptr);

  // A donor that pinned the pre-bump generation publishes into the void.
  cache.Publish(HandShape("homes", {"homesSrc"}), Export("answer[a]"),
                {{"homesSrc", 0}});
  EXPECT_EQ(cache.stats().rejects["stale"], 1);
  // Pinning afresh picks up the bumped generation and publishes cleanly.
  cache.Publish(HandShape("homes", {"homesSrc"}), Export("answer[a]"),
                cache.PinGenerations({"homesSrc"}));
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(AnswerViewCacheTest, DisabledCacheIsInert) {
  AnswerViewCache cache(AnswerViewCache::Options{0});
  EXPECT_FALSE(cache.enabled());
  cache.Publish(HandShape("k"), Export("answer[a]"), {{"homesSrc", 0}});
  EXPECT_EQ(cache.TryMatch(HandShape("k")).snapshot, nullptr);
  AnswerViewCache::Stats s = cache.stats();
  EXPECT_EQ(s.publishes, 0);
  EXPECT_EQ(s.hits + s.misses, 0);
}

// ---------------------------------------------------------------------------
// End-to-end service path.
// ---------------------------------------------------------------------------

/// Wrapper decorator counting LXP exchanges — the "zero wrapper exchanges"
/// acceptance reads this.
class CountingWrapper : public buffer::LxpWrapper {
 public:
  CountingWrapper(std::unique_ptr<buffer::LxpWrapper> inner,
                  std::atomic<int64_t>* exchanges)
      : inner_(std::move(inner)), exchanges_(exchanges) {}

  std::string GetRoot(const std::string& uri) override {
    ++*exchanges_;
    return inner_->GetRoot(uri);
  }
  buffer::FragmentList Fill(const std::string& hole_id) override {
    ++*exchanges_;
    return inner_->Fill(hole_id);
  }
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override {
    ++*exchanges_;
    return inner_->FillMany(holes, budget);
  }

 private:
  std::unique_ptr<buffer::LxpWrapper> inner_;
  std::atomic<int64_t>* exchanges_;
};

class ViewServiceFixture {
 public:
  ViewServiceFixture()
      : homes_(testing::Doc(kHomes)), schools_(testing::Doc(kSchools)) {
    env_.RegisterWrapperFactory(
        "homesSrc",
        [this] {
          return std::make_unique<CountingWrapper>(
              std::make_unique<wrappers::XmlLxpWrapper>(homes_.get()),
              &exchanges_);
        },
        "homes.xml");
    env_.RegisterWrapperFactory(
        "schoolsSrc",
        [this] {
          return std::make_unique<CountingWrapper>(
              std::make_unique<wrappers::XmlLxpWrapper>(schools_.get()),
              &exchanges_);
        },
        "schools.xml");
  }

  SessionEnvironment& env() { return env_; }
  int64_t exchanges() const { return exchanges_.load(); }

  /// In-process, cache-free evaluation — the fidelity oracle.
  std::string Reference(const char* query) {
    xml::DocNavigable homes_nav(homes_.get());
    xml::DocNavigable schools_nav(schools_.get());
    SourceRegistry sources;
    sources.Register("homesSrc", &homes_nav);
    sources.Register("schoolsSrc", &schools_nav);
    auto plan = CompileXmas(query).ValueOrDie();
    auto med = LazyMediator::Build(*plan, sources).ValueOrDie();
    return testing::MaterializeToTerm(med->document());
  }

 private:
  std::unique_ptr<xml::Document> homes_;
  std::unique_ptr<xml::Document> schools_;
  std::atomic<int64_t> exchanges_{0};
  SessionEnvironment env_;
};

MediatorService::Options ViewOptions(int64_t view_bytes) {
  MediatorService::Options o;
  o.answer_view_cache_bytes = view_bytes;
  return o;
}

std::string MaterializeFramed(client::FramedDocument* doc) {
  xml::Document out;
  return xml::ToTerm(xml::MaterializeInto(doc, &out));
}

TEST(AnswerViewServiceTest, WarmOpenServedWithZeroWrapperExchanges) {
  ViewServiceFixture fx;
  MediatorService service(&fx.env(), ViewOptions(1 << 20));
  const std::string expected = fx.Reference(kFig3);

  auto donor = client::FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_EQ(MaterializeFramed(donor.get()), expected);
  ASSERT_TRUE(donor->Close().ok());
  int64_t cold = fx.exchanges();
  EXPECT_GT(cold, 0);
  EXPECT_EQ(service.Metrics().view_publishes, 1);

  // The warm open replays the snapshot: byte-identical answer, ZERO new
  // wrapper exchanges (no wrappers are even built for the session).
  auto warm = client::FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_EQ(MaterializeFramed(warm.get()), expected);
  EXPECT_EQ(fx.exchanges(), cold);
  ASSERT_TRUE(warm->Close().ok());

  service::ServiceMetricsSnapshot snap = service.Metrics();
  EXPECT_EQ(snap.view_hits, 1);
  EXPECT_EQ(snap.view_publishes, 1);
  EXPECT_GT(snap.view_bytes, 0);
  EXPECT_NE(snap.ToString().find("views{"), std::string::npos);
}

TEST(AnswerViewServiceTest, NarrowedPredicateServedFromBaseView) {
  ViewServiceFixture fx;
  MediatorService service(&fx.env(), ViewOptions(1 << 20));

  // Donor: the unfiltered zips view.
  auto donor = client::FramedDocument::Open(&service, kZipsBase).ValueOrDie();
  EXPECT_EQ(MaterializeFramed(donor.get()), fx.Reference(kZipsBase));
  ASSERT_TRUE(donor->Close().ok());
  int64_t cold = fx.exchanges();
  ASSERT_EQ(service.Metrics().view_publishes, 1);

  // Both narrowed variants are subsumed: σ over the snapshot's children,
  // byte-identical to fresh evaluation, zero new wrapper exchanges.
  for (const char* narrowed : {kZipsEq, kZipsLt}) {
    auto doc = client::FramedDocument::Open(&service, narrowed).ValueOrDie();
    EXPECT_EQ(MaterializeFramed(doc.get()), fx.Reference(narrowed));
    ASSERT_TRUE(doc->Close().ok());
  }
  EXPECT_EQ(fx.exchanges(), cold);
  EXPECT_EQ(service.Metrics().view_hits, 2);
}

TEST(AnswerViewServiceTest, KnobZeroReproducesBaseline) {
  ViewServiceFixture fx;
  MediatorService service(&fx.env(), ViewOptions(0));
  const std::string expected = fx.Reference(kFig3);

  auto first = client::FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_EQ(MaterializeFramed(first.get()), expected);
  ASSERT_TRUE(first->Close().ok());
  int64_t cold = fx.exchanges();

  // Second open re-exchanges: nothing was published, nothing matched.
  auto second = client::FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_EQ(MaterializeFramed(second.get()), expected);
  ASSERT_TRUE(second->Close().ok());
  EXPECT_GT(fx.exchanges(), cold);

  service::ServiceMetricsSnapshot snap = service.Metrics();
  EXPECT_EQ(snap.view_hits, 0);
  EXPECT_EQ(snap.view_misses, 0);
  EXPECT_EQ(snap.view_publishes, 0);
  EXPECT_EQ(snap.view_entries, 0);
}

TEST(AnswerViewServiceTest, InvalidateSourceForcesReExchange) {
  ViewServiceFixture fx;
  MediatorService service(&fx.env(), ViewOptions(1 << 20));
  const std::string expected = fx.Reference(kFig3);

  auto donor = client::FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_EQ(MaterializeFramed(donor.get()), expected);
  ASSERT_TRUE(donor->Close().ok());
  ASSERT_EQ(service.Metrics().view_entries, 1);

  // The freshness hook: homes changed, every dependent view is dropped.
  service.InvalidateSource("homesSrc");
  EXPECT_EQ(service.Metrics().view_entries, 0);

  int64_t before = fx.exchanges();
  auto fresh = client::FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_EQ(MaterializeFramed(fresh.get()), expected);
  ASSERT_TRUE(fresh->Close().ok());
  EXPECT_GT(fx.exchanges(), before) << "stale view must not serve";
  // The fresh session pinned the bumped generation, so it re-donates...
  EXPECT_EQ(service.Metrics().view_publishes, 2);
  // ...and the next open is served again.
  int64_t warm = fx.exchanges();
  auto served = client::FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_EQ(MaterializeFramed(served.get()), expected);
  EXPECT_EQ(fx.exchanges(), warm);
  ASSERT_TRUE(served->Close().ok());
}

/// A homes wrapper whose fills always fail: the first session degrades and
/// must publish nothing; later sessions get a healthy wrapper.
class FailingWrapper : public buffer::LxpWrapper {
 public:
  std::string GetRoot(const std::string&) override { return "h:root"; }
  buffer::FragmentList Fill(const std::string&) override { return {}; }
  Status TryFill(const std::string&, buffer::FragmentList*) override {
    return Status::Unavailable("source down");
  }
  Status TryFillMany(const std::vector<std::string>&,
                     const buffer::FillBudget&,
                     buffer::HoleFillList*) override {
    return Status::Unavailable("source down");
  }
};

TEST(AnswerViewServiceTest, DegradedSessionNeverPublishes) {
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  SessionEnvironment env;
  std::atomic<int> built{0};
  env.RegisterWrapperFactory(
      "homesSrc",
      [&built, &homes]() -> std::unique_ptr<buffer::LxpWrapper> {
        if (built.fetch_add(1) == 0) return std::make_unique<FailingWrapper>();
        return std::make_unique<wrappers::XmlLxpWrapper>(homes.get());
      },
      "homes.xml");
  env.RegisterWrapperFactory(
      "schoolsSrc",
      [&schools] {
        return std::make_unique<wrappers::XmlLxpWrapper>(schools.get());
      },
      "schools.xml");
  MediatorService service(&env, ViewOptions(1 << 20));

  // Session 1 degrades: its full-depth export errors, the publish hook
  // never fires, and nothing reaches the cache.
  auto broken = client::FramedDocument::Open(&service, kFig3).ValueOrDie();
  std::vector<SubtreeEntry> entries;
  broken->FetchSubtree(broken->Root(), -1, &entries);
  EXPECT_FALSE(broken->last_status().ok());
  ASSERT_TRUE(broken->Close().ok());
  EXPECT_EQ(service.Metrics().view_publishes, 0);
  EXPECT_EQ(service.Metrics().view_entries, 0);

  // Session 2 (healthy wrapper) donates; session 3 is served the GOOD
  // answer — a degraded answer can never poison later sessions.
  auto good = client::FramedDocument::Open(&service, kFig3).ValueOrDie();
  std::string expected = MaterializeFramed(good.get());
  EXPECT_NE(expected.find("med_home"), std::string::npos);
  EXPECT_EQ(expected.find("#unavailable"), std::string::npos);
  ASSERT_TRUE(good->Close().ok());
  EXPECT_EQ(service.Metrics().view_publishes, 1);

  auto served = client::FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_EQ(MaterializeFramed(served.get()), expected);
  ASSERT_TRUE(served->Close().ok());
  EXPECT_EQ(service.Metrics().view_hits, 1);
}

}  // namespace
}  // namespace mix::mediator
