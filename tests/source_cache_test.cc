// Tests for the cross-session shared source-fragment cache (DESIGN.md §4)
// and the compiled-plan cache: byte-budget accounting and LRU eviction,
// generation-bump invalidation (E9 freshness), hit/miss metrics, the
// no-publish-of-degraded-fills guarantee, canonical plan keying, and a
// multithreaded hammer that the TSan CI job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer.h"
#include "buffer/lxp.h"
#include "buffer/source_cache.h"
#include "mediator/plan_cache.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"

namespace mix::buffer {
namespace {

FragmentList OneElement(const std::string& label) {
  return {Fragment::Element(label)};
}

TEST(SourceCacheTest, HitMissAndStats) {
  SourceCache cache(SourceCache::Options{1 << 20, 4});
  EXPECT_EQ(cache.LookupFill("homes", 0, "t:homes:0"), nullptr);

  cache.PublishFill("homes", 0, "t:homes:0", OneElement("row"));
  auto hit = cache.LookupFill("homes", 0, "t:homes:0");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0].label, "row");

  // Other generation, other source, other hole: all distinct keys.
  EXPECT_EQ(cache.LookupFill("homes", 1, "t:homes:0"), nullptr);
  EXPECT_EQ(cache.LookupFill("schools", 0, "t:homes:0"), nullptr);
  EXPECT_EQ(cache.LookupFill("homes", 0, "t:homes:10"), nullptr);

  SourceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 4);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes, 0);
  EXPECT_LE(stats.bytes, cache.byte_budget());
}

TEST(SourceCacheTest, RootEntriesRoundTrip) {
  SourceCache cache(SourceCache::Options{1 << 20, 4});
  std::string root_id;
  EXPECT_FALSE(cache.LookupRoot("homes", 0, "homes.xml", &root_id));
  cache.PublishRoot("homes", 0, "homes.xml", "x:0:0:3");
  ASSERT_TRUE(cache.LookupRoot("homes", 0, "homes.xml", &root_id));
  EXPECT_EQ(root_id, "x:0:0:3");
  // Root and fill keys never collide, even for equal id strings.
  EXPECT_EQ(cache.LookupFill("homes", 0, "homes.xml"), nullptr);
}

TEST(SourceCacheTest, ByteBudgetNeverExceededAndLruEvicts) {
  // Measure one entry's charge (all four entries below have equal-length
  // keys and payloads), then budget exactly three of them.
  int64_t per_entry;
  {
    SourceCache probe(SourceCache::Options{1 << 20, 1});
    probe.PublishFill("s", 0, "a", OneElement("aa"));
    per_entry = probe.stats().bytes;
    ASSERT_GT(per_entry, 0);
  }
  const int64_t budget = 3 * per_entry;
  // One shard: the LRU order is exact, so eviction order is deterministic.
  SourceCache cache(SourceCache::Options{budget, 1});
  cache.PublishFill("s", 0, "a", OneElement("aa"));
  cache.PublishFill("s", 0, "b", OneElement("bb"));
  cache.PublishFill("s", 0, "c", OneElement("cc"));
  ASSERT_EQ(cache.stats().evictions, 0) << "budget sized for three entries";

  // Touch "a": it becomes most-recently-used, so the next eviction takes "b".
  ASSERT_NE(cache.LookupFill("s", 0, "a"), nullptr);
  cache.PublishFill("s", 0, "d", OneElement("dd"));

  SourceCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.bytes, budget);
  EXPECT_NE(cache.LookupFill("s", 0, "a"), nullptr) << "MRU must survive";
  EXPECT_EQ(cache.LookupFill("s", 0, "b"), nullptr) << "LRU must be evicted";
  EXPECT_NE(cache.LookupFill("s", 0, "d"), nullptr);

  // The byte account matches the entries actually reachable.
  int64_t entries = cache.stats().entries;
  EXPECT_EQ(entries, 3);
}

TEST(SourceCacheTest, OversizeEntryRejected) {
  SourceCache cache(SourceCache::Options{128, 2});
  FragmentList big;
  for (int i = 0; i < 64; ++i) big.push_back(Fragment::Element("padpadpad"));
  cache.PublishFill("s", 0, "huge", std::move(big));
  SourceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 0);
  EXPECT_EQ(stats.rejects, 1);
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
  EXPECT_EQ(cache.LookupFill("s", 0, "huge"), nullptr);
}

TEST(SourceCacheTest, DisabledCacheDropsEverything) {
  SourceCache cache(SourceCache::Options{0, 2});
  cache.PublishFill("s", 0, "a", OneElement("x"));
  EXPECT_EQ(cache.LookupFill("s", 0, "a"), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0);
  EXPECT_EQ(cache.stats().bytes, 0);
}

TEST(SourceCacheTest, DuplicatePublishRaceLeaksNoBytes) {
  // Satellite check for the reserve-then-insert protocol: PublishFill
  // reserves its bytes (CAS on the global account) BEFORE taking the shard
  // lock, and first-publish-wins means every concurrent duplicate loses the
  // insert. A loser that failed to release its reservation would leak
  // account bytes on every race — invisible to entry counts, fatal to the
  // budget (the account creeps up until all inserts are rejected).
  //
  // Baseline: one entry's exact charge (key width fixed so all keys cost
  // the same).
  int64_t per_entry;
  {
    SourceCache probe(SourceCache::Options{1 << 20, 1});
    probe.PublishFill("s", 0, "k:00", OneElement("vv"));
    per_entry = probe.stats().bytes;
    ASSERT_GT(per_entry, 0);
  }

  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  constexpr int kRounds = 64;
  SourceCache cache(SourceCache::Options{1 << 20, 8});
  auto key = [](int i) {
    return std::string("k:") + (i < 10 ? "0" : "") + std::to_string(i);
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        for (int i = 0; i < kKeys; ++i) {
          cache.PublishFill("s", 0, key(i), OneElement("vv"));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Exactly one copy of each key survives, and the byte account is exactly
  // kKeys entries — every losing duplicate returned its reservation.
  SourceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, kKeys);
  EXPECT_EQ(stats.bytes, kKeys * per_entry);
  EXPECT_EQ(stats.insertions, kKeys);
  EXPECT_EQ(stats.evictions, 0);
  // The global reservation account agrees with what the shards hold.
  int64_t shard_sum = 0;
  for (const auto& ss : stats.shards) shard_sum += ss.bytes;
  EXPECT_EQ(stats.bytes, shard_sum);
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_NE(cache.LookupFill("s", 0, key(i)), nullptr);
  }
}

TEST(SourceCacheTest, GenerationBumpInvalidatesWithoutScrubbing) {
  SourceCache cache(SourceCache::Options{1 << 20, 4});
  int64_t g0 = cache.Generation("homes");
  EXPECT_EQ(g0, 0);
  cache.PublishFill("homes", g0, "t:homes:0", OneElement("old"));

  int64_t g1 = cache.BumpGeneration("homes");
  EXPECT_EQ(g1, g0 + 1);
  EXPECT_EQ(cache.Generation("homes"), g1);
  // New sessions (pinned to g1) miss and re-fetch from the live wrapper...
  EXPECT_EQ(cache.LookupFill("homes", g1, "t:homes:0"), nullptr);
  // ...while in-flight sessions of the old generation keep their consistent
  // snapshot: stale entries are unreachable to new pins, not scrubbed.
  EXPECT_NE(cache.LookupFill("homes", g0, "t:homes:0"), nullptr);
  // Other sources are unaffected.
  EXPECT_EQ(cache.Generation("schools"), 0);
}

// ---------------------------------------------------------------------------
// Buffer integration: cache-aware BufferComponents.
// ---------------------------------------------------------------------------

const char* kHomes =
    "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]],"
    "home[addr[Nowhere],zip[99999]]]";

BufferComponent::Options CacheOptions(SourceCache* cache, int64_t generation) {
  BufferComponent::Options opts;
  opts.source_cache = cache;
  opts.cache_source = "homes";
  opts.cache_generation = generation;
  return opts;
}

TEST(SourceCacheBufferTest, SecondBufferServedEntirelyFromCache) {
  auto doc = testing::Doc(kHomes);
  SourceCache cache(SourceCache::Options{1 << 20, 4});

  wrappers::XmlLxpWrapper wrapper1(doc.get());
  BufferComponent buffer1(&wrapper1, "homes.xml", CacheOptions(&cache, 0));
  std::string first = testing::MaterializeToTerm(&buffer1);
  EXPECT_EQ(first, kHomes);
  EXPECT_GT(wrapper1.fills_served(), 0);

  // A second buffer (a second session) over its OWN wrapper instance: every
  // root/fill answer comes from the shared cache — zero wrapper exchanges —
  // and the materialized answer is byte-identical.
  wrappers::XmlLxpWrapper wrapper2(doc.get());
  BufferComponent buffer2(&wrapper2, "homes.xml", CacheOptions(&cache, 0));
  EXPECT_EQ(testing::MaterializeToTerm(&buffer2), first);
  EXPECT_EQ(wrapper2.fills_served(), 0);

  BufferComponent::Stats s2 = buffer2.stats();
  EXPECT_GT(s2.cache_hits, 0);
  EXPECT_EQ(s2.cache_misses, 0);
  EXPECT_EQ(s2.fills, buffer1.stats().fills)
      << "cache hits count as fills (same open-tree refinements)";
}

TEST(SourceCacheBufferTest, PinnedGenerationIgnoresNewerEntries) {
  auto doc = testing::Doc(kHomes);
  SourceCache cache(SourceCache::Options{1 << 20, 4});

  wrappers::XmlLxpWrapper wrapper1(doc.get());
  BufferComponent buffer1(&wrapper1, "homes.xml", CacheOptions(&cache, 0));
  testing::MaterializeToTerm(&buffer1);

  cache.BumpGeneration("homes");
  // A buffer pinned to the new generation cannot see gen-0 entries: it goes
  // to its wrapper (the E9 re-derivation) and republishes under gen 1.
  wrappers::XmlLxpWrapper wrapper2(doc.get());
  BufferComponent buffer2(&wrapper2, "homes.xml",
                          CacheOptions(&cache, cache.Generation("homes")));
  EXPECT_EQ(testing::MaterializeToTerm(&buffer2), kHomes);
  EXPECT_GT(wrapper2.fills_served(), 0);
  EXPECT_EQ(buffer2.stats().cache_hits, 0);
}

/// A wrapper whose root handshake works but every fill fails — the flaky
/// source whose degraded splices must never reach the shared cache.
class FillsAlwaysFailWrapper : public LxpWrapper {
 public:
  std::string GetRoot(const std::string&) override { return "h:root"; }
  FragmentList Fill(const std::string&) override { return {}; }
  Status TryFill(const std::string&, FragmentList*) override {
    return Status::Unavailable("source down");
  }
  Status TryFillMany(const std::vector<std::string>&, const FillBudget&,
                     HoleFillList*) override {
    return Status::Unavailable("source down");
  }
};

TEST(SourceCacheBufferTest, DegradedFillsAreNeverPublished) {
  SourceCache cache(SourceCache::Options{1 << 20, 4});
  FillsAlwaysFailWrapper wrapper;
  BufferComponent buffer(&wrapper, "down.xml", CacheOptions(&cache, 0));

  // Navigating forces the root fill to fail and degrade to #unavailable.
  (void)buffer.Root();
  EXPECT_GT(buffer.degraded_holes(), 0);

  // The only cache insertion is the (successful) get_root answer; the
  // degraded splice left no fill entry behind to poison other sessions.
  EXPECT_EQ(cache.LookupFill("homes", 0, "h:root"), nullptr);
  SourceCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 1);  // root id only
  std::string root_id;
  EXPECT_TRUE(cache.LookupRoot("homes", 0, "down.xml", &root_id));
}

// ---------------------------------------------------------------------------
// Compiled-plan cache.
// ---------------------------------------------------------------------------

const char* kQuery = R"(
CONSTRUCT <answer> $H {$H} </answer> {}
WHERE homesSrc homes.home $H
)";

TEST(PlanCacheTest, CanonicalKeyNormalizesOutsideLiterals) {
  using mediator::CanonicalXmasKey;
  EXPECT_EQ(CanonicalXmasKey("a   b\n\t c"), "a b c");
  EXPECT_EQ(CanonicalXmasKey("  lead and trail  "), "lead and trail");
  EXPECT_EQ(CanonicalXmasKey("x % a comment\ny"), "x y");
  // Whitespace and '%' inside single-quoted literals are content.
  EXPECT_EQ(CanonicalXmasKey("$V = 'a   b'"), "$V = 'a   b'");
  EXPECT_EQ(CanonicalXmasKey("$V = '100%'  AND x"), "$V = '100%' AND x");
  // Reformatted copies of one query collapse to the same key.
  EXPECT_EQ(CanonicalXmasKey("CONSTRUCT  <a>\n</a> {}"),
            CanonicalXmasKey("CONSTRUCT <a> </a> {}"));
}

TEST(PlanCacheTest, ReformattedQueryHitsSameSharedPlan) {
  mediator::PlanCache cache(mediator::PlanCache::Options{8});
  auto first = cache.GetOrCompile(kQuery);
  ASSERT_TRUE(first.ok());
  // Same query, different formatting + a comment: cache hit, same object.
  std::string reformatted =
      "CONSTRUCT <answer> $H {$H} </answer> {}   % construct clause\n"
      "WHERE homesSrc homes.home   $H\n";
  auto second = cache.GetOrCompile(reformatted);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());

  mediator::PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST(PlanCacheTest, FailuresAreNotCached) {
  mediator::PlanCache cache(mediator::PlanCache::Options{8});
  EXPECT_FALSE(cache.GetOrCompile("THIS IS NOT XMAS").ok());
  EXPECT_FALSE(cache.GetOrCompile("THIS IS NOT XMAS").ok());
  mediator::PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.entries, 0);
}

TEST(PlanCacheTest, CapacityEvictsLeastRecentlyUsed) {
  mediator::PlanCache cache(mediator::PlanCache::Options{1});
  ASSERT_TRUE(cache.GetOrCompile(kQuery).ok());
  std::string other =
      "CONSTRUCT <b> $H {$H} </b> {} WHERE homesSrc homes.home $H";
  ASSERT_TRUE(cache.GetOrCompile(other).ok());
  EXPECT_EQ(cache.stats().entries, 1);
  // kQuery was evicted: compiling it again is a miss.
  ASSERT_TRUE(cache.GetOrCompile(kQuery).ok());
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 3);
}

// ---------------------------------------------------------------------------
// Concurrency hammer (runs under TSan in CI): concurrent publishes, lookups,
// and generation bumps over an undersized budget. The invariant sampled
// throughout: the byte account never exceeds the budget.
// ---------------------------------------------------------------------------

TEST(SourceCacheTest, ConcurrentHammerStaysWithinBudget) {
  constexpr int64_t kBudget = 4096;
  SourceCache cache(SourceCache::Options{kBudget, 4});
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<bool> over_budget{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &over_budget, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string hole = "h:" + std::to_string((t * 7 + i) % 64);
        int64_t gen = cache.Generation("src");
        if (i % 3 == 0) {
          cache.PublishFill("src", gen, hole, OneElement("e"));
        } else if (i % 97 == 0) {
          cache.BumpGeneration("src");
        } else {
          auto hit = cache.LookupFill("src", gen, hole);
          if (hit != nullptr && hit->empty()) over_budget = true;  // corrupt
        }
        if (cache.bytes() > kBudget) over_budget = true;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_FALSE(over_budget.load());
  SourceCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, kBudget);
  EXPECT_GT(stats.evictions, 0) << "undersized budget must churn";
  EXPECT_GT(stats.hits, 0);
}

}  // namespace
}  // namespace mix::buffer
