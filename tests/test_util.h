// Shared helpers for the MIX test suite.
#ifndef MIX_TESTS_TEST_UTIL_H_
#define MIX_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include "algebra/bindings_navigable.h"
#include "core/check.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/parser.h"
#include "xml/tree.h"

namespace mix::testing {

/// Parses the paper's term notation (e.g. "homes[home[zip[91220]]]") or
/// aborts — for quoting paper examples verbatim in tests.
inline std::unique_ptr<xml::Document> Doc(const std::string& term) {
  auto result = xml::ParseTerm(term);
  MIX_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).ValueOrDie();
}

/// Fully explores a navigable and renders the tree as a term string.
inline std::string MaterializeToTerm(Navigable* nav) {
  auto doc = xml::Materialize(nav);
  return xml::ToTerm(doc->root());
}

/// Fully explores a binding stream's bs-tree and renders it as a term.
inline std::string StreamToTerm(algebra::BindingStream* stream) {
  algebra::BindingsNavigable nav(stream);
  return MaterializeToTerm(&nav);
}

/// An explicit in-memory binding stream. Lets tests reproduce the paper's
/// worked examples exactly — including *shared node identities* across
/// bindings (footnote 7), which grouping depends on.
class VectorBindingStream : public algebra::BindingStream {
 public:
  VectorBindingStream(algebra::VarList schema,
                      std::vector<std::vector<algebra::ValueRef>> rows)
      : schema_(std::move(schema)),
        rows_(std::move(rows)),
        instance_(algebra::NextOperatorInstance()) {
    for (const auto& row : rows_) {
      MIX_CHECK(row.size() == schema_.size());
    }
  }

  const algebra::VarList& schema() const override { return schema_; }

  std::optional<NodeId> FirstBinding() override {
    if (rows_.empty()) return std::nullopt;
    return NodeId("vb", {instance_, int64_t{0}});
  }

  std::optional<NodeId> NextBinding(const NodeId& b) override {
    int64_t next = b.IntAt(1) + 1;
    if (next >= static_cast<int64_t>(rows_.size())) return std::nullopt;
    return NodeId("vb", {instance_, next});
  }

  algebra::ValueRef Attr(const NodeId& b, const std::string& var) override {
    MIX_CHECK(b.valid() && b.tag() == "vb" && b.IntAt(0) == instance_);
    const auto& row = rows_[static_cast<size_t>(b.IntAt(1))];
    for (size_t i = 0; i < schema_.size(); ++i) {
      if (schema_[i] == var) return row[i];
    }
    MIX_CHECK_MSG(false, ("unknown variable: " + var).c_str());
    return {};
  }

 private:
  algebra::VarList schema_;
  std::vector<std::vector<algebra::ValueRef>> rows_;
  int64_t instance_;
};

/// Finds the node with the given term rendering among `doc`'s nodes and
/// returns a ValueRef into `nav` — convenience for building
/// VectorBindingStream rows from fixture documents.
inline algebra::ValueRef RefTo(xml::DocNavigable* nav, const xml::Node* node) {
  // DocNavigable ids are (instance, arena index); rebuild via navigation
  // is unnecessary — mint through the public API by walking from the root.
  // Simpler: DocNavigable::Resolve is the inverse; we reconstruct the id by
  // walking down/right from the root following the node's path.
  std::vector<int> path;
  for (const xml::Node* n = node; n->parent != nullptr; n = n->parent) {
    path.push_back(n->pos_in_parent);
  }
  NodeId id = nav->Root();
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    auto child = nav->Down(id);
    MIX_CHECK(child.has_value());
    id = *child;
    for (int i = 0; i < *it; ++i) {
      auto sibling = nav->Right(id);
      MIX_CHECK(sibling.has_value());
      id = *sibling;
    }
  }
  return algebra::ValueRef{nav, id};
}

}  // namespace mix::testing

#endif  // MIX_TESTS_TEST_UTIL_H_
