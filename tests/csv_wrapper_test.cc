#include <gtest/gtest.h>

#include "buffer/buffer.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "test_util.h"
#include "wrappers/csv_wrapper.h"
#include "xmas/parser.h"

namespace mix::wrappers {
namespace {

TEST(CsvParseTest, BasicTable) {
  CsvTable t = ParseCsv("name,zip\nAda,91220\nEdgar,91223\n").ValueOrDie();
  EXPECT_EQ(t.columns, (std::vector<std::string>{"name", "zip"}));
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"Ada", "91220"}));
  EXPECT_EQ(t.rows[1], (std::vector<std::string>{"Edgar", "91223"}));
}

TEST(CsvParseTest, QuotingAndEscapes) {
  CsvTable t =
      ParseCsv("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\nplain,\"\"\n")
          .ValueOrDie();
  EXPECT_EQ(t.rows[0][0], "x,y");
  EXPECT_EQ(t.rows[0][1], "he said \"hi\"");
  EXPECT_EQ(t.rows[1][1], "");
}

TEST(CsvParseTest, CrLfAndMissingTrailingNewline) {
  CsvTable t = ParseCsv("a,b\r\n1,2\r\n3,4").ValueOrDie();
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvParseTest, EmptyFieldsAndBlankLines) {
  CsvTable t = ParseCsv("a,b\n,\n\nx,\n").ValueOrDie();
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"", ""}));
  EXPECT_EQ(t.rows[1], (std::vector<std::string>{"x", ""}));
}

TEST(CsvParseTest, Errors) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());       // arity mismatch
  EXPECT_FALSE(ParseCsv("a,b\n\"open\n").ok());  // unterminated quote
  EXPECT_FALSE(ParseCsv("a,b\nx\"y,2\n").ok());  // quote mid-field
}

TEST(CsvWrapperTest, BufferedViewShape) {
  CsvTable table =
      ParseCsv("name,zip\nAda,91220\nEdgar,91223\n").ValueOrDie();
  CsvLxpWrapper wrapper(&table);
  buffer::BufferComponent buffer(&wrapper, "file.csv");
  EXPECT_EQ(testing::MaterializeToTerm(&buffer),
            "csv[row[name[Ada],zip[91220]],row[name[Edgar],zip[91223]]]");
}

TEST(CsvWrapperTest, ChunkedFills) {
  std::string csv = "v\n";
  for (int i = 0; i < 95; ++i) csv += std::to_string(i) + "\n";
  CsvTable table = ParseCsv(csv).ValueOrDie();
  CsvLxpWrapper::Options options;
  options.chunk = 10;
  CsvLxpWrapper wrapper(&table, options);
  buffer::BufferComponent buffer(&wrapper, "file.csv");
  testing::MaterializeToTerm(&buffer);
  // 1 root + 4 row fills: adaptive fill sizing doubles the chunk on each
  // continued fill, so the 95 rows ship as 10 + 20 + 40 + 25 instead of
  // ten fixed-size chunks.
  EXPECT_EQ(buffer.fill_count(), 5);
}

TEST(CsvWrapperTest, EmptyTable) {
  CsvTable table = ParseCsv("only,header\n").ValueOrDie();
  CsvLxpWrapper wrapper(&table);
  buffer::BufferComponent buffer(&wrapper, "file.csv");
  EXPECT_EQ(testing::MaterializeToTerm(&buffer), "csv");
}

TEST(CsvWrapperTest, QueriableThroughTheMediator) {
  CsvTable table = ParseCsv("title,price\nlamp,40\ndesk,120\nrug,75\n")
                       .ValueOrDie();
  CsvLxpWrapper wrapper(&table);
  buffer::BufferComponent buffer(&wrapper, "items.csv");

  auto q = xmas::ParseQuery(
      "CONSTRUCT <pricey> $T {$T} </pricey> {} "
      "WHERE itemsSrc csv.row $R AND $R title._ $T AND $R price._ $P "
      "AND $P > 50");
  auto plan = mediator::TranslateQuery(q.value()).ValueOrDie();
  mediator::SourceRegistry sources;
  sources.Register("itemsSrc", &buffer);
  auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(med->document()),
            "pricey[desk,rug]");
}

}  // namespace
}  // namespace mix::wrappers
