// The umbrella header must compile standalone and expose the full surface.
#include "mix.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaTest, EndToEndThroughUmbrellaHeader) {
  auto doc = mix::xml::Parse("<r><a>1</a><a>2</a></r>").ValueOrDie();
  mix::xml::DocNavigable nav(doc.get());
  auto q = mix::xmas::ParseQuery(
               "CONSTRUCT <out> $X {$X} </out> {} WHERE s r.a._ $X")
               .ValueOrDie();
  auto plan = mix::mediator::TranslateQuery(q).ValueOrDie();
  mix::mediator::SourceRegistry sources;
  sources.Register("s", &nav);
  auto med = mix::mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
  mix::client::VirtualXmlDocument vdoc(med->document());
  EXPECT_EQ(vdoc.Root().Name(), "out");
  EXPECT_EQ(vdoc.Root().FirstChild().Name(), "1");
}

}  // namespace
