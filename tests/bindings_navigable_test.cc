#include <gtest/gtest.h>

#include "algebra/bindings_navigable.h"
#include "test_util.h"
#include "xml/doc_navigable.h"

namespace mix::algebra {
namespace {

struct Fixture {
  Fixture()
      : doc(testing::Doc("d[home[zip[1]],school[zip[1]]]")), nav(doc.get()) {
    auto node = [&](int i) {
      return testing::RefTo(&nav, doc->root()->children[static_cast<size_t>(i)]);
    };
    stream = std::make_unique<testing::VectorBindingStream>(
        VarList{"H", "S"},
        std::vector<std::vector<ValueRef>>{{node(0), node(1)},
                                           {node(1), node(0)}});
  }
  std::unique_ptr<xml::Document> doc;
  xml::DocNavigable nav;
  std::unique_ptr<testing::VectorBindingStream> stream;
};

TEST(BindingsNavigableTest, FullTreeShape) {
  Fixture f;
  BindingsNavigable bn(f.stream.get());
  EXPECT_EQ(testing::MaterializeToTerm(&bn),
            "bs[b[H[home[zip[1]]],S[school[zip[1]]]],"
            "b[H[school[zip[1]]],S[home[zip[1]]]]]");
}

TEST(BindingsNavigableTest, StepwiseNavigation) {
  Fixture f;
  BindingsNavigable bn(f.stream.get());
  NodeId bs = bn.Root();
  EXPECT_EQ(bn.Fetch(bs), "bs");
  EXPECT_FALSE(bn.Right(bs).has_value());

  auto b1 = bn.Down(bs);
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(bn.Fetch(*b1), "b");

  auto h = bn.Down(*b1);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(bn.Fetch(*h), "H");
  auto s = bn.Right(*h);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(bn.Fetch(*s), "S");
  EXPECT_FALSE(bn.Right(*s).has_value());

  // Value root below a variable element; single child, no siblings.
  auto home = bn.Down(*h);
  ASSERT_TRUE(home.has_value());
  EXPECT_EQ(bn.Fetch(*home), "home");
  EXPECT_FALSE(bn.Right(*home).has_value());
  // Interior: zip then its leaf.
  auto zip = bn.Down(*home);
  EXPECT_EQ(bn.Fetch(*zip), "zip");
  auto one = bn.Down(*zip);
  EXPECT_EQ(bn.Fetch(*one), "1");
  EXPECT_FALSE(bn.Down(*one).has_value());

  auto b2 = bn.Right(*b1);
  ASSERT_TRUE(b2.has_value());
  EXPECT_FALSE(bn.Right(*b2).has_value());
}

TEST(BindingsNavigableTest, EmptyStream) {
  testing::VectorBindingStream empty(VarList{"X"}, {});
  BindingsNavigable bn(&empty);
  EXPECT_EQ(testing::MaterializeToTerm(&bn), "bs");
}

}  // namespace
}  // namespace mix::algebra
