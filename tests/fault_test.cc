// Fault-injection and recovery tests (DESIGN.md "Fault handling &
// degradation"):
//
//   * fault matrix — seeded fault rates over the buffer and over the full
//     service stack must yield answers byte-identical to a fault-free run;
//   * graceful degradation — a hole that exhausts its retry budget becomes
//     an #unavailable node with a typed latched Status; the rest of the
//     tree, and sibling sessions, stay navigable;
//   * hand-crafted malformed FillMany responses are rejected before any
//     splice (the regression for the old MIX_CHECK aborts);
//   * executor-deadline-vs-retry interaction — backoff never outlives the
//     command budget, and a deadline-cut hole stays retryable;
//   * client-side retry over a fault-injecting FrameTransport;
//   * the command-path idle-TTL sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer.h"
#include "buffer/fault_wrapper.h"
#include "buffer/lxp.h"
#include "client/framed_document.h"
#include "net/fault.h"
#include "net/sim_net.h"
#include "service/fault_transport.h"
#include "service/service.h"
#include "service/session.h"
#include "service/wire.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"

namespace mix::service {
namespace {

using buffer::BufferComponent;
using buffer::FaultyLxpWrapper;
using buffer::FillBudget;
using buffer::Fragment;
using buffer::FragmentList;
using buffer::HoleFill;
using buffer::HoleFillList;
using buffer::LxpWrapper;
using buffer::ScriptedLxpWrapper;
using client::FramedDocument;
using wire::Frame;
using wire::MsgType;

constexpr int64_t kMs = 1'000'000;

// The Fig. 3 running example (same fixture as tests/service_test.cc).
const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

const char* kHomes =
    "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]],"
    "home[addr[Nowhere],zip[99999]]]";
const char* kSchools =
    "schools[school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],"
    "school[dir[Hart],zip[91223]]]";

const char* kExpectedAnswer =
    "answer["
    "med_home[home[addr[La Jolla],zip[91220]],"
    "school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]]],"
    "med_home[home[addr[El Cajon],zip[91223]],school[dir[Hart],zip[91223]]]]";

/// The liberal LXP trace of Example 7 for t = a[b[d,e],c].
ScriptedLxpWrapper MakeExample7Wrapper() {
  std::map<std::string, FragmentList> fills;
  fills["h0"] = {Fragment::Element("a", {Fragment::Hole("h1")})};
  fills["h1"] = {Fragment::Element("b", {Fragment::Hole("h2")}),
                 Fragment::Hole("h3")};
  fills["h3"] = {Fragment::Element("c")};
  fills["h2"] = {Fragment::Hole("h4"),
                 Fragment::Element("d", {Fragment::Hole("h5")}),
                 Fragment::Hole("h6")};
  fills["h4"] = {};
  fills["h5"] = {};
  fills["h6"] = {Fragment::Element("e")};
  return ScriptedLxpWrapper("h0", std::move(fills));
}

// ---------------------------------------------------------------------------
// Fault matrix: transient faults + retries == byte-identical answers.
// ---------------------------------------------------------------------------

// Buffer level: a fault-injecting wrapper at seeded rates p ∈ {0.05, 0.2};
// with enough retry budget the materialized view is byte-equal to the
// fault-free run and no hole degrades. Retry/backoff accounting is exact:
// every observed fault was recovered by exactly one re-issue, and backoff
// cost simulated time.
TEST(FaultMatrixTest, BufferRecoversByteExactly) {
  auto homes = testing::Doc(kHomes);
  wrappers::XmlLxpWrapper clean(homes.get());
  BufferComponent baseline(&clean, "homes.xml");
  const std::string expected = testing::MaterializeToTerm(&baseline);

  int64_t total_faults = 0;
  for (double p : {0.05, 0.2}) {
    for (uint64_t seed : {1u, 2u, 3u, 4u}) {
      wrappers::XmlLxpWrapper inner(homes.get());
      net::FaultSpec spec;
      spec.p_fail = p;
      spec.p_truncate = p / 2;
      spec.p_garble = p / 2;
      spec.p_duplicate = p / 2;
      spec.p_delay = p;
      FaultyLxpWrapper faulty(&inner, spec, seed);
      net::SimClock clock;
      faulty.AttachClock(&clock);

      BufferComponent::Options opts;
      opts.clock = &clock;
      opts.retry.max_attempts = 10;
      opts.retry_seed = seed ^ 0xabcdefull;
      BufferComponent buf(&faulty, "homes.xml", opts);

      EXPECT_EQ(testing::MaterializeToTerm(&buf), expected)
          << "p=" << p << " seed=" << seed;
      BufferComponent::Stats st = buf.stats();
      EXPECT_EQ(st.degraded_holes, 0);
      EXPECT_TRUE(buf.TakeStatus().ok());
      // Every fault recovered: each failure was followed by one re-issue.
      EXPECT_EQ(st.retries, st.faults);
      if (st.faults > 0) {
        EXPECT_GT(st.backoff_ns, 0);
        EXPECT_GT(clock.now_ns(), 0);
      }
      total_faults += st.faults;
    }
  }
  // The schedule is deterministic: across the matrix, faults definitely hit.
  EXPECT_GT(total_faults, 0);
}

// Service level: per-session fault injection on both sources; the framed
// Fig. 3 answer is still byte-identical, and the recovery shows up in the
// service-wide fault counters.
TEST(FaultMatrixTest, ServiceAnswerByteIdenticalUnderInjectedFaults) {
  for (double p : {0.05, 0.2}) {
    auto homes = testing::Doc(kHomes);
    auto schools = testing::Doc(kSchools);
    SessionEnvironment env;
    SessionEnvironment::WrapperOptions wo;
    wo.fault.p_fail = p;
    wo.fault.p_truncate = p / 4;
    wo.fault.p_garble = p / 4;
    wo.fault.p_duplicate = p / 4;
    wo.fault.p_delay = p;
    wo.retry.max_attempts = 10;
    env.RegisterWrapperFactory(
        "homesSrc",
        [&homes] {
          return std::make_unique<wrappers::XmlLxpWrapper>(homes.get());
        },
        "homes.xml", wo);
    env.RegisterWrapperFactory(
        "schoolsSrc",
        [&schools] {
          return std::make_unique<wrappers::XmlLxpWrapper>(schools.get());
        },
        "schools.xml", wo);
    MediatorService service(&env, {});

    auto doc = FramedDocument::Open(&service, kFig3).ValueOrDie();
    EXPECT_EQ(testing::MaterializeToTerm(doc.get()), kExpectedAnswer)
        << "p=" << p;
    EXPECT_TRUE(doc->last_status().ok());

    ServiceMetricsSnapshot snap = service.Metrics();
    EXPECT_GT(snap.source_faults, 0);
    EXPECT_GT(snap.source_retries, 0);
    EXPECT_EQ(snap.degraded_holes, 0);
    EXPECT_NE(snap.ToString().find("faults{"), std::string::npos);
  }
}

// Deterministic fail-N-then-succeed: the first two exchanges per operation
// fail; retries absorb all of them and the answer is exact.
TEST(FaultMatrixTest, FailFirstNThenSucceed) {
  ScriptedLxpWrapper inner = MakeExample7Wrapper();
  net::FaultSpec spec;
  spec.fail_first_n = 2;
  FaultyLxpWrapper faulty(&inner, spec, /*seed=*/99);

  net::SimClock clock;
  faulty.AttachClock(&clock);
  BufferComponent::Options opts;
  opts.clock = &clock;
  opts.retry.max_attempts = 4;
  opts.retry.jitter = 0;
  BufferComponent buf(&faulty, "u", opts);

  EXPECT_EQ(testing::MaterializeToTerm(&buf), "a[b[d,e],c]");
  BufferComponent::Stats st = buf.stats();
  EXPECT_GT(st.faults, 0);
  EXPECT_EQ(st.retries, st.faults);
  EXPECT_EQ(st.degraded_holes, 0);
  EXPECT_TRUE(buf.TakeStatus().ok());
}

// ---------------------------------------------------------------------------
// Graceful degradation: exhausted retries isolate, never propagate.
// ---------------------------------------------------------------------------

/// Fails every TryFill for one specific hole id; everything else passes
/// through — a source with one permanently broken page.
class SelectiveFailWrapper : public LxpWrapper {
 public:
  SelectiveFailWrapper(LxpWrapper* inner, std::string bad_hole)
      : inner_(inner), bad_(std::move(bad_hole)) {}

  std::string GetRoot(const std::string& uri) override {
    return inner_->GetRoot(uri);
  }
  FragmentList Fill(const std::string& hole_id) override {
    return inner_->Fill(hole_id);
  }
  Status TryFill(const std::string& hole_id, FragmentList* out) override {
    if (hole_id == bad_) return Status::Unavailable("source refused " + bad_);
    return inner_->TryFill(hole_id, out);
  }

 private:
  LxpWrapper* inner_;
  std::string bad_;
};

TEST(FaultDegradeTest, ExhaustedRetriesDegradeOnlyTheFailingSubtree) {
  ScriptedLxpWrapper inner = MakeExample7Wrapper();
  SelectiveFailWrapper wrapper(&inner, "h3");  // h3 would fill to [c]

  net::SimClock clock;
  BufferComponent::Options opts;
  opts.clock = &clock;
  opts.retry.max_attempts = 2;
  opts.retry.jitter = 0;
  BufferComponent buf(&wrapper, "u", opts);

  NodeId a = buf.Root();
  ASSERT_TRUE(a.valid());
  auto b = buf.Down(a);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(buf.Fetch(*b), "b");

  // Right of b chases h3, which exhausts its two attempts: the hole
  // degrades into a real #unavailable node instead of aborting.
  auto sib = buf.Right(*b);
  ASSERT_TRUE(sib.has_value());
  EXPECT_EQ(buf.Fetch(*sib), "#unavailable");
  Status s = buf.TakeStatus();
  EXPECT_EQ(s.code(), Status::Code::kUnavailable);
  EXPECT_EQ(buf.degraded_holes(), 1);

  // The unavailable node is a leaf and ends the sibling list.
  EXPECT_FALSE(buf.Down(*sib).has_value());

  // The rest of the tree is untouched and fully navigable.
  buf.TakeStatus();  // drain the latches from probing the unavailable node
  auto d = buf.Down(*b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(buf.Fetch(*d), "d");
  auto e = buf.Right(*d);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(buf.Fetch(*e), "e");
  EXPECT_TRUE(buf.TakeStatus().ok());

  BufferComponent::Stats st = buf.stats();
  EXPECT_EQ(st.faults, 2);   // both attempts at h3 failed
  EXPECT_EQ(st.retries, 1);  // one re-issue before giving up
}

/// A source that refuses every exchange — the first session's wrapper in
/// the isolation test below.
class RefusingWrapper : public LxpWrapper {
 public:
  std::string GetRoot(const std::string&) override { return "r"; }
  FragmentList Fill(const std::string&) override { return {}; }
  Status TryGetRoot(const std::string&, std::string*) override {
    return Status::Unavailable("source down");
  }
  Status TryFill(const std::string&, FragmentList*) override {
    return Status::Unavailable("source down");
  }
  Status TryFillMany(const std::vector<std::string>&, const FillBudget&,
                     HoleFillList*) override {
    return Status::Unavailable("source down");
  }
};

TEST(FaultDegradeTest, SiblingSessionsStayIsolated) {
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  SessionEnvironment env;
  SessionEnvironment::WrapperOptions wo;
  wo.retry.max_attempts = 2;
  wo.retry.jitter = 0;
  // The first session built gets a dead homes source; later ones are fine.
  std::atomic<int> built{0};
  env.RegisterWrapperFactory(
      "homesSrc",
      [&built, &homes]() -> std::unique_ptr<LxpWrapper> {
        if (built.fetch_add(1) == 0) return std::make_unique<RefusingWrapper>();
        return std::make_unique<wrappers::XmlLxpWrapper>(homes.get());
      },
      "homes.xml", wo);
  env.RegisterWrapperFactory(
      "schoolsSrc",
      [&schools] {
        return std::make_unique<wrappers::XmlLxpWrapper>(schools.get());
      },
      "schools.xml", wo);
  MediatorService service(&env, {});

  auto broken = FramedDocument::Open(&service, kFig3).ValueOrDie();
  NodeId broken_root = broken->Root();
  ASSERT_TRUE(broken_root.valid());
  // Fetching the root resolves the first binding through homesSrc, whose
  // retries exhaust: the command comes back as a typed error frame (never
  // an abort) and yields ⊥.
  EXPECT_EQ(broken->Fetch(broken_root), "");
  EXPECT_EQ(broken->last_status().code(), Status::Code::kUnavailable);
  // The session survives its degraded source: the answer shell (with no
  // med_home bindings to mediate) is still served.
  broken->clear_last_status();
  std::vector<SubtreeEntry> entries;
  broken->FetchSubtree(broken_root, -1, &entries);
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(std::string(entries[0].label.name()), "answer");
  ServiceMetricsSnapshot snap = service.Metrics();
  EXPECT_GE(snap.degraded_holes, 1);
  EXPECT_GT(snap.source_faults, 0);

  // A sibling session opened while the first one is degraded gets its own
  // (healthy) wrapper instance and the exact answer.
  auto healthy = FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(healthy.get()), kExpectedAnswer);
  EXPECT_TRUE(healthy->last_status().ok());
}

// ---------------------------------------------------------------------------
// Regression: hand-crafted malformed FillMany responses (the cases that
// used to MIX_CHECK-abort) are rejected with a typed Status before any
// splice, degrading only the requested hole.
// ---------------------------------------------------------------------------

enum class BadBatchMode {
  kUnknownHole,      ///< entry refines a hole the buffer never saw
  kDuplicateEntry,   ///< same hole refined twice in one response
  kMissingRequested, ///< a requested hole goes unanswered
  kAdjacentHoles,    ///< fragments with two adjacent holes
  kAllHoles,         ///< non-empty fill consisting only of holes
  kReusedId,         ///< fill re-introduces the id being refined
};

class BadBatchWrapper : public LxpWrapper {
 public:
  explicit BadBatchWrapper(BadBatchMode mode) : mode_(mode) {}

  std::string GetRoot(const std::string&) override { return "r"; }
  FragmentList Fill(const std::string& hole_id) override {
    if (hole_id == "r") {
      return {Fragment::Element("a", {Fragment::Hole("h1")})};
    }
    return {Fragment::Element("x")};
  }
  HoleFillList FillMany(const std::vector<std::string>&,
                        const FillBudget&) override {
    switch (mode_) {
      case BadBatchMode::kUnknownHole:
        return {{"zzz", {Fragment::Element("x")}}};
      case BadBatchMode::kDuplicateEntry:
        return {{"h1", {Fragment::Element("x")}},
                {"h1", {Fragment::Element("y")}}};
      case BadBatchMode::kMissingRequested:
        return {};
      case BadBatchMode::kAdjacentHoles:
        return {{"h1",
                 {Fragment::Element("x"), Fragment::Hole("n1"),
                  Fragment::Hole("n2")}}};
      case BadBatchMode::kAllHoles:
        return {{"h1", {Fragment::Hole("n1")}}};
      case BadBatchMode::kReusedId:
        return {{"h1", {Fragment::Element("x"), Fragment::Hole("h1")}}};
    }
    return {};
  }

 private:
  BadBatchMode mode_;
};

TEST(BadBatchTest, HandCraftedBatchResponsesAreRejectedWithStatus) {
  struct Case {
    BadBatchMode mode;
    const char* expect_substring;
  };
  const Case cases[] = {
      {BadBatchMode::kUnknownHole, "unknown or already-filled"},
      {BadBatchMode::kDuplicateEntry, "refined twice"},
      {BadBatchMode::kMissingRequested, "not answered"},
      {BadBatchMode::kAdjacentHoles, "adjacent holes"},
      {BadBatchMode::kAllHoles, "only of holes"},
      {BadBatchMode::kReusedId, "reused hole id"},
  };
  for (const Case& c : cases) {
    BadBatchWrapper wrapper(c.mode);
    BufferComponent buf(&wrapper, "u");
    NodeId a = buf.Root();
    ASSERT_TRUE(a.valid());

    // DownAll drives the batch path: the crafted response must be rejected
    // as a whole, before any splice, and h1 degrades to #unavailable.
    std::vector<NodeId> kids;
    buf.DownAll(a, &kids);
    Status s = buf.TakeStatus();
    EXPECT_EQ(s.code(), Status::Code::kInvalidArgument)
        << "mode=" << static_cast<int>(c.mode) << ": " << s.ToString();
    EXPECT_NE(s.message().find(c.expect_substring), std::string::npos)
        << "mode=" << static_cast<int>(c.mode) << ": " << s.ToString();
    EXPECT_EQ(buf.degraded_holes(), 1);
    ASSERT_EQ(kids.size(), 1u);
    EXPECT_EQ(buf.Fetch(kids[0]), "#unavailable");
    // A rejected batch never half-applies: nothing but the degraded node
    // joined the tree.
    EXPECT_EQ(buf.holes_outstanding(), 0);
  }
}

// ---------------------------------------------------------------------------
// Deadline vs. retry.
// ---------------------------------------------------------------------------

/// Fails every fill while the shared flag is set — a source outage with a
/// recovery the test controls.
class ToggleFailWrapper : public LxpWrapper {
 public:
  ToggleFailWrapper(LxpWrapper* inner, std::atomic<bool>* failing)
      : inner_(inner), failing_(failing) {}
  ToggleFailWrapper(std::unique_ptr<LxpWrapper> inner,
                    std::atomic<bool>* failing)
      : owned_(std::move(inner)), inner_(owned_.get()), failing_(failing) {}

  std::string GetRoot(const std::string& uri) override {
    return inner_->GetRoot(uri);
  }
  FragmentList Fill(const std::string& hole_id) override {
    return inner_->Fill(hole_id);
  }
  Status TryFill(const std::string& hole_id, FragmentList* out) override {
    if (failing_->load()) return Status::Unavailable("outage");
    return inner_->TryFill(hole_id, out);
  }
  Status TryFillMany(const std::vector<std::string>& holes,
                     const FillBudget& budget, HoleFillList* out) override {
    if (failing_->load()) return Status::Unavailable("outage");
    return inner_->TryFillMany(holes, budget, out);
  }

 private:
  std::unique_ptr<LxpWrapper> owned_;
  LxpWrapper* inner_;
  std::atomic<bool>* failing_;
};

// Buffer level: a backoff that would overrun the command budget is never
// started — the command fails kDeadlineExceeded, the hole stays intact
// (NOT degraded), and a later better-funded command recovers fully.
TEST(DeadlineTest, BackoffNeverOutlivesCommandBudget) {
  ScriptedLxpWrapper inner = MakeExample7Wrapper();
  std::atomic<bool> failing{true};
  ToggleFailWrapper wrapper(&inner, &failing);

  net::SimClock clock;
  BufferComponent::Options opts;
  opts.clock = &clock;
  opts.retry.max_attempts = 10;
  opts.retry.initial_backoff_ns = 10 * kMs;
  opts.retry.backoff_multiplier = 2.0;
  opts.retry.jitter = 0;
  BufferComponent buf(&wrapper, "u", opts);

  buf.SetCommandBudgetNs(25 * kMs);
  // Attempt at t=0 fails; backoff 10ms; attempt at t=10ms fails; the next
  // backoff (20ms) would end past the 25ms budget, so it never starts.
  NodeId r = buf.Root();
  EXPECT_FALSE(r.valid());
  Status s = buf.TakeStatus();
  EXPECT_EQ(s.code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(buf.degraded_holes(), 0);  // deadline-cut holes stay retryable
  EXPECT_LE(clock.now_ns(), 25 * kMs);

  BufferComponent::Stats st = buf.stats();
  EXPECT_EQ(st.faults, 2);
  EXPECT_EQ(st.retries, 1);
  EXPECT_EQ(st.backoff_ns, 10 * kMs);

  // Outage over, budget cleared: the same hole fills and the view is exact.
  failing = false;
  buf.SetCommandBudgetNs(-1);
  r = buf.Root();
  EXPECT_TRUE(r.valid());
  EXPECT_EQ(testing::MaterializeToTerm(&buf), "a[b[d,e],c]");
  EXPECT_TRUE(buf.TakeStatus().ok());
}

// Service level: the executor deadline propagates into the retry loop as a
// virtual fill deadline. During an outage a deadlined command reports
// kDeadlineExceeded (typed, no abort, nothing degraded); after the outage
// the same session produces the exact answer.
TEST(DeadlineTest, ServiceDeadlineCutsRetryAndLeavesSessionUsable) {
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  std::atomic<bool> failing{false};
  SessionEnvironment env;
  SessionEnvironment::WrapperOptions wo;
  wo.retry.max_attempts = 1000;  // attempts never exhaust: only the deadline
  wo.retry.initial_backoff_ns = 1 * kMs;
  wo.retry.jitter = 0;
  env.RegisterWrapperFactory(
      "homesSrc",
      [&failing, &homes]() -> std::unique_ptr<LxpWrapper> {
        return std::make_unique<ToggleFailWrapper>(
            std::make_unique<wrappers::XmlLxpWrapper>(homes.get()), &failing);
      },
      "homes.xml", wo);
  env.RegisterWrapperFactory(
      "schoolsSrc",
      [&schools] {
        return std::make_unique<wrappers::XmlLxpWrapper>(schools.get());
      },
      "schools.xml", wo);
  MediatorService service(&env, {});

  auto doc = FramedDocument::Open(&service, kFig3).ValueOrDie();
  NodeId root = doc->Root();
  ASSERT_TRUE(root.valid());

  failing = true;
  doc->set_deadline_ns(50 * kMs);
  std::vector<NodeId> kids;
  doc->DownAll(root, &kids);
  EXPECT_TRUE(kids.empty());
  EXPECT_EQ(doc->last_status().code(), Status::Code::kDeadlineExceeded);
  ServiceMetricsSnapshot snap = service.Metrics();
  EXPECT_EQ(snap.degraded_holes, 0);

  // Outage over. The deadline-cut session stays navigable (it serves the
  // degraded answer shell its operators computed during the cut command —
  // mediator operator caches memoize binding enumerations, so in-place
  // retry stops at the buffer layer; see the buffer-level test above).
  failing = false;
  doc->set_deadline_ns(0);
  doc->clear_last_status();
  EXPECT_EQ(testing::MaterializeToTerm(doc.get()), "answer");

  // Service-level recovery granularity is a fresh session: its brand-new
  // buffers re-fill from the recovered source and the answer is exact.
  auto fresh = FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(fresh.get()), kExpectedAnswer);
  EXPECT_TRUE(fresh->last_status().ok());
  snap = service.Metrics();
  EXPECT_GT(snap.source_faults, 0);
  EXPECT_EQ(snap.degraded_holes, 0);
}

// ---------------------------------------------------------------------------
// Client-side retry over a faulty wire.
// ---------------------------------------------------------------------------

TEST(ClientRetryTest, TransportFaultsAreRetriedToByteEquality) {
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  SessionEnvironment env;
  env.RegisterWrapperFactory(
      "homesSrc",
      [&homes] {
        return std::make_unique<wrappers::XmlLxpWrapper>(homes.get());
      },
      "homes.xml");
  env.RegisterWrapperFactory(
      "schoolsSrc",
      [&schools] {
        return std::make_unique<wrappers::XmlLxpWrapper>(schools.get());
      },
      "schools.xml");
  MediatorService service(&env, {});

  net::FaultSpec spec;
  spec.p_fail = 0.1;
  spec.p_truncate = 0.1;
  spec.p_garble = 0.1;
  spec.p_duplicate = 0.1;
  FaultyFrameTransport flaky(&service, spec, /*seed=*/7);

  net::RetryOptions retry;
  retry.max_attempts = 10;
  auto doc = FramedDocument::Open(&flaky, kFig3, /*deadline_ns=*/0, retry)
                 .ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(doc.get()), kExpectedAnswer);
  EXPECT_TRUE(doc->last_status().ok());
  EXPECT_GT(flaky.policy().counters().injected(), 0);
  EXPECT_GT(doc->retries(), 0);
  EXPECT_TRUE(doc->Close().ok());
}

// ---------------------------------------------------------------------------
// Pushed fills: malformed pushes are dropped like corrupt messages.
// ---------------------------------------------------------------------------

TEST(PushFillTest, MalformedPushedFillsAreDropped) {
  std::map<std::string, FragmentList> fills;
  fills["r"] = {Fragment::Element("a", {Fragment::Hole("h1")})};
  ScriptedLxpWrapper wrapper("r", std::move(fills));
  BufferComponent buf(&wrapper, "u");
  NodeId a = buf.Root();
  ASSERT_TRUE(a.valid());
  ASSERT_EQ(buf.holes_outstanding(), 1);

  // Unknown hole id.
  EXPECT_FALSE(buf.ApplyPushedFill("nope", {Fragment::Element("x")}));
  // Progress-condition violation (all-hole / adjacent holes).
  EXPECT_FALSE(buf.ApplyPushedFill(
      "h1", {Fragment::Hole("a1"), Fragment::Hole("a2")}));
  // A dropped push neither latches an error nor touches the tree.
  EXPECT_TRUE(buf.TakeStatus().ok());
  EXPECT_EQ(buf.holes_outstanding(), 1);
  EXPECT_EQ(buf.degraded_holes(), 0);

  // A valid push still applies.
  EXPECT_TRUE(buf.ApplyPushedFill("h1", {Fragment::Element("b")}));
  EXPECT_EQ(buf.holes_outstanding(), 0);
  EXPECT_EQ(testing::MaterializeToTerm(&buf), "a[b]");
}

// ---------------------------------------------------------------------------
// Idle-TTL sweep from the command path.
// ---------------------------------------------------------------------------

TEST(EvictionTest, CommandPathSweepsIdleSessions) {
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  SessionEnvironment env;
  env.RegisterWrapperFactory(
      "homesSrc",
      [&homes] {
        return std::make_unique<wrappers::XmlLxpWrapper>(homes.get());
      },
      "homes.xml");
  env.RegisterWrapperFactory(
      "schoolsSrc",
      [&schools] {
        return std::make_unique<wrappers::XmlLxpWrapper>(schools.get());
      },
      "schools.xml");
  MediatorService::Options options;
  options.session_idle_ttl_ns = 40 * kMs;
  MediatorService service(&env, options);

  auto idle = FramedDocument::Open(&service, kFig3).ValueOrDie();
  auto active = FramedDocument::Open(&service, kFig3).ValueOrDie();
  ASSERT_EQ(service.registry().LiveIds().size(), 2u);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  // No Open happens — the sweep must run from the command/execute path.
  // The serving session is touched and excluded; the abandoned one goes.
  NodeId root = active->Root();
  ASSERT_TRUE(root.valid());
  EXPECT_EQ(active->Fetch(root), "answer");
  EXPECT_TRUE(active->last_status().ok());

  std::vector<uint64_t> live = service.registry().LiveIds();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0], active->session_id());
  EXPECT_EQ(service.registry().counters().evicted, 1);

  // The evicted session answers ⊥ / kNotFound, never crashes.
  EXPECT_FALSE(idle->Root().valid());
  EXPECT_EQ(idle->last_status().code(), Status::Code::kNotFound);
}

}  // namespace
}  // namespace mix::service
