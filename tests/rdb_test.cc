#include <gtest/gtest.h>

#include "rdb/database.h"
#include "rdb/sql.h"

namespace mix::rdb {
namespace {

Database MakeDb() {
  Database db("realty");
  Schema homes({{"addr", Type::kString}, {"zip", Type::kInt}});
  Table* t = db.CreateTable("homes", homes).ValueOrDie();
  EXPECT_TRUE(t->Insert({Value(std::string("La Jolla")), Value(int64_t{91220})}).ok());
  EXPECT_TRUE(t->Insert({Value(std::string("El Cajon")), Value(int64_t{91223})}).ok());
  EXPECT_TRUE(t->Insert({Value(std::string("Del Mar")), Value(int64_t{91220})}).ok());
  return db;
}

TEST(ValueTest, TypesAndToString) {
  EXPECT_EQ(Value(int64_t{42}).type(), Type::kInt);
  EXPECT_EQ(Value(3.5).type(), Type::kDouble);
  EXPECT_EQ(Value(std::string("x")).type(), Type::kString);
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(std::string("x")).ToString(), "x");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueTest, Comparisons) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(std::string("a")), Value(std::string("b")));
}

TEST(TableTest, InsertChecksArityAndTypes) {
  Table t("t", Schema({{"a", Type::kInt}}));
  EXPECT_TRUE(t.Insert({Value(int64_t{1})}).ok());
  EXPECT_FALSE(t.Insert({Value(int64_t{1}), Value(int64_t{2})}).ok());
  EXPECT_FALSE(t.Insert({Value(std::string("nope"))}).ok());
  EXPECT_EQ(t.row_count(), 1);
}

TEST(DatabaseTest, CatalogOrderAndDuplicates) {
  Database db("d");
  db.CreateTable("b", Schema()).ValueOrDie();
  db.CreateTable("a", Schema()).ValueOrDie();
  EXPECT_FALSE(db.CreateTable("a", Schema()).ok());
  EXPECT_EQ(db.table_names(), (std::vector<std::string>{"b", "a"}));
  EXPECT_NE(db.GetTable("a"), nullptr);
  EXPECT_EQ(db.GetTable("zzz"), nullptr);
}

TEST(CursorTest, ScanAll) {
  Database db = MakeDb();
  Cursor c(db.GetTable("homes"));
  int64_t row_number = -1;
  int count = 0;
  while (c.Next(&row_number) != nullptr) {
    EXPECT_EQ(row_number, count);
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_EQ(c.rows_scanned(), 3);
}

TEST(CursorTest, PredicateAndSeek) {
  Database db = MakeDb();
  const Table* t = db.GetTable("homes");
  Cursor c(t, {Predicate{1, Predicate::Op::kEq, Value(int64_t{91220})}});
  int64_t n = -1;
  ASSERT_NE(c.Next(&n), nullptr);
  EXPECT_EQ(n, 0);
  ASSERT_NE(c.Next(&n), nullptr);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(c.Next(&n), nullptr);

  Cursor c2(t);
  c2.Seek(2);
  ASSERT_NE(c2.Next(&n), nullptr);
  EXPECT_EQ(n, 2);
}

TEST(PredicateTest, AllOperators) {
  Row row{Value(int64_t{5})};
  auto eval = [&](Predicate::Op op, int64_t lit) {
    return Predicate{0, op, Value(lit)}.Eval(row);
  };
  EXPECT_TRUE(eval(Predicate::Op::kEq, 5));
  EXPECT_TRUE(eval(Predicate::Op::kNe, 4));
  EXPECT_TRUE(eval(Predicate::Op::kLt, 6));
  EXPECT_TRUE(eval(Predicate::Op::kLe, 5));
  EXPECT_TRUE(eval(Predicate::Op::kGt, 4));
  EXPECT_TRUE(eval(Predicate::Op::kGe, 5));
  EXPECT_FALSE(eval(Predicate::Op::kLt, 5));
  EXPECT_FALSE(eval(Predicate::Op::kEq, 6));
}

TEST(SqlTest, ParseBasic) {
  auto stmt = ParseSelect("SELECT addr, zip FROM homes").ValueOrDie();
  EXPECT_EQ(stmt.columns, (std::vector<std::string>{"addr", "zip"}));
  EXPECT_EQ(stmt.table, "homes");
  EXPECT_TRUE(stmt.filters.empty());
}

TEST(SqlTest, ParseStarWhereLimit) {
  auto stmt =
      ParseSelect("select * from homes where zip = 91220 and addr <> 'x' limit 5")
          .ValueOrDie();
  EXPECT_TRUE(stmt.columns.empty());
  ASSERT_EQ(stmt.filters.size(), 2u);
  EXPECT_EQ(stmt.filters[0].column, "zip");
  EXPECT_EQ(stmt.filters[0].op, Predicate::Op::kEq);
  EXPECT_EQ(stmt.filters[1].op, Predicate::Op::kNe);
  EXPECT_EQ(stmt.limit, 5);
}

TEST(SqlTest, ToStringRoundTrips) {
  auto stmt =
      ParseSelect("SELECT a FROM t WHERE b >= 3 AND c = 'x' LIMIT 2").ValueOrDie();
  auto again = ParseSelect(stmt.ToString()).ValueOrDie();
  EXPECT_EQ(again.ToString(), stmt.ToString());
}

TEST(SqlTest, ParseErrors) {
  EXPECT_FALSE(ParseSelect("DELETE FROM x").ok());
  EXPECT_FALSE(ParseSelect("SELECT FROM x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t garbage").ok());
}

TEST(SqlTest, ExecuteProjectsAndFilters) {
  Database db = MakeDb();
  auto result =
      ExecuteSelect(db, "SELECT addr FROM homes WHERE zip = 91220").ValueOrDie();
  ASSERT_EQ(result.schema().column_count(), 1u);
  EXPECT_EQ(result.schema().columns()[0].name, "addr");

  auto cursor = result.Open();
  Row row;
  std::vector<std::string> addrs;
  while (cursor.Next(&row)) addrs.push_back(row[0].as_string());
  EXPECT_EQ(addrs, (std::vector<std::string>{"La Jolla", "Del Mar"}));
}

TEST(SqlTest, ExecuteLimit) {
  Database db = MakeDb();
  auto result = ExecuteSelect(db, "SELECT * FROM homes LIMIT 2").ValueOrDie();
  auto cursor = result.Open();
  Row row;
  int count = 0;
  while (cursor.Next(&row)) ++count;
  EXPECT_EQ(count, 2);
}

TEST(SqlTest, BindErrors) {
  Database db = MakeDb();
  EXPECT_EQ(ExecuteSelect(db, "SELECT x FROM homes").status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(ExecuteSelect(db, "SELECT * FROM nope").status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(
      ExecuteSelect(db, "SELECT * FROM homes WHERE addr = 3").status().code(),
      Status::Code::kInvalidArgument);
}

TEST(SqlTest, IntLiteralWidensToDouble) {
  Database db("d");
  Table* t = db.CreateTable("m", Schema({{"v", Type::kDouble}})).ValueOrDie();
  ASSERT_TRUE(t->Insert({Value(2.5)}).ok());
  auto result = ExecuteSelect(db, "SELECT * FROM m WHERE v > 2").ValueOrDie();
  auto cursor = result.Open();
  Row row;
  EXPECT_TRUE(cursor.Next(&row));
}

}  // namespace
}  // namespace mix::rdb
