// Answer-schema inference (Section 6's DTD-oriented BBQ support).
#include <gtest/gtest.h>

#include "mediator/translate.h"
#include "mediator/view_schema.h"
#include "xmas/parser.h"

namespace mix::mediator {
namespace {

std::string SchemaOf(const std::string& query) {
  auto q = xmas::ParseQuery(query);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto plan = TranslateQuery(q.value());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  auto schema = InferAnswerSchema(*plan.value());
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return schema.value()->ToString();
}

TEST(ViewSchemaTest, Fig3AnswerShape) {
  // One answer; zero-or-more med_homes; each holds the home (ANY) followed
  // by zero-or-more schools (ANY).
  EXPECT_EQ(SchemaOf(
                "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} "
                "</answer> {} "
                "WHERE homesSrc homes.home $H AND $H zip._ $V1 "
                "AND schoolsSrc schools.school $S AND $S zip._ $V2 "
                "AND $V1 = $V2"),
            "answer(med_home(ANY,ANY*)*)");
}

TEST(ViewSchemaTest, FlatListView) {
  EXPECT_EQ(SchemaOf("CONSTRUCT <out> $X {$X} </out> {} WHERE s a.b $X"),
            "out(ANY*)");
}

TEST(ViewSchemaTest, LiteralTextAndNestedElements) {
  EXPECT_EQ(SchemaOf(
                "CONSTRUCT <out> <tag> 'price' $P </tag> {$P} </out> {} "
                "WHERE s a.b $P"),
            "out(tag(#text,ANY)*)");
}

TEST(ViewSchemaTest, ScalarCollapseView) {
  EXPECT_EQ(SchemaOf(
                "CONSTRUCT <answer> <card> $H </card> {$H} </answer> {} "
                "WHERE s homes.home $H"),
            "answer(card(ANY)*)");
}

TEST(ViewSchemaTest, DeepNesting) {
  EXPECT_EQ(
      SchemaOf("CONSTRUCT <a> <b> <c> $X </c> </b> {$X} </a> {} "
               "WHERE s p.q $X"),
      "a(b(c(ANY))*)");
}

TEST(ViewSchemaTest, FailsOnVariableRoot) {
  // A plan whose root element is a raw source value has no static shape.
  auto plan = PlanNode::TupleDestroy(
      PlanNode::GetDescendants(PlanNode::Source("s", "R"), "R", "a", "A"),
      "A");
  auto schema = InferAnswerSchema(*plan);
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), Status::Code::kInvalidArgument);
}

TEST(ViewSchemaTest, HandCraftedPlanWithConcat) {
  // createElement(pair, concat(X, Y)) — two ANY children, not repeated.
  auto plan = PlanNode::TupleDestroy(
      PlanNode::CreateElement(
          PlanNode::Concatenate(
              PlanNode::GetDescendants(
                  PlanNode::GetDescendants(PlanNode::Source("s", "R"), "R",
                                           "a", "X"),
                  "X", "b", "Y"),
              "X", "Y", "Z"),
          true, "pair", "Z", "E"),
      "E");
  auto schema = InferAnswerSchema(*plan);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema.value()->ToString(), "pair(ANY,ANY)");
}

}  // namespace
}  // namespace mix::mediator
