#include <gtest/gtest.h>

#include "buffer/buffer.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/random_tree.h"

namespace mix::wrappers {
namespace {

TEST(XmlLxpWrapperTest, RootFillShipsSmallTreesWhole) {
  auto doc = testing::Doc("r[a,b]");
  XmlLxpWrapper::Options options;
  options.inline_limit = 100;
  XmlLxpWrapper wrapper(doc.get(), options);
  auto frags = wrapper.Fill(wrapper.GetRoot("u"));
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].ToTerm(), "r[a,b]");
}

TEST(XmlLxpWrapperTest, LargeTreesShipWithHoles) {
  auto doc = testing::Doc("r[a,b,c,d]");
  XmlLxpWrapper::Options options;
  options.inline_limit = 0;  // never inline
  options.chunk = 2;
  XmlLxpWrapper wrapper(doc.get(), options);
  auto frags = wrapper.Fill(wrapper.GetRoot("u"));
  ASSERT_EQ(frags.size(), 1u);
  ASSERT_EQ(frags[0].children.size(), 1u);
  EXPECT_TRUE(frags[0].children[0].is_hole);

  auto level = wrapper.Fill(frags[0].children[0].hole_id);
  // chunk=2 children plus one trailing hole.
  ASSERT_EQ(level.size(), 3u);
  EXPECT_EQ(level[0].ToTerm(), "a");
  EXPECT_EQ(level[1].ToTerm(), "b");
  EXPECT_TRUE(level[2].is_hole);
}

class XmlWrapperEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int64_t, int>> {};

// Whatever the chunk size, inline limit and fill policy, buffered
// navigation must reconstruct exactly the source document.
TEST_P(XmlWrapperEquivalenceTest, BufferedViewEqualsSource) {
  auto [chunk, inline_limit, policy] = GetParam();
  xml::RandomTreeOptions tree_options;
  tree_options.seed = 1234;
  tree_options.max_depth = 5;
  tree_options.max_fanout = 4;
  auto doc = xml::RandomTree(tree_options);

  XmlLxpWrapper::Options options;
  options.chunk = chunk;
  options.inline_limit = inline_limit;
  options.policy = policy == 0 ? XmlLxpWrapper::FillPolicy::kLeftToRight
                               : XmlLxpWrapper::FillPolicy::kRightToLeft;
  XmlLxpWrapper wrapper(doc.get(), options);
  buffer::BufferComponent buffer(&wrapper, "u");
  EXPECT_EQ(testing::MaterializeToTerm(&buffer), xml::ToTerm(doc->root()));
}

INSTANTIATE_TEST_SUITE_P(
    Granularities, XmlWrapperEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 100),
                       ::testing::Values<int64_t>(0, 4, 1000),
                       ::testing::Values(0, 1)));

TEST(XmlLxpWrapperTest, BiggerChunksMeanFewerFills) {
  auto doc = xml::MakeHomesDoc(200, 10);
  auto count_fills = [&](int chunk) {
    XmlLxpWrapper::Options options;
    options.chunk = chunk;
    options.inline_limit = 10;
    XmlLxpWrapper wrapper(doc.get(), options);
    buffer::BufferComponent buffer(&wrapper, "u");
    testing::MaterializeToTerm(&buffer);
    return buffer.fill_count();
  };
  int64_t small = count_fills(1);
  int64_t medium = count_fills(10);
  int64_t large = count_fills(100);
  EXPECT_GT(small, medium);
  EXPECT_GT(medium, large);
}

TEST(XmlLxpWrapperTest, LazyPrefixTouchesFewFills) {
  auto doc = xml::MakeHomesDoc(1000, 10);
  XmlLxpWrapper::Options options;
  options.chunk = 4;
  options.inline_limit = 10;
  XmlLxpWrapper wrapper(doc.get(), options);
  buffer::BufferComponent buffer(&wrapper, "u");

  // Walk the first three homes only.
  NodeId root = buffer.Root();
  auto home = buffer.Down(root);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(home.has_value());
    home = buffer.Right(*home);
  }
  // 1000 homes with chunk 4 would need 250 fills to materialize; the
  // prefix walk needs a small constant number.
  EXPECT_LE(buffer.fill_count(), 4);
}

TEST(XmlLxpWrapperTest, RightToLeftPolicyExercisesFrontHoles) {
  auto doc = testing::Doc("r[a,b,c,d,e]");
  XmlLxpWrapper::Options options;
  options.chunk = 2;
  options.inline_limit = 1;
  options.policy = XmlLxpWrapper::FillPolicy::kRightToLeft;
  XmlLxpWrapper wrapper(doc.get(), options);
  auto root_frags = wrapper.Fill(wrapper.GetRoot("u"));
  auto level = wrapper.Fill(root_frags[0].children[0].hole_id);
  // Liberal: [hole, d, e].
  ASSERT_EQ(level.size(), 3u);
  EXPECT_TRUE(level[0].is_hole);
  EXPECT_EQ(level[1].ToTerm(), "d");
  EXPECT_EQ(level[2].ToTerm(), "e");

  // And the buffer still reconstructs the document in order.
  XmlLxpWrapper wrapper2(doc.get(), options);
  buffer::BufferComponent buffer(&wrapper2, "u");
  EXPECT_EQ(testing::MaterializeToTerm(&buffer), "r[a,b,c,d,e]");
}

}  // namespace
}  // namespace mix::wrappers
