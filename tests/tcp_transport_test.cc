// End-to-end tests for the real TCP transport: loopback parity with the
// in-process service (byte for byte), incremental frame reassembly, corrupt
// header/payload handling, slow-reader backpressure, graceful shutdown
// drain, client deadlines on a stalled server, and retry-driven reconnect.
//
// The whole file runs under TSan in CI — it exercises every cross-thread
// edge of the reactor (worker completions racing loop closes, pipelined
// out-of-order completion, Stop() against in-flight commands).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/framed_document.h"
#include "net/fault.h"
#include "net/tcp/socket_util.h"
#include "net/tcp/tcp_server.h"
#include "net/tcp/tcp_transport.h"
#include "service/service.h"
#include "service/session.h"
#include "service/wire.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"

namespace mix::net::tcp {
namespace {

using client::FramedDocument;
using service::MediatorService;
using service::SessionEnvironment;
using service::wire::Frame;
using service::wire::MsgType;

// The Fig. 3 running example (same fixture as tests/service_test.cc).
const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

const char* kHomes =
    "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]],"
    "home[addr[Nowhere],zip[99999]]]";
const char* kSchools =
    "schools[school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],"
    "school[dir[Hart],zip[91223]]]";

const char* kExpectedAnswer =
    "answer["
    "med_home[home[addr[La Jolla],zip[91220]],"
    "school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]]],"
    "med_home[home[addr[El Cajon],zip[91223]],school[dir[Hart],zip[91223]]]]";

/// LxpWrapper decorator whose fills dawdle — a "distant source" that keeps
/// a command in flight long enough for Stop() to race it.
class SlowLxpWrapper : public buffer::LxpWrapper {
 public:
  SlowLxpWrapper(const xml::Document* doc, std::chrono::milliseconds delay)
      : inner_(doc), delay_(delay) {}

  std::string GetRoot(const std::string& uri) override {
    return inner_.GetRoot(uri);
  }
  buffer::FragmentList Fill(const std::string& hole_id) override {
    std::this_thread::sleep_for(delay_);
    return inner_.Fill(hole_id);
  }
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override {
    std::this_thread::sleep_for(delay_);
    return inner_.FillMany(holes, budget);
  }

 private:
  wrappers::XmlLxpWrapper inner_;
  std::chrono::milliseconds delay_;
};

/// Session environment with the homes/schools sources of Fig. 3.
class TcpFixture {
 public:
  explicit TcpFixture(std::chrono::milliseconds source_delay =
                          std::chrono::milliseconds(0))
      : homes_(testing::Doc(kHomes)), schools_(testing::Doc(kSchools)) {
    if (source_delay.count() == 0) {
      env_.RegisterWrapperFactory(
          "homesSrc",
          [this] {
            return std::make_unique<wrappers::XmlLxpWrapper>(homes_.get());
          },
          "homes.xml");
      env_.RegisterWrapperFactory(
          "schoolsSrc",
          [this] {
            return std::make_unique<wrappers::XmlLxpWrapper>(schools_.get());
          },
          "schools.xml");
    } else {
      env_.RegisterWrapperFactory(
          "homesSrc",
          [this, source_delay] {
            return std::make_unique<SlowLxpWrapper>(homes_.get(), source_delay);
          },
          "homes.xml");
      env_.RegisterWrapperFactory(
          "schoolsSrc",
          [this, source_delay] {
            return std::make_unique<SlowLxpWrapper>(schools_.get(),
                                                    source_delay);
          },
          "schools.xml");
    }
  }

  SessionEnvironment& env() { return env_; }

 private:
  std::unique_ptr<xml::Document> homes_;
  std::unique_ptr<xml::Document> schools_;
  SessionEnvironment env_;
};

std::string MetricsRequest() {
  Frame f;
  f.type = MsgType::kMetrics;
  return service::wire::EncodeFrame(f);
}

/// Spin-waits (up to `timeout`) for a cross-thread condition.
template <typename Pred>
bool WaitUntil(Pred pred, std::chrono::milliseconds timeout =
                              std::chrono::milliseconds(5000)) {
  auto give_up = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// Raw (frame-agnostic) socket client for the byte-level tests: garbage
/// injection, 1-byte trickles, deliberate non-reading.
class RawClient {
 public:
  /// `rcvbuf` > 0 shrinks SO_RCVBUF *before* connecting (window scaling is
  /// negotiated at handshake), which is what makes the slow-reader test
  /// fill the pipe deterministically fast.
  static RawClient Connect(uint16_t port, int rcvbuf = 0) {
    RawClient c;
    if (rcvbuf > 0) {
      UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
      EXPECT_TRUE(fd.valid());
      setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
      sockaddr_in sa{};
      sa.sin_family = AF_INET;
      sa.sin_port = htons(port);
      sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa),
                         sizeof(sa));
      if (rc < 0 && errno == EINPROGRESS) {
        EXPECT_TRUE(
            WaitFd(fd.get(), POLLOUT, NowNs() + 2'000'000'000).ok());
      }
      c.fd_ = std::move(fd);
    } else {
      Result<int> fd = ConnectTcp("127.0.0.1", port, NowNs() + 2'000'000'000);
      EXPECT_TRUE(fd.ok()) << fd.status().ToString();
      c.fd_.reset(fd.value());
    }
    return c;
  }

  void Send(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t w = ::send(fd_.get(), bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      if (w > 0) {
        off += static_cast<size_t>(w);
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!WaitFd(fd_.get(), POLLOUT, NowNs() + 5'000'000'000).ok()) return;
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      return;  // peer closed — fine, some tests provoke exactly that
    }
  }

  /// Reads one whole frame (blocking with deadline).
  Result<std::string> ReadFrame() {
    for (;;) {
      std::string_view rest(buf_.data() + off_, buf_.size() - off_);
      size_t frame_size = 0;
      auto peek = service::wire::PeekFrame(rest, &frame_size);
      if (peek == service::wire::FramePeek::kCorrupt) {
        return Status::Internal("corrupt response");
      }
      if (peek == service::wire::FramePeek::kReady) {
        std::string frame(rest.substr(0, frame_size));
        off_ += frame_size;
        return frame;
      }
      Status ready = WaitFd(fd_.get(), POLLIN, NowNs() + 5'000'000'000);
      if (!ready.ok()) return ready;
      char chunk[4096];
      ssize_t r = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
      if (r > 0) {
        buf_.append(chunk, static_cast<size_t>(r));
        continue;
      }
      if (r == 0) return Status::Unavailable("EOF");
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable("recv error");
    }
  }

  /// True once the server has closed this connection (EOF/reset observed).
  bool WaitClosed(std::chrono::milliseconds timeout) {
    return WaitUntil(
        [this] {
          char chunk[4096];
          ssize_t r = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
          if (r > 0) return false;  // discard — we only care about close
          return r == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                            errno != EINTR);
        },
        timeout);
  }

  int fd() const { return fd_.get(); }

 private:
  UniqueFd fd_;
  std::string buf_;
  size_t off_ = 0;
};

// --------------------------------------------------------------------------
// Parity: the Fig. 3 dialogue over a real socket is the in-process dialogue.
// --------------------------------------------------------------------------

TEST(TcpTransportTest, LoopbackFig3MatchesInProcessByteForByte) {
  TcpFixture fx;
  MediatorService service(&fx.env(), {});
  TcpServer server(&service, {});
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions copts;
  copts.port = server.port();
  TcpFrameTransport transport(copts);

  // Full navigation dialogue over the wire materializes the Fig. 3 answer.
  auto doc = FramedDocument::Open(&transport, kFig3).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(doc.get()), kExpectedAnswer);

  // Byte-for-byte: the *same* request frame (same session, same node)
  // through the TCP transport and through the in-process transport yields
  // identical response bytes — the socket adds nothing and loses nothing.
  Frame fetch;
  fetch.type = MsgType::kFetchSubtree;
  fetch.session = doc->session_id();
  fetch.node = doc->Root();
  fetch.number = 64;  // depth: the whole answer
  std::string request = service::wire::EncodeFrame(fetch);
  Result<std::string> over_tcp = transport.RoundTrip(request);
  Result<std::string> in_process = service.RoundTrip(request);
  ASSERT_TRUE(over_tcp.ok()) << over_tcp.status().ToString();
  ASSERT_TRUE(in_process.ok());
  EXPECT_EQ(over_tcp.value(), in_process.value());

  // The service-wide metrics frame now carries the listener's counters.
  RawClient metrics_client = RawClient::Connect(server.port());
  metrics_client.Send(MetricsRequest());
  Result<std::string> metrics = metrics_client.ReadFrame();
  ASSERT_TRUE(metrics.ok());
  Result<Frame> decoded = service::wire::DecodeFrame(metrics.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, MsgType::kMetricsText);
  EXPECT_NE(decoded.value().text.find("net{accepts="), std::string::npos);

  service::NetStats stats = server.stats();
  EXPECT_GE(stats.accepts, 2);
  EXPECT_GT(stats.frames_in, 0);
  EXPECT_GT(stats.frames_out, 0);
  EXPECT_GT(stats.rx_bytes, 0);
  EXPECT_GT(stats.tx_bytes, 0);
}

TEST(TcpTransportTest, EphemeralPortBinding) {
  TcpFixture fx;
  MediatorService service(&fx.env(), {});
  TcpServer a(&service, {});
  TcpServer b(&service, {});
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  EXPECT_NE(a.port(), 0);
  EXPECT_NE(b.port(), 0);
  EXPECT_NE(a.port(), b.port());

  // Both listeners actually serve.
  for (uint16_t port : {a.port(), b.port()}) {
    RawClient c = RawClient::Connect(port);
    c.Send(MetricsRequest());
    EXPECT_TRUE(c.ReadFrame().ok());
  }
  b.Stop();  // stats provider hand-off: the metrics frame still works
  RawClient c = RawClient::Connect(a.port());
  c.Send(MetricsRequest());
  EXPECT_TRUE(c.ReadFrame().ok());
}

// --------------------------------------------------------------------------
// Frame reassembly and corrupt input.
// --------------------------------------------------------------------------

TEST(TcpTransportTest, FrameSplitAcrossOneByteWritesReassembles) {
  TcpFixture fx;
  MediatorService service(&fx.env(), {});
  TcpServer server(&service, {});
  ASSERT_TRUE(server.Start().ok());

  RawClient c = RawClient::Connect(server.port());
  std::string request = MetricsRequest();
  for (char byte : request) {
    c.Send(std::string_view(&byte, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Result<std::string> response = c.ReadFrame();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  Result<Frame> decoded = service::wire::DecodeFrame(response.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, MsgType::kMetricsText);
  // Trickled bytes must have left the reassembly buffer non-empty at least
  // once between reads.
  EXPECT_GT(server.stats().partial_reads, 0);
}

TEST(TcpTransportTest, GarbledHeaderClosesOnlyThatConnection) {
  TcpFixture fx;
  MediatorService service(&fx.env(), {});
  TcpServer server(&service, {});
  ASSERT_TRUE(server.Start().ok());

  RawClient sibling = RawClient::Connect(server.port());
  sibling.Send(MetricsRequest());
  ASSERT_TRUE(sibling.ReadFrame().ok());

  // Garbage magic: frame sync is gone, the connection must die.
  RawClient garbled = RawClient::Connect(server.port());
  garbled.Send(std::string(16, '\xff'));
  EXPECT_TRUE(garbled.WaitClosed(std::chrono::milliseconds(5000)));

  // Valid magic but an impossible length: same fate.
  RawClient oversized = RawClient::Connect(server.port());
  std::string huge = {'\xff', '\xff', '\xff', '\x7f', 'M', 'X', 1, 6};
  oversized.Send(huge);
  EXPECT_TRUE(oversized.WaitClosed(std::chrono::milliseconds(5000)));

  EXPECT_TRUE(WaitUntil([&] { return server.stats().decode_closes >= 2; }));

  // The sibling connection never noticed.
  sibling.Send(MetricsRequest());
  EXPECT_TRUE(sibling.ReadFrame().ok());
}

TEST(TcpTransportTest, GarbledPayloadGetsTypedErrorFrameAndConnectionLives) {
  TcpFixture fx;
  MediatorService service(&fx.env(), {});
  TcpServer server(&service, {});
  ASSERT_TRUE(server.Start().ok());

  RawClient c = RawClient::Connect(server.port());
  // Well-formed header (kFetch, 20-byte payload) over junk payload bytes:
  // the frame decodes *as a frame*, fails *as a message*, and the server's
  // typed kError response comes back on a connection that stays up — the
  // exact same rejection the in-process transport produces.
  std::string frame = {20, 0, 0, 0, 'M', 'X', 1, 6};
  frame += std::string(20, '\xee');
  c.Send(frame);
  Result<std::string> response = c.ReadFrame();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  Result<Frame> decoded = service::wire::DecodeFrame(response.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, MsgType::kError);
  EXPECT_FALSE(decoded.value().ToStatus().ok());

  // Same connection keeps serving.
  c.Send(MetricsRequest());
  EXPECT_TRUE(c.ReadFrame().ok());
  EXPECT_EQ(server.stats().decode_closes, 0);
}

// --------------------------------------------------------------------------
// Pipelining: many frames in flight, responses in request order.
// --------------------------------------------------------------------------

TEST(TcpTransportTest, PipelinedResponsesArriveInRequestOrder) {
  TcpFixture fx;
  MediatorService service(&fx.env(), {});
  TcpServer server(&service, {});
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions copts;
  copts.port = server.port();
  TcpFrameTransport transport(copts);
  auto doc = FramedDocument::Open(&transport, kFig3).ValueOrDie();
  NodeId root = doc->Root();
  std::optional<NodeId> child = doc->Down(root);
  ASSERT_TRUE(child.has_value());

  // Distinct requests with distinct answers, interleaved and repeated.
  Frame fetch_root;
  fetch_root.type = MsgType::kFetch;
  fetch_root.session = doc->session_id();
  fetch_root.node = root;
  Frame fetch_child = fetch_root;
  fetch_child.node = *child;
  std::vector<std::string> requests;
  for (int i = 0; i < 16; ++i) {
    requests.push_back(service::wire::EncodeFrame(i % 2 == 0 ? fetch_root
                                                             : fetch_child));
  }
  Result<std::vector<std::string>> responses =
      transport.RoundTripMany(requests);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses.value().size(), requests.size());
  for (size_t i = 0; i < responses.value().size(); ++i) {
    Result<Frame> decoded = service::wire::DecodeFrame(responses.value()[i]);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().type, MsgType::kLabel);
    EXPECT_EQ(decoded.value().text, i % 2 == 0 ? "answer" : "med_home");
  }
}

TEST(TcpTransportTest, PipelinedBatchDyingMidReadSurfacesDataLoss) {
  TcpFixture fx;
  MediatorService service(&fx.env(), {});

  // A front that answers exactly ONE frame, then slams the connection: the
  // pipelined batch is desynced mid-read — responses 2..4 can never be
  // matched to their requests.
  uint16_t port = 0;
  Result<int> listener = ListenTcp("127.0.0.1", 0, 8, &port);
  ASSERT_TRUE(listener.ok());
  UniqueFd listen_fd(listener.value());
  std::thread front([&] {
    if (!WaitFd(listen_fd.get(), POLLIN, NowNs() + 5'000'000'000).ok()) return;
    int fd = accept4(listen_fd.get(), nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;
    UniqueFd conn(fd);
    std::string buf;
    for (;;) {
      size_t frame_size = 0;
      auto peek = service::wire::PeekFrame(buf, &frame_size);
      if (peek == service::wire::FramePeek::kReady) {
        Result<std::string> resp =
            service.RoundTrip(buf.substr(0, frame_size));
        if (!resp.ok()) return;
        size_t sent = 0;
        while (sent < resp.value().size()) {
          ssize_t w = ::send(conn.get(), resp.value().data() + sent,
                             resp.value().size() - sent, MSG_NOSIGNAL);
          if (w > 0) {
            sent += static_cast<size_t>(w);
          } else if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!WaitFd(conn.get(), POLLOUT, NowNs() + 1'000'000'000).ok()) {
              return;
            }
          } else if (!(w < 0 && errno == EINTR)) {
            return;
          }
        }
        return;  // one answer served; UniqueFd closes the connection
      }
      if (!WaitFd(conn.get(), POLLIN, NowNs() + 5'000'000'000).ok()) return;
      char chunk[4096];
      ssize_t r = ::recv(conn.get(), chunk, sizeof(chunk), 0);
      if (r > 0) {
        buf.append(chunk, static_cast<size_t>(r));
      } else if (r == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                            errno != EINTR)) {
        return;
      }
    }
  });

  TcpTransportOptions copts;
  copts.port = port;
  copts.op_timeout_ns = 5'000'000'000;
  TcpFrameTransport transport(copts);
  std::vector<std::string> requests(4, MetricsRequest());
  Result<std::vector<std::string>> responses =
      transport.RoundTripMany(requests);
  front.join();

  // One of four answers arrived; the batch result must be kDataLoss — NOT a
  // retryable kUnavailable, because blindly re-sending the whole batch over
  // a fresh connection could double-apply the request that *was* answered.
  ASSERT_FALSE(responses.ok());
  EXPECT_EQ(responses.status().code(), Status::Code::kDataLoss);
  EXPECT_FALSE(IsRetryableCode(responses.status().code()));
  EXPECT_FALSE(transport.connected());

  // A single-frame RoundTrip keeps the retryable classification: the same
  // transport reports plain kUnavailable once reconnects keep failing.
  listen_fd.reset();  // stop listening: connects are now refused outright
  TcpTransportOptions dead;
  dead.port = port;
  dead.connect_timeout_ns = 100'000'000;
  dead.op_timeout_ns = 1'000'000'000;
  TcpFrameTransport dead_transport(dead);
  Result<std::string> single = dead_transport.RoundTrip(MetricsRequest());
  ASSERT_FALSE(single.ok());
  EXPECT_EQ(single.status().code(), Status::Code::kUnavailable);
}

// --------------------------------------------------------------------------
// Backpressure: a peer that stops reading gets disconnected, not buffered
// into oblivion.
// --------------------------------------------------------------------------

TEST(TcpTransportTest, SlowReaderIsDisconnectedAtHighWaterMark) {
  TcpFixture fx;
  MediatorService service(&fx.env(), {});
  TcpServerOptions opts;
  opts.so_sndbuf = 4096;        // tiny kernel buffer: the pipe fills fast
  opts.write_high_water = 4096; // tiny queue bound: the policy trips fast
  TcpServer server(&service, opts);
  ASSERT_TRUE(server.Start().ok());

  RawClient c = RawClient::Connect(server.port(), /*rcvbuf=*/4096);
  // Hundreds of metrics requests, never reading a byte back. Responses
  // queue: kernel buffers fill, then the per-connection write queue crosses
  // the high-water mark.
  std::string burst;
  for (int i = 0; i < 400; ++i) burst += MetricsRequest();
  c.Send(burst);

  EXPECT_TRUE(WaitUntil([&] { return server.stats().slow_reader_closes >= 1; }))
      << server.stats().ToString();
  EXPECT_TRUE(c.WaitClosed(std::chrono::milliseconds(5000)));
  EXPECT_GE(server.stats().backpressure_stalls, 1);
}

TEST(TcpTransportTest, ReadsPauseAtPipelineLimit) {
  TcpFixture fx(std::chrono::milliseconds(50));  // slow enough to pile up
  MediatorService service(&fx.env(), {});
  TcpServerOptions opts;
  opts.max_pipeline = 2;
  TcpServer server(&service, opts);
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions copts;
  copts.port = server.port();
  TcpFrameTransport transport(copts);
  auto doc = FramedDocument::Open(&transport, kFig3).ValueOrDie();
  Frame fetch;
  fetch.type = MsgType::kFetch;
  fetch.session = doc->session_id();
  fetch.node = doc->Root();
  // Eight commands behind a 50 ms source with a pipeline bound of two:
  // the reactor must pause reads (EPOLLIN off) and resume them as
  // completions drain — and the answers still come back, in order.
  std::vector<std::string> requests(8, service::wire::EncodeFrame(fetch));
  Result<std::vector<std::string>> responses =
      transport.RoundTripMany(requests);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  for (const std::string& bytes : responses.value()) {
    Result<Frame> decoded = service::wire::DecodeFrame(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().type, MsgType::kLabel);
    EXPECT_EQ(decoded.value().text, "answer");
  }
  EXPECT_GE(server.stats().read_pauses, 1);
}

// --------------------------------------------------------------------------
// Graceful shutdown: Stop() lets in-flight commands finish and flushes
// their responses before closing.
// --------------------------------------------------------------------------

TEST(TcpTransportTest, StopDrainsInFlightCommand) {
  TcpFixture fx(std::chrono::milliseconds(300));  // slow sources
  MediatorService service(&fx.env(), {});
  TcpServer server(&service, {});
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions copts;
  copts.port = server.port();
  TcpFrameTransport transport(copts);
  auto doc = FramedDocument::Open(&transport, kFig3).ValueOrDie();

  // kFetch of the root resolves the first binding through the (slow)
  // sources — the command is mid-flight when Stop() lands.
  Frame fetch;
  fetch.type = MsgType::kFetch;
  fetch.session = doc->session_id();
  fetch.node = doc->Root();
  std::string request = service::wire::EncodeFrame(fetch);

  Result<std::string> response = Status::Internal("not run");
  std::thread client([&] { response = transport.RoundTrip(request); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.Stop();  // returns only after the drain
  client.join();

  ASSERT_TRUE(response.ok()) << response.status().ToString();
  Result<Frame> decoded = service::wire::DecodeFrame(response.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, MsgType::kLabel);
  EXPECT_EQ(decoded.value().text, "answer");
}

// --------------------------------------------------------------------------
// Client deadlines and retry-driven reconnect (the PR 4 machinery over a
// real wire).
// --------------------------------------------------------------------------

TEST(TcpTransportTest, DeadlineOnStalledServerIsNotRetryable) {
  // A listener that never accepts: the kernel completes the handshake from
  // the backlog, then nothing ever answers.
  uint16_t port = 0;
  Result<int> listener = ListenTcp("127.0.0.1", 0, 1, &port);
  ASSERT_TRUE(listener.ok());
  UniqueFd hold(listener.value());

  TcpTransportOptions copts;
  copts.port = port;
  copts.op_timeout_ns = 100'000'000;  // 100 ms
  TcpFrameTransport transport(copts);
  Result<std::string> response = transport.RoundTrip(MetricsRequest());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kDeadlineExceeded);
  // The budget is gone either way — the retry machinery must not spin on it.
  EXPECT_FALSE(IsRetryableCode(response.status().code()));
  // The stream is desynced (half a dialogue in flight), so the transport
  // must have dropped the connection.
  EXPECT_FALSE(transport.connected());
}

TEST(TcpTransportTest, RetryPolicyReconnectsThroughFlakyFront) {
  TcpFixture fx;
  MediatorService service(&fx.env(), {});

  // A flaky front: first connection is dropped on the floor (the client
  // sees kUnavailable), every later one is served by proxying frames to the
  // in-process service.
  uint16_t port = 0;
  Result<int> listener = ListenTcp("127.0.0.1", 0, 8, &port);
  ASSERT_TRUE(listener.ok());
  UniqueFd listen_fd(listener.value());
  std::atomic<bool> stop{false};
  std::thread front([&] {
    int conn_index = 0;
    while (!stop.load()) {
      if (!WaitFd(listen_fd.get(), POLLIN, NowNs() + 100'000'000).ok()) {
        continue;
      }
      int fd = accept4(listen_fd.get(), nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) continue;
      UniqueFd conn(fd);
      if (conn_index++ == 0) continue;  // drop the first connection
      std::string buf;
      size_t off = 0;
      while (!stop.load()) {
        std::string_view rest(buf.data() + off, buf.size() - off);
        size_t frame_size = 0;
        auto peek = service::wire::PeekFrame(rest, &frame_size);
        if (peek == service::wire::FramePeek::kCorrupt) break;
        if (peek == service::wire::FramePeek::kReady) {
          Result<std::string> resp =
              service.RoundTrip(std::string(rest.substr(0, frame_size)));
          off += frame_size;
          if (!resp.ok()) break;
          size_t sent = 0;
          bool write_ok = true;
          while (sent < resp.value().size()) {
            ssize_t w = ::send(conn.get(), resp.value().data() + sent,
                               resp.value().size() - sent, MSG_NOSIGNAL);
            if (w > 0) {
              sent += static_cast<size_t>(w);
            } else if (w < 0 &&
                       (errno == EAGAIN || errno == EWOULDBLOCK)) {
              if (!WaitFd(conn.get(), POLLOUT, NowNs() + 1'000'000'000)
                       .ok()) {
                write_ok = false;
                break;
              }
            } else if (!(w < 0 && errno == EINTR)) {
              write_ok = false;
              break;
            }
          }
          if (!write_ok) break;
          continue;
        }
        if (!WaitFd(conn.get(), POLLIN, NowNs() + 100'000'000).ok()) continue;
        char chunk[4096];
        ssize_t r = ::recv(conn.get(), chunk, sizeof(chunk), 0);
        if (r > 0) {
          buf.append(chunk, static_cast<size_t>(r));
        } else if (r == 0) {
          break;
        } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          break;
        }
      }
    }
  });

  TcpTransportOptions copts;
  copts.port = port;
  TcpFrameTransport transport(copts);  // auto_reconnect on by default

  // The first open frame lands on the doomed connection -> kUnavailable ->
  // the retry policy re-issues it, the transport reconnects, the second
  // connection serves the whole session.
  RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_ns = 1'000'000;
  auto doc = FramedDocument::Open(&transport, kFig3, /*deadline_ns=*/0, retry);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(testing::MaterializeToTerm(doc.value().get()), kExpectedAnswer);

  stop.store(true);
  front.join();
}

}  // namespace
}  // namespace mix::net::tcp
