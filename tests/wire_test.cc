// Codec tests for the mixd framed wire protocol (service/wire.h): round-trip
// fidelity for every payload kind, and — the robustness satellite — negative
// decoding: truncated, oversized, corrupt-tag, length-bomb and depth-bomb
// frames must come back as Status errors, never deaths.
#include <gtest/gtest.h>

#include <string>

#include "buffer/lxp.h"
#include "service/wire.h"

namespace mix::service::wire {
namespace {

using buffer::Fragment;

Frame RoundTrip(const Frame& in) {
  std::string bytes = EncodeFrame(in);
  Result<Frame> out = DecodeFrame(bytes);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return std::move(out).ValueOrDie();
}

TEST(WireCodecTest, ScalarFieldsRoundTrip) {
  Frame f;
  f.type = MsgType::kNextSiblings;
  f.session = 0x1234567890abcdefULL;
  f.deadline_ns = 5'000'000;
  f.number = -1;
  f.number2 = 42;
  f.flag = true;
  f.text = "CONSTRUCT <a/> {}";
  f.text2 = "zip";
  Frame g = RoundTrip(f);
  EXPECT_EQ(g.type, MsgType::kNextSiblings);
  EXPECT_EQ(g.session, f.session);
  EXPECT_EQ(g.deadline_ns, f.deadline_ns);
  EXPECT_EQ(g.number, -1);
  EXPECT_EQ(g.number2, 42);
  EXPECT_TRUE(g.flag);
  EXPECT_EQ(g.text, f.text);
  EXPECT_EQ(g.text2, f.text2);
}

TEST(WireCodecTest, NodeIdRoundTripStructural) {
  // A nested Skolem term like the binding-level ids of Example 4.
  NodeId inner("src", {int64_t{3}, int64_t{17}});
  NodeId outer("b", {int64_t{7}, std::string("H"), inner});
  Frame f;
  f.type = MsgType::kDown;
  f.session = 1;
  f.node = outer;
  Frame g = RoundTrip(f);
  EXPECT_TRUE(g.node.valid());
  EXPECT_EQ(g.node, outer);  // structural equality across the wire
  EXPECT_EQ(g.node.ToString(), outer.ToString());
}

TEST(WireCodecTest, InvalidNodeIdRoundTrips) {
  Frame f;
  f.type = MsgType::kNode;
  f.flag = false;
  Frame g = RoundTrip(f);
  EXPECT_FALSE(g.node.valid());
}

TEST(WireCodecTest, NodeListRoundTrip) {
  Frame f;
  f.type = MsgType::kNodeList;
  f.session = 9;
  for (int64_t i = 0; i < 5; ++i) f.nodes.push_back(NodeId("n", {i}));
  Frame g = RoundTrip(f);
  ASSERT_EQ(g.nodes.size(), 5u);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(g.nodes[i], f.nodes[i]);
}

TEST(WireCodecTest, SubtreeEntriesRoundTrip) {
  Frame f;
  f.type = MsgType::kSubtree;
  SubtreeEntry a{Atom::Intern("answer"), 0, false, NodeId()};
  SubtreeEntry b{Atom::Intern("med_home"), 1, true, NodeId("h", {int64_t{4}})};
  f.entries = {a, b};
  Frame g = RoundTrip(f);
  ASSERT_EQ(g.entries.size(), 2u);
  EXPECT_EQ(g.entries[0].label, a.label);
  EXPECT_EQ(g.entries[0].depth, 0);
  EXPECT_FALSE(g.entries[0].truncated);
  EXPECT_FALSE(g.entries[0].id.valid());
  EXPECT_EQ(g.entries[1].label, b.label);
  EXPECT_EQ(g.entries[1].depth, 1);
  EXPECT_TRUE(g.entries[1].truncated);
  EXPECT_EQ(g.entries[1].id, b.id);
}

TEST(WireCodecTest, FragmentsAndHoleFillsRoundTrip) {
  Frame f;
  f.type = MsgType::kLxpFills;
  Fragment tree = Fragment::Element(
      "home", {Fragment::Element("zip", {Fragment::Text("91220")}),
               Fragment::Hole("x:3:0")});
  f.fragments = {tree, Fragment::Hole("x:9:2")};
  f.hole_fills.push_back({"h0", {tree}});
  f.hole_fills.push_back({"h1", {}});
  Frame g = RoundTrip(f);
  ASSERT_EQ(g.fragments.size(), 2u);
  EXPECT_EQ(g.fragments[0].ToTerm(), tree.ToTerm());
  EXPECT_TRUE(g.fragments[1].is_hole);
  EXPECT_EQ(g.fragments[1].hole_id, "x:9:2");
  ASSERT_EQ(g.hole_fills.size(), 2u);
  EXPECT_EQ(g.hole_fills[0].hole_id, "h0");
  ASSERT_EQ(g.hole_fills[0].fragments.size(), 1u);
  EXPECT_EQ(g.hole_fills[0].fragments[0].ToTerm(), tree.ToTerm());
  EXPECT_TRUE(g.hole_fills[1].fragments.empty());
}

TEST(WireCodecTest, ErrorFrameCarriesStatus) {
  Frame f = Frame::Error(Status::Unavailable("queue full"));
  Frame g = RoundTrip(f);
  Status s = g.ToStatus();
  EXPECT_EQ(s.code(), Status::Code::kUnavailable);
  EXPECT_EQ(s.message(), "queue full");
  // Non-error frames map to OK.
  Frame ok;
  ok.type = MsgType::kCloseOk;
  EXPECT_TRUE(RoundTrip(ok).ToStatus().ok());
}

// --- negative decoding: every case is a Status, never a death ------------

TEST(WireDecodeTest, TruncatedHeader) {
  std::string bytes = EncodeFrame(Frame::Error(Status::OK()));
  for (size_t n = 0; n < 8 && n < bytes.size(); ++n) {
    Result<Frame> r = DecodeFrame(bytes.substr(0, n));
    EXPECT_FALSE(r.ok()) << "prefix length " << n;
  }
}

TEST(WireDecodeTest, TruncatedPayloadEveryPrefix) {
  Frame f;
  f.type = MsgType::kDown;
  f.session = 3;
  f.node = NodeId("b", {int64_t{1}, std::string("H"), NodeId("src", {int64_t{2}})});
  std::string bytes = EncodeFrame(f);
  // Every strict prefix must fail cleanly (either "truncated header",
  // "truncated payload", or an in-payload bounds error).
  for (size_t n = 0; n < bytes.size(); ++n) {
    Result<Frame> r = DecodeFrame(bytes.substr(0, n));
    EXPECT_FALSE(r.ok()) << "prefix length " << n;
  }
  EXPECT_TRUE(DecodeFrame(bytes).ok());
}

TEST(WireDecodeTest, BadMagicAndVersion) {
  std::string bytes = EncodeFrame(Frame::Error(Status::OK()));
  std::string bad = bytes;
  bad[4] = 'Z';
  EXPECT_FALSE(DecodeFrame(bad).ok());
  bad = bytes;
  bad[6] = 9;  // version
  EXPECT_FALSE(DecodeFrame(bad).ok());
}

TEST(WireDecodeTest, CorruptTypeTag) {
  std::string bytes = EncodeFrame(Frame::Error(Status::OK()));
  for (uint8_t t : {uint8_t{0}, uint8_t{63}, uint8_t{200}, uint8_t{255}}) {
    std::string bad = bytes;
    bad[7] = static_cast<char>(t);
    Result<Frame> r = DecodeFrame(bad);
    EXPECT_FALSE(r.ok()) << "type " << int(t);
  }
}

TEST(WireDecodeTest, OversizedDeclaredPayload) {
  std::string bytes = EncodeFrame(Frame::Error(Status::OK()));
  // Declared length beyond the hard cap.
  std::string bad = bytes;
  uint32_t huge = (16u << 20) + 1;
  for (int i = 0; i < 4; ++i) bad[i] = static_cast<char>(huge >> (8 * i));
  EXPECT_FALSE(DecodeFrame(bad).ok());
  // Declared length larger than the buffer actually is.
  bad = bytes;
  uint32_t bigger = static_cast<uint32_t>(bytes.size());  // > real payload
  for (int i = 0; i < 4; ++i) bad[i] = static_cast<char>(bigger >> (8 * i));
  EXPECT_FALSE(DecodeFrame(bad).ok());
}

TEST(WireDecodeTest, TrailingBytesRejectedUnlessConsumedRequested) {
  std::string bytes = EncodeFrame(Frame::Error(Status::OK()));
  std::string padded = bytes + "xyz";
  EXPECT_FALSE(DecodeFrame(padded).ok());
  size_t consumed = 0;
  Result<Frame> r = DecodeFrame(padded, &consumed);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(consumed, bytes.size());
}

TEST(WireDecodeTest, StringLengthBomb) {
  Frame f;
  f.type = MsgType::kOpen;
  f.text = "CONSTRUCT";
  std::string bytes = EncodeFrame(f);
  // The `text` length prefix sits after session/deadline/number/number2 and
  // the flag byte: header(8) + 8*4 + 1.
  size_t text_len_at = 8 + 33;
  ASSERT_LT(text_len_at + 4, bytes.size());
  for (uint32_t bomb : {0xffffffffu, 1u << 24, static_cast<uint32_t>(bytes.size())}) {
    std::string bad = bytes;
    for (int i = 0; i < 4; ++i) {
      bad[text_len_at + static_cast<size_t>(i)] =
          static_cast<char>(bomb >> (8 * i));
    }
    Result<Frame> r = DecodeFrame(bad);
    EXPECT_FALSE(r.ok()) << "bomb " << bomb;
  }
}

TEST(WireDecodeTest, ListCountBombRejectedBeforeAllocation) {
  // A hand-built frame claiming 2^20 node-list entries in a tiny payload
  // must fail on the count check, not OOM or crash.
  Frame f;
  f.type = MsgType::kNodeList;
  std::string bytes = EncodeFrame(f);
  // nodes list count follows: fixed(33) + text(4) + text2(4) + node(1).
  size_t nodes_len_at = 8 + 33 + 4 + 4 + 1;
  ASSERT_LT(nodes_len_at + 4, bytes.size());
  std::string bad = bytes;
  uint32_t bomb = 1u << 20;
  for (int i = 0; i < 4; ++i) {
    bad[nodes_len_at + static_cast<size_t>(i)] = static_cast<char>(bomb >> (8 * i));
  }
  EXPECT_FALSE(DecodeFrame(bad).ok());
}

TEST(WireDecodeTest, DepthBombNodeId) {
  // Encode a legitimate deep id at the limit, then push past it by nesting
  // raw bytes: decode must refuse without recursing unboundedly.
  NodeId deep("d");
  for (int i = 0; i < kMaxTermDepth + 8; ++i) deep = NodeId("d", {deep});
  Frame f;
  f.type = MsgType::kDown;
  f.session = 1;
  f.node = deep;
  std::string bytes = EncodeFrame(f);
  Result<Frame> r = DecodeFrame(bytes);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("deep"), std::string::npos);
}

TEST(WireDecodeTest, DepthBombFragment) {
  Fragment deep = Fragment::Element("x");
  for (int i = 0; i < kMaxTermDepth + 8; ++i) {
    deep = Fragment::Element("x", {deep});
  }
  Frame f;
  f.type = MsgType::kLxpFillResp;
  f.fragments = {deep};
  Result<Frame> r = DecodeFrame(EncodeFrame(f));
  EXPECT_FALSE(r.ok());
}

TEST(WireDecodeTest, GarbageBytes) {
  // Fuzz-shaped sanity: deterministic pseudo-random buffers never crash.
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (int round = 0; round < 200; ++round) {
    size_t len = (state >> 17) % 200;
    std::string junk;
    junk.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      junk.push_back(static_cast<char>(state >> 33));
    }
    DecodeFrame(junk);  // outcome irrelevant; must not die
  }
  SUCCEED();
}

TEST(WireDecodeTest, UnknownComponentKind) {
  Frame f;
  f.type = MsgType::kDown;
  f.session = 1;
  f.node = NodeId("n", {int64_t{7}});
  std::string bytes = EncodeFrame(f);
  // Component kind byte of the first component: after fixed(33) + text(4) +
  // text2(4) + node{valid(1) + tag(4+1) + arity(4)}.
  size_t kind_at = 8 + 33 + 4 + 4 + 1 + 5 + 4;
  ASSERT_LT(kind_at, bytes.size());
  std::string bad = bytes;
  bad[kind_at] = 7;
  Result<Frame> r = DecodeFrame(bad);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("component"), std::string::npos);
}

}  // namespace
}  // namespace mix::service::wire
