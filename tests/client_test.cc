#include <gtest/gtest.h>

#include "client/client.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "test_util.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/random_tree.h"
#include "xml/materialize.h"

namespace mix::client {
namespace {

TEST(ClientTest, DomStyleNavigationOverMaterializedDoc) {
  auto doc = testing::Doc("r[a[x],b,c[y[z]]]");
  xml::DocNavigable nav(doc.get());
  VirtualXmlDocument vdoc(&nav);

  XmlElement root = vdoc.Root();
  EXPECT_EQ(root.Name(), "r");
  XmlElement a = root.FirstChild();
  EXPECT_EQ(a.Name(), "a");
  EXPECT_EQ(a.NextSibling().Name(), "b");
  EXPECT_TRUE(a.NextSibling().NextSibling().NextSibling().IsNull());

  EXPECT_EQ(root.Children().size(), 3u);
  EXPECT_EQ(root.Child("c").Name(), "c");
  EXPECT_TRUE(root.Child("zz").IsNull());
  EXPECT_EQ(root.Child("c").Text(), "z");
  EXPECT_TRUE(root.FirstChild().FirstChild().IsLeaf());
  EXPECT_EQ(root.SelectSibling("x").IsNull(), true);
  EXPECT_EQ(a.SelectSibling("c").Name(), "c");
}

TEST(ClientTest, TransparencyOverVirtualDocument) {
  // §5: client code cannot distinguish the virtual answer document from a
  // materialized copy — run the same routine against both and compare.
  auto homes = testing::Doc(
      "homes[home[addr[A],zip[1]],home[addr[B],zip[2]]]");
  auto schools = testing::Doc(
      "schools[school[dir[D1],zip[1]],school[dir[D2],zip[1]]]");
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());

  auto q = xmas::ParseQuery(
      "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} "
      "</answer> {} "
      "WHERE homesSrc homes.home $H AND $H zip._ $V1 "
      "AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2");
  auto plan = mediator::TranslateQuery(q.value()).ValueOrDie();
  mediator::SourceRegistry sources;
  sources.Register("homesSrc", &homes_nav);
  sources.Register("schoolsSrc", &schools_nav);
  auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();

  auto routine = [](const VirtualXmlDocument& vdoc) {
    std::string out;
    XmlElement answer = vdoc.Root();
    for (XmlElement mh = answer.FirstChild(); !mh.IsNull();
         mh = mh.NextSibling()) {
      out += mh.Name() + "(";
      out += mh.Child("home").Child("addr").Text();
      for (XmlElement s = mh.Child("school"); !s.IsNull();
           s = s.SelectSibling("school")) {
        out += "," + s.Child("dir").Text();
      }
      out += ")";
    }
    return out;
  };

  VirtualXmlDocument virt(med->document());
  auto materialized = xml::Materialize(med->document());
  xml::DocNavigable mat_nav(materialized.get());
  VirtualXmlDocument mat(&mat_nav);

  std::string virt_out = routine(virt);
  EXPECT_EQ(virt_out, routine(mat));
  EXPECT_EQ(virt_out, "med_home(A,D1,D2)");
}

TEST(ClientTest, EarlyTerminationNavigatesPrefixOnly) {
  auto homes = xml::MakeHomesDoc(300, 10);
  auto schools = xml::MakeSchoolsDoc(300, 10);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  NavStats stats;
  CountingNavigable counted(&homes_nav, &stats);

  auto q = xmas::ParseQuery(
      "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} "
      "</answer> {} "
      "WHERE homesSrc homes.home $H AND $H zip._ $V1 "
      "AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2");
  auto plan = mediator::TranslateQuery(q.value()).ValueOrDie();
  mediator::SourceRegistry sources;
  sources.Register("homesSrc", &counted);
  sources.Register("schoolsSrc", &schools_nav);
  auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();

  // "navigate the first few results and then stop" (Section 1).
  VirtualXmlDocument vdoc(med->document());
  XmlElement first = vdoc.Root().FirstChild();
  ASSERT_FALSE(first.IsNull());
  std::string addr = first.Child("home").Child("addr").Text();
  EXPECT_FALSE(addr.empty());
  // Far fewer navigations than the ~1800 nodes of the homes source.
  EXPECT_LT(stats.total(), 120);
}

}  // namespace
}  // namespace mix::client

namespace mix::client {
namespace {

TEST(ClientTest, ChildAtAndAttribute) {
  auto parsed = xml::Parse("<r id=\"42\"><a>1</a><b>2</b><c>3</c></r>");
  ASSERT_TRUE(parsed.ok());
  xml::DocNavigable nav(parsed.value().get());
  VirtualXmlDocument vdoc(&nav);
  XmlElement root = vdoc.Root();
  // Children: @id, a, b, c.
  EXPECT_EQ(root.ChildAt(1).Name(), "a");
  EXPECT_EQ(root.ChildAt(3).Text(), "3");
  EXPECT_TRUE(root.ChildAt(4).IsNull());
  EXPECT_EQ(root.Attribute("id"), "42");
  EXPECT_EQ(root.Attribute("missing"), "");
}

}  // namespace
}  // namespace mix::client
