#include <gtest/gtest.h>

#include "algebra/get_descendants_op.h"
#include "algebra/join_op.h"
#include "algebra/extra_ops.h"
#include "algebra/set_ops.h"
#include "algebra/source_op.h"
#include "test_util.h"
#include "xml/doc_navigable.h"

namespace mix::algebra {
namespace {

using pathexpr::PathExpr;

/// source → getDescendants chain: binds V to the given leaf path's values.
struct Chain {
  Chain(const std::string& term, const std::string& elem_path,
        const std::string& var, const std::string& leaf_path,
        const std::string& leaf_var)
      : doc(testing::Doc(term)),
        nav(doc.get()),
        counting(&nav, &stats),
        source(&counting, "#r" + var),
        elems(&source, "#r" + var, PathExpr::Parse(elem_path).ValueOrDie(),
              var),
        leafs(&elems, var, PathExpr::Parse(leaf_path).ValueOrDie(), leaf_var) {
  }

  std::unique_ptr<xml::Document> doc;
  xml::DocNavigable nav;
  NavStats stats;
  CountingNavigable counting;
  SourceOp source;
  GetDescendantsOp elems;
  GetDescendantsOp leafs;
};

TEST(JoinTest, HomesSchoolsZipJoin) {
  Chain homes("homes[home[addr[A],zip[1]],home[addr[B],zip[2]]]", "home", "H",
              "zip._", "V1");
  Chain schools(
      "schools[school[dir[S1],zip[1]],school[dir[S2],zip[2]],"
      "school[dir[S3],zip[1]]]",
      "school", "S", "zip._", "V2");
  JoinOp join(&homes.leafs, &schools.leafs,
              BindingPredicate::VarVar("V1", CompareOp::kEq, "V2"));

  std::vector<std::string> pairs;
  for (auto b = join.FirstBinding(); b.has_value(); b = join.NextBinding(*b)) {
    pairs.push_back(AtomOf(join.Attr(*b, "H")).substr(0, 14) + "+" +
                    TermOfValue(join.Attr(*b, "S")));
  }
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], "home[addr[A],z+school[dir[S1],zip[1]]");
  EXPECT_EQ(pairs[1], "home[addr[A],z+school[dir[S3],zip[1]]");
  EXPECT_EQ(pairs[2], "home[addr[B],z+school[dir[S2],zip[2]]");
}

TEST(JoinTest, SchemaIsConcatenation) {
  Chain l("r[a[k[1]]]", "a", "A", "k._", "K1");
  Chain r("r[b[k[1]]]", "b", "B", "k._", "K2");
  JoinOp join(&l.leafs, &r.leafs,
              BindingPredicate::VarVar("K1", CompareOp::kEq, "K2"));
  EXPECT_EQ(join.schema(), (VarList{"#rA", "A", "K1", "#rB", "B", "K2"}));
}

TEST(JoinTest, ReversedPredicateOrientation) {
  // Predicate written right-side-first must still work.
  Chain l("r[a[k[1]],a[k[5]]]", "a", "A", "k._", "K1");
  Chain r("r[b[k[3]]]", "b", "B", "k._", "K2");
  JoinOp join(&l.leafs, &r.leafs,
              BindingPredicate::VarVar("K2", CompareOp::kLt, "K1"));
  // K2 < K1: (5, 3) qualifies.
  auto b = join.FirstBinding();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(AtomOf(join.Attr(*b, "K1")), "5");
  EXPECT_FALSE(join.NextBinding(*b).has_value());
}

TEST(JoinTest, InnerCachingAvoidsRescans) {
  std::string schools = "schools[";
  for (int i = 0; i < 20; ++i) {
    if (i > 0) schools += ",";
    schools += "school[zip[" + std::to_string(i % 3) + "]]";
  }
  schools += "]";

  auto run = [&](bool cache) {
    Chain l("homes[home[zip[0]],home[zip[1]],home[zip[2]]]", "home", "H",
            "zip._", "V1");
    Chain r(schools, "school", "S", "zip._", "V2");
    JoinOp::Options options;
    options.cache_inner = cache;
    JoinOp join(&l.leafs, &r.leafs,
                BindingPredicate::VarVar("V1", CompareOp::kEq, "V2"), options);
    int count = 0;
    for (auto b = join.FirstBinding(); b.has_value();
         b = join.NextBinding(*b)) {
      ++count;
    }
    return std::pair<int, int64_t>(count, r.stats.total());
  };

  auto [cached_count, cached_navs] = run(true);
  auto [uncached_count, uncached_navs] = run(false);
  EXPECT_EQ(cached_count, uncached_count);  // same results
  EXPECT_EQ(cached_count, 20);
  // The paper's caching claim: memoizing the inner side's join attributes
  // saves repeated source navigation.
  EXPECT_LT(cached_navs, uncached_navs / 2);
}

TEST(JoinTest, EmptySides) {
  Chain l("r[a[k[1]]]", "a", "A", "k._", "K1");
  Chain r("r[x]", "b", "B", "k._", "K2");
  JoinOp join(&l.leafs, &r.leafs,
              BindingPredicate::VarVar("K1", CompareOp::kEq, "K2"));
  EXPECT_FALSE(join.FirstBinding().has_value());
}

TEST(UnionTest, ConcatenatesStreams) {
  Chain l("r[a[k[1]],a[k[2]]]", "a", "A", "k._", "K");
  Chain r("r[a[k[3]]]", "a", "A", "k._", "K");
  // Schemas must match exactly, including the internal root var; build two
  // chains with identical var names.
  UnionOp u(&l.leafs, &r.leafs);
  std::vector<std::string> ks;
  for (auto b = u.FirstBinding(); b.has_value(); b = u.NextBinding(*b)) {
    ks.push_back(AtomOf(u.Attr(*b, "K")));
  }
  EXPECT_EQ(ks, (std::vector<std::string>{"1", "2", "3"}));
}

TEST(UnionTest, EmptyLeftFallsThrough) {
  Chain l("r[x]", "a", "A", "k._", "K");
  Chain r("r[a[k[9]]]", "a", "A", "k._", "K");
  UnionOp u(&l.leafs, &r.leafs);
  auto b = u.FirstBinding();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(AtomOf(u.Attr(*b, "K")), "9");
  EXPECT_FALSE(u.NextBinding(*b).has_value());
}

TEST(DifferenceTest, RemovesValueEqualBindings) {
  Chain l("r[a[k[1]],a[k[2]],a[k[3]]]", "a", "A", "k._", "K");
  Chain r("r[a[k[2]]]", "a", "A", "k._", "K");
  // Schemas include the source roots, which differ between l and r — use
  // projection to the comparable columns first.
  ProjectOp pl(&l.leafs, {"A", "K"});
  ProjectOp pr(&r.leafs, {"A", "K"});
  DifferenceOp diff(&pl, &pr);
  std::vector<std::string> ks;
  for (auto b = diff.FirstBinding(); b.has_value();
       b = diff.NextBinding(*b)) {
    ks.push_back(AtomOf(diff.Attr(*b, "K")));
  }
  EXPECT_EQ(ks, (std::vector<std::string>{"1", "3"}));
}

TEST(DistinctTest, KeepsFirstOccurrences) {
  Chain c("r[a[k[1]],a[k[2]],a[k[1]],a[k[3]],a[k[2]]]", "a", "A", "k._", "K");
  ProjectOp p(&c.leafs, {"K"});
  DistinctOp d(&p);
  std::vector<std::string> ks;
  for (auto b = d.FirstBinding(); b.has_value(); b = d.NextBinding(*b)) {
    ks.push_back(AtomOf(d.Attr(*b, "K")));
  }
  EXPECT_EQ(ks, (std::vector<std::string>{"1", "2", "3"}));
}

TEST(DistinctTest, StaleResume) {
  Chain c("r[a[k[1]],a[k[1]],a[k[2]]]", "a", "A", "k._", "K");
  ProjectOp p(&c.leafs, {"K"});
  DistinctOp d(&p);
  auto b1 = d.FirstBinding();
  auto b2 = d.NextBinding(*b1);
  ASSERT_TRUE(b2.has_value());
  auto again = d.NextBinding(*b1);
  EXPECT_EQ(AtomOf(d.Attr(*again, "K")), "2");
}

TEST(ProjectTest, RestrictsSchema) {
  Chain c("r[a[k[1]]]", "a", "A", "k._", "K");
  ProjectOp p(&c.leafs, {"K"});
  EXPECT_EQ(p.schema(), (VarList{"K"}));
  auto b = p.FirstBinding();
  EXPECT_EQ(AtomOf(p.Attr(*b, "K")), "1");
  EXPECT_EQ(testing::StreamToTerm(&p), "bs[b[K[1]]]");
}

}  // namespace
}  // namespace mix::algebra

namespace mix::algebra {
namespace {

TEST(RenameTest, SchemaAndAttrTranslation) {
  Chain c("r[a[k[1]]]", "a", "A", "k._", "K");
  RenameOp rn(&c.leafs, "K", "Key");
  EXPECT_EQ(rn.schema(), (VarList{"#rA", "A", "Key"}));
  auto b = rn.FirstBinding();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(AtomOf(rn.Attr(*b, "Key")), "1");
  EXPECT_EQ(TermOfValue(rn.Attr(*b, "A")), "a[k[1]]");
  EXPECT_EQ(testing::StreamToTerm(&rn), "bs[b[#rA[r[a[k[1]]]],A[a[k[1]]],Key[1]]]");
}

TEST(RenameTest, AlignsSchemasForUnion) {
  // Two chains with different variable names, united after renaming.
  Chain l("r[a[k[1]]]", "a", "A", "k._", "K");
  Chain r("r[b[k[2]]]", "b", "B", "k._", "K2");
  ProjectOp pl(&l.leafs, {"K"});
  ProjectOp pr(&r.leafs, {"K2"});
  RenameOp rr(&pr, "K2", "K");
  UnionOp u(&pl, &rr);
  std::vector<std::string> ks;
  for (auto b = u.FirstBinding(); b.has_value(); b = u.NextBinding(*b)) {
    ks.push_back(AtomOf(u.Attr(*b, "K")));
  }
  EXPECT_EQ(ks, (std::vector<std::string>{"1", "2"}));
}

}  // namespace
}  // namespace mix::algebra
