// Static query∘view composition (mediator/compose.h): the composed flat
// plan must be navigationally equivalent to runtime mediator stacking.
#include <gtest/gtest.h>

#include "mediator/compose.h"
#include "mediator/instantiate.h"
#include "mediator/rewrite.h"
#include "mediator/translate.h"
#include "test_util.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/random_tree.h"

namespace mix::mediator {
namespace {

const char* kViewText = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

PlanPtr ParsePlan(const std::string& text) {
  auto q = xmas::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto plan = TranslateQuery(q.value());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).ValueOrDie();
}

/// Evaluates `query` over the Fig. 3 view by runtime stacking.
std::string RunStacked(const PlanNode& query, const PlanNode& view,
                       const xml::Document* homes,
                       const xml::Document* schools) {
  xml::DocNavigable homes_nav(homes);
  xml::DocNavigable schools_nav(schools);
  SourceRegistry lower_sources;
  lower_sources.Register("homesSrc", &homes_nav);
  lower_sources.Register("schoolsSrc", &schools_nav);
  auto lower = LazyMediator::Build(view, lower_sources).ValueOrDie();
  SourceRegistry upper_sources;
  upper_sources.Register("theView", lower->document());
  auto upper = LazyMediator::Build(query, upper_sources).ValueOrDie();
  return testing::MaterializeToTerm(upper->document());
}

/// Evaluates the composed flat plan directly against the base sources.
std::string RunComposed(const PlanNode& composed, const xml::Document* homes,
                        const xml::Document* schools, NavStats* stats) {
  xml::DocNavigable homes_nav(homes);
  xml::DocNavigable schools_nav(schools);
  CountingNavigable hc(&homes_nav, stats);
  CountingNavigable sc(&schools_nav, stats);
  SourceRegistry sources;
  sources.Register("homesSrc", &hc);
  sources.Register("schoolsSrc", &sc);
  auto med = LazyMediator::Build(composed, sources).ValueOrDie();
  return testing::MaterializeToTerm(med->document());
}

TEST(ComposeTest, MedHomeQueryUnfolds) {
  PlanPtr view = ParsePlan(kViewText);
  PlanPtr query = ParsePlan(
      "CONSTRUCT <homes_found> $M {$M} </homes_found> {} "
      "WHERE theView answer.med_home $M");
  auto composed = ComposeQueryOverView(*query, "theView", *view);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  // The composed plan is flat: no reference to the view source remains.
  EXPECT_EQ(composed.value()->ToString().find("theView"), std::string::npos);

  auto homes = xml::MakeHomesDoc(20, 5);
  auto schools = xml::MakeSchoolsDoc(20, 5);
  NavStats stats;
  EXPECT_EQ(RunComposed(*composed.value(), homes.get(), schools.get(), &stats),
            RunStacked(*query, *view, homes.get(), schools.get()));
}

TEST(ComposeTest, ResidualNavigationBelowUnfoldedElement) {
  // answer.med_home unfolds; navigation *inside* med_home (source content)
  // stays in the query as operators over the bound variable.
  PlanPtr view = ParsePlan(kViewText);
  PlanPtr query = ParsePlan(
      "CONSTRUCT <zips> $Z {$Z} </zips> {} "
      "WHERE theView answer.med_home $M AND $M school.zip._ $Z");
  auto composed = ComposeQueryOverView(*query, "theView", *view);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();

  auto homes = xml::MakeHomesDoc(12, 3);
  auto schools = xml::MakeSchoolsDoc(12, 3);
  NavStats stats;
  EXPECT_EQ(RunComposed(*composed.value(), homes.get(), schools.get(), &stats),
            RunStacked(*query, *view, homes.get(), schools.get()));
}

TEST(ComposeTest, SelectionOverViewComposesAndAgrees) {
  PlanPtr view = ParsePlan(kViewText);
  PlanPtr query = ParsePlan(
      "CONSTRUCT <hits> $M {$M} </hits> {} "
      "WHERE theView answer.med_home $M AND $M home.zip._ $Z "
      "AND $Z = '91001'");
  auto composed = ComposeQueryOverView(*query, "theView", *view);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();

  auto homes = xml::MakeHomesDoc(30, 4);
  auto schools = xml::MakeSchoolsDoc(30, 4);
  NavStats stats;
  EXPECT_EQ(RunComposed(*composed.value(), homes.get(), schools.get(), &stats),
            RunStacked(*query, *view, homes.get(), schools.get()));
}

TEST(ComposeTest, CrossingNonEmptyGroupPreservesOrder) {
  // Hand-built view whose groupBy{G} input has *interleaved* group keys
  // (union of two identical scans => each group's members are split
  // across the two halves). Unfolding out.reg.h crosses groupBy{G}, so
  // the composer must insert the occurrence-mode orderBy to reproduce the
  // flattened group order.
  auto chain = [] {
    return PlanNode::GetDescendants(
        PlanNode::GetDescendants(PlanNode::Source("regionsSrc", "R"), "R",
                                 "regions.region", "G"),
        "G", "home", "H");
  };
  PlanPtr stream = PlanNode::Union(chain(), chain());
  stream = PlanNode::WrapList(std::move(stream), "H", "W");
  stream = PlanNode::CreateElement(std::move(stream), true, "h", "W", "Vh");
  stream = PlanNode::GroupBy(std::move(stream), {"G"}, "Vh", "L");
  stream = PlanNode::CreateElement(std::move(stream), true, "reg", "L", "E");
  stream = PlanNode::GroupBy(std::move(stream), {}, "E", "L2");
  stream = PlanNode::CreateElement(std::move(stream), true, "out", "L2", "A");
  PlanPtr view = PlanNode::TupleDestroy(std::move(stream), "A");

  PlanPtr query = ParsePlan(
      "CONSTRUCT <hs> $X {$X} </hs> {} WHERE theView out.reg.h $X");
  auto composed = ComposeQueryOverView(*query, "theView", *view);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  // The crossing inserted the occurrence sort.
  EXPECT_NE(composed.value()->ToString().find("occurrence"),
            std::string::npos);

  auto regions = testing::Doc(
      "regions[region[home[h1],home[h2]],region[home[h3]],"
      "region[home[h4],home[h5]]]");
  xml::DocNavigable nav1(regions.get());
  SourceRegistry lower_sources;
  lower_sources.Register("regionsSrc", &nav1);
  auto lower = LazyMediator::Build(*view, lower_sources).ValueOrDie();
  SourceRegistry upper_sources;
  upper_sources.Register("theView", lower->document());
  auto upper = LazyMediator::Build(*query, upper_sources).ValueOrDie();
  std::string stacked = testing::MaterializeToTerm(upper->document());

  xml::DocNavigable nav2(regions.get());
  SourceRegistry flat_sources;
  flat_sources.Register("regionsSrc", &nav2);
  auto flat = LazyMediator::Build(*composed.value(), flat_sources).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(flat->document()), stacked);
  // Sanity: the union really interleaved the groups — region 1's cluster
  // is [h1,h2,h1,h2], so h2 (first half) is followed by h1 (second half).
  EXPECT_NE(stacked.find("h[home[h2]],h[home[h1]]"), std::string::npos);
}

TEST(ComposeTest, ComposedPlanUsesFewerSourceNavigations) {
  // The win: a selective query over the view, composed + rewritten, lets
  // the select sink across the former view boundary.
  PlanPtr view = ParsePlan(kViewText);
  PlanPtr query = ParsePlan(
      "CONSTRUCT <hits> $M {$M} </hits> {} "
      "WHERE theView answer.med_home $M AND $M home.zip._ $Z "
      "AND $Z = '91000'");
  auto composed = ComposeQueryOverView(*query, "theView", *view);
  ASSERT_TRUE(composed.ok());

  auto homes = xml::MakeHomesDoc(60, 6);
  auto schools = xml::MakeSchoolsDoc(60, 6);

  // Stacked cost: count at the base sources.
  NavStats stacked_stats;
  {
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    CountingNavigable hc(&homes_nav, &stacked_stats);
    CountingNavigable sc(&schools_nav, &stacked_stats);
    SourceRegistry lower_sources;
    lower_sources.Register("homesSrc", &hc);
    lower_sources.Register("schoolsSrc", &sc);
    auto lower = LazyMediator::Build(*view, lower_sources).ValueOrDie();
    SourceRegistry upper_sources;
    upper_sources.Register("theView", lower->document());
    auto upper = LazyMediator::Build(*query, upper_sources).ValueOrDie();
    testing::MaterializeToTerm(upper->document());
  }
  NavStats composed_stats;
  std::string composed_out = RunComposed(*composed.value(), homes.get(),
                                         schools.get(), &composed_stats);
  EXPECT_FALSE(composed_out.empty());
  EXPECT_LE(composed_stats.total(), stacked_stats.total());
}

TEST(ComposeTest, QueryWithoutTheViewIsUntouched) {
  PlanPtr view = ParsePlan(kViewText);
  PlanPtr query = ParsePlan(
      "CONSTRUCT <x> $A {$A} </x> {} WHERE other a.b $A");
  auto composed = ComposeQueryOverView(*query, "theView", *view);
  ASSERT_TRUE(composed.ok());
  EXPECT_EQ(composed.value()->ToString(), query->ToString());
}

TEST(ComposeTest, BailCases) {
  PlanPtr view = ParsePlan(kViewText);
  auto expect_bail = [&](const char* query_text, const char* why) {
    PlanPtr query = ParsePlan(query_text);
    auto composed = ComposeQueryOverView(*query, "theView", *view);
    EXPECT_FALSE(composed.ok()) << why;
    if (!composed.ok()) {
      EXPECT_EQ(composed.status().code(), Status::Code::kInvalidArgument)
          << why;
    }
  };
  // Wildcard path.
  expect_bail(
      "CONSTRUCT <x> $M {$M} </x> {} WHERE theView answer._ $M",
      "non-chain path");
  // Root-label mismatch.
  expect_bail(
      "CONSTRUCT <x> $M {$M} </x> {} WHERE theView wrong.med_home $M",
      "root mismatch");
  // Path to the root only.
  expect_bail("CONSTRUCT <x> $M {$M} </x> {} WHERE theView answer $M",
              "root-only path");
  // Descending into source-dependent content (med_home content is ANY).
  expect_bail(
      "CONSTRUCT <x> $M {$M} </x> {} "
      "WHERE theView answer.med_home.school $M",
      "ANY content");
}

}  // namespace
}  // namespace mix::mediator

namespace mix::mediator {
namespace {

TEST(ComposeTest, HandBuiltBailShapes) {
  using algebra::BindingPredicate;
  using algebra::CompareOp;

  // View whose root label is variable: bail.
  {
    PlanPtr stream = PlanNode::GetDescendants(PlanNode::Source("s", "R"), "R",
                                              "tag._", "T");
    stream = PlanNode::WrapList(std::move(stream), "T", "W");
    stream = PlanNode::CreateElement(std::move(stream),
                                     /*label_is_constant=*/false, "T", "W",
                                     "E");
    PlanPtr view = PlanNode::TupleDestroy(std::move(stream), "E");
    PlanPtr query = ParsePlan(
        "CONSTRUCT <x> $M {$M} </x> {} WHERE v a.b $M");
    auto composed = ComposeQueryOverView(*query, "v", *view);
    EXPECT_FALSE(composed.ok());
  }

  // View whose root is a raw source value (no createElement): bail.
  {
    PlanPtr view = PlanNode::TupleDestroy(
        PlanNode::GetDescendants(PlanNode::Source("s", "R"), "R", "a", "A"),
        "A");
    PlanPtr query = ParsePlan(
        "CONSTRUCT <x> $M {$M} </x> {} WHERE v a.b $M");
    auto composed = ComposeQueryOverView(*query, "v", *view);
    EXPECT_FALSE(composed.ok());
  }
}

TEST(ComposeTest, ViewSourceReferencedTwiceBails) {
  PlanPtr view = ParsePlan(kViewText);
  PlanPtr q = ParsePlan(
      "CONSTRUCT <x> $A {$A} </x> {} "
      "WHERE theView answer.med_home $M AND $M home $A");
  // Union of two copies of the stream: the view source appears twice.
  PlanPtr twice = PlanNode::TupleDestroy(
      PlanNode::Union(q->children[0]->Clone(), q->children[0]->Clone()),
      q->var);
  auto composed = ComposeQueryOverView(*twice, "theView", *view);
  ASSERT_FALSE(composed.ok());
  EXPECT_NE(composed.status().ToString().find("more than once"),
            std::string::npos);
}

}  // namespace
}  // namespace mix::mediator
