// PlanCache LRU behavior under concurrent Session::Open churn (runs under
// TSan in CI): 8 client threads opening distinct queries against a small
// cache must never lose entries, double-compile beyond capacity misses, or
// serve a wrong plan — every session's answer stays correct throughout.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/framed_document.h"
#include "service/service.h"
#include "service/session.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"

namespace mix::service {
namespace {

const char* kHomes =
    "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]]]";

/// Query #i constructs a distinct root label, so (a) every query is a
/// distinct plan-cache entry and (b) the served answer proves which plan
/// ran: the root label must match the query that opened the session.
std::string QueryFor(int i) {
  std::string label = "a" + std::to_string(i);
  return "CONSTRUCT <" + label + "> $H {$H} </" + label +
         "> {} WHERE homesSrc homes.home $H";
}

class ChurnFixture {
 public:
  ChurnFixture() : homes_(testing::Doc(kHomes)) {
    env_.RegisterWrapperFactory(
        "homesSrc",
        [this] {
          return std::make_unique<wrappers::XmlLxpWrapper>(homes_.get());
        },
        "homes.xml");
  }
  SessionEnvironment& env() { return env_; }

 private:
  std::unique_ptr<xml::Document> homes_;
  SessionEnvironment env_;
};

/// Opens query #i, checks the root label round-trips, closes. Returns
/// false on any mismatch or error.
bool OpenAndVerify(MediatorService* service, int i) {
  auto doc = client::FramedDocument::Open(service, QueryFor(i));
  if (!doc.ok()) return false;
  NodeId root = doc.value()->Root();
  bool ok = root.valid() &&
            doc.value()->Fetch(root) == "a" + std::to_string(i);
  return doc.value()->Close().ok() && ok;
}

TEST(PlanCacheChurnTest, AmpleCapacityCompilesEachQueryExactlyOnce) {
  constexpr int kDistinct = 16;
  constexpr int kThreads = 8;
  ChurnFixture fx;
  MediatorService::Options options;
  options.workers = 8;
  options.queue_capacity = 4096;
  options.plan_cache_entries = 64;  // capacity >= kDistinct
  MediatorService service(&fx.env(), options);

  // Serial warm pass: every query compiles exactly once.
  for (int i = 0; i < kDistinct; ++i) {
    ASSERT_TRUE(OpenAndVerify(&service, i)) << "query " << i;
  }
  ServiceMetricsSnapshot warm = service.Metrics();
  EXPECT_EQ(warm.plan_cache_misses, kDistinct);
  EXPECT_EQ(warm.plan_cache_hits, 0);

  // Concurrent churn over the warmed set: hits only — a lost entry or a
  // double compile would surface as extra misses.
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &bad, t] {
      for (int i = 0; i < kDistinct; ++i) {
        if (!OpenAndVerify(&service, (i + t) % kDistinct)) ++bad;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);

  ServiceMetricsSnapshot snap = service.Metrics();
  EXPECT_EQ(snap.plan_cache_misses, kDistinct)
      << "no double-compiles beyond the warm misses";
  EXPECT_EQ(snap.plan_cache_hits, int64_t{kThreads} * kDistinct)
      << "every post-warm open must hit";
  EXPECT_EQ(snap.sessions_opened, kDistinct + kThreads * kDistinct);
  EXPECT_EQ(service.plan_cache().stats().entries, kDistinct);
}

TEST(PlanCacheChurnTest, UndersizedCapacityChurnsWithoutCorruption) {
  constexpr int kDistinct = 24;
  constexpr int kCapacity = 8;
  constexpr int kThreads = 8;
  ChurnFixture fx;
  MediatorService::Options options;
  options.workers = 8;
  options.queue_capacity = 4096;
  options.plan_cache_entries = kCapacity;
  MediatorService service(&fx.env(), options);

  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &bad, t] {
      // Each thread walks the query set from its own offset, forcing
      // continuous LRU eviction below capacity.
      for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < kDistinct; ++i) {
          if (!OpenAndVerify(&service, (i + t * 3) % kDistinct)) ++bad;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0) << "every answer correct under churn";

  ServiceMetricsSnapshot snap = service.Metrics();
  const int64_t opens = int64_t{kThreads} * 3 * kDistinct;
  EXPECT_EQ(snap.plan_cache_hits + snap.plan_cache_misses, opens)
      << "every open is exactly one lookup";
  EXPECT_GE(snap.plan_cache_misses, kDistinct)
      << "each distinct query compiled at least once";
  EXPECT_EQ(snap.sessions_opened, opens);
  // LRU keeps the live entry count bounded by the configured capacity.
  EXPECT_LE(service.plan_cache().stats().entries, kCapacity);
  EXPECT_GT(service.plan_cache().stats().entries, 0);
}

}  // namespace
}  // namespace mix::service
