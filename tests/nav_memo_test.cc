// NavStats regression for the per-operator navigation memo: on the paper's
// E6 homes/schools plan, enabling the memo must never *increase* source
// navigations — caching can only remove navigations, never add them.
#include <gtest/gtest.h>

#include <string>

#include "algebra/get_descendants_op.h"
#include "algebra/nav_memo.h"
#include "algebra/source_op.h"
#include "core/navigable.h"
#include "mediator/instantiate.h"
#include "mediator/rewrite.h"
#include "mediator/translate.h"
#include "pathexpr/path_expr.h"
#include "test_util.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace mix {
namespace {

/// The Fig. 3 homes/schools query (the E6 plan after translation).
constexpr const char* kE6Query = R"(
CONSTRUCT <answer>
  <med_home> $H
    $S {$S}
  </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

struct E6Run {
  int64_t source_navs;
  std::string answer;
};

/// Builds the E6 plan over counting sources and materializes the answer
/// three times (pass 1 is the forward scan; passes 2 and 3 are client
/// revisits of already-issued handles). Returns total source navigations.
E6Run RunE6(size_t memo_capacity) {
  size_t saved = algebra::DefaultNavMemoCapacity();
  algebra::SetDefaultNavMemoCapacity(memo_capacity);

  auto query = xmas::ParseQuery(kE6Query).ValueOrDie();
  auto plan = mediator::TranslateQuery(query).ValueOrDie();
  mediator::RewriteOptions rewrite_options;
  rewrite_options.sigma_capable_sources = true;
  auto rewritten = plan->Clone();
  mediator::Rewrite(&rewritten, rewrite_options);

  auto homes = xml::MakeHomesDoc(60, 12);
  auto schools = xml::MakeSchoolsDoc(60, 12);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  NavStats homes_stats, schools_stats;
  CountingNavigable homes_counted(&homes_nav, &homes_stats);
  CountingNavigable schools_counted(&schools_nav, &schools_stats);

  mediator::SourceRegistry sources;
  sources.Register("homesSrc", &homes_counted);
  sources.Register("schoolsSrc", &schools_counted);
  auto med = mediator::LazyMediator::Build(*rewritten, sources).ValueOrDie();

  std::string answer;
  for (int pass = 0; pass < 3; ++pass) {
    auto full = xml::Materialize(med->document());
    std::string term = xml::ToTerm(full->root());
    if (pass == 0) {
      answer = term;
    } else {
      // Caching must be invisible in the answer.
      EXPECT_EQ(term, answer) << "pass " << pass << " diverged";
    }
  }

  algebra::SetDefaultNavMemoCapacity(saved);
  return {homes_stats.total() + schools_stats.total(), answer};
}

TEST(NavMemoRegressionTest, MemoNeverIncreasesSourceNavigationsOnE6) {
  E6Run with_memo = RunE6(1024);
  E6Run without_memo = RunE6(0);
  EXPECT_EQ(with_memo.answer, without_memo.answer);
  EXPECT_FALSE(with_memo.answer.empty());
  EXPECT_LE(with_memo.source_navs, without_memo.source_navs);
}

// A direct pin on the revisit path of one operator: re-asking NextBinding
// from an old binding is answered from the memo after its first recompute.
TEST(NavMemoRegressionTest, GetDescendantsRevisitHitsMemo) {
  auto doc = testing::Doc("r[a[1],a[2],a[3],a[4]]");

  auto run = [&doc](size_t capacity) {
    size_t saved = algebra::DefaultNavMemoCapacity();
    algebra::SetDefaultNavMemoCapacity(capacity);
    xml::DocNavigable nav(doc.get());
    NavStats stats;
    CountingNavigable counted(&nav, &stats);
    algebra::SourceOp source(&counted, "R");
    algebra::GetDescendantsOp gd(
        &source, "R", pathexpr::PathExpr::Parse("a").ValueOrDie(), "A");
    // Forward scan to the end.
    auto first = gd.FirstBinding();
    EXPECT_TRUE(first.has_value());
    for (auto b = first; b.has_value(); b = gd.NextBinding(*b)) {
    }
    // Two revisits of the oldest binding: the first may recompute (and
    // memoize), the second must not navigate at all when the memo is on.
    gd.NextBinding(*first);
    int64_t after_first_revisit = stats.total();
    gd.NextBinding(*first);
    int64_t after_second_revisit = stats.total();
    algebra::SetDefaultNavMemoCapacity(saved);
    return after_second_revisit - after_first_revisit;
  };

  EXPECT_EQ(run(1024), 0);
  EXPECT_GT(run(0), 0);
}

}  // namespace
}  // namespace mix
