#include <gtest/gtest.h>

#include "mediator/browsability.h"
#include "mediator/translate.h"
#include "xmas/parser.h"

namespace mix::mediator {
namespace {

using algebra::BindingPredicate;
using algebra::CompareOp;

BrowsabilityReport ClassifyPlan(const PlanNode& plan, bool sigma = false) {
  BrowsabilityOptions options;
  options.sigma_available = sigma;
  return Classify(plan, options);
}

// Example 1's q_conc: concatenation of first-level elements of two sources
// — pure structural operators — bounded browsable.
TEST(BrowsabilityTest, StructuralPlanIsBounded) {
  // Note: this plan is ill-typed for execution (union schemas differ) but
  // the classifier is purely syntactic; use same-var sources.
  PlanPtr s1 = PlanNode::Source("src1", "R");
  PlanPtr s2 = PlanNode::Source("src2", "R");
  PlanPtr plan = PlanNode::TupleDestroy(
      PlanNode::WrapList(PlanNode::Union(std::move(s1), std::move(s2)), "R",
                         "W"),
      "W");
  EXPECT_EQ(ClassifyPlan(*plan).cls, Browsability::kBoundedBrowsable);
}

TEST(BrowsabilityTest, LabelChainGetDescendantsDependsOnSigma) {
  PlanPtr plan = PlanNode::TupleDestroy(
      PlanNode::WrapList(
          PlanNode::GetDescendants(PlanNode::Source("s", "R"), "R",
                                   "homes.home", "H"),
          "H", "W"),
      "W");
  EXPECT_EQ(ClassifyPlan(*plan, /*sigma=*/false).cls,
            Browsability::kBrowsable);
  // With σ in the command set, the same view becomes bounded (Section 2).
  EXPECT_EQ(ClassifyPlan(*plan, /*sigma=*/true).cls,
            Browsability::kBoundedBrowsable);
}

TEST(BrowsabilityTest, WildcardPathNotUpgradedBySigma) {
  PlanPtr plan = PlanNode::TupleDestroy(
      PlanNode::WrapList(PlanNode::GetDescendants(PlanNode::Source("s", "R"),
                                                  "R", "_*.zip", "Z"),
                         "Z", "W"),
      "W");
  EXPECT_EQ(ClassifyPlan(*plan, /*sigma=*/true).cls, Browsability::kBrowsable);
}

TEST(BrowsabilityTest, SelectionIsBrowsable) {
  PlanPtr plan = PlanNode::TupleDestroy(
      PlanNode::WrapList(
          PlanNode::Select(PlanNode::GetDescendants(
                               PlanNode::Source("s", "R"), "R", "a", "A"),
                           BindingPredicate::VarConst("A", CompareOp::kEq,
                                                      "x")),
          "A", "W"),
      "W");
  auto report = ClassifyPlan(*plan, /*sigma=*/true);
  EXPECT_EQ(report.cls, Browsability::kBrowsable);
  ASSERT_FALSE(report.reasons.empty());
}

TEST(BrowsabilityTest, OrderByIsUnbrowsable) {
  // Example 1's third view: reorder by an arithmetic attribute.
  PlanPtr plan = PlanNode::TupleDestroy(
      PlanNode::WrapList(
          PlanNode::OrderBy(PlanNode::GetDescendants(
                                PlanNode::Source("s", "R"), "R", "age", "A"),
                            {"A"}),
          "A", "W"),
      "W");
  auto report = ClassifyPlan(*plan, /*sigma=*/true);
  EXPECT_EQ(report.cls, Browsability::kUnbrowsable);
}

TEST(BrowsabilityTest, DifferenceIsUnbrowsable) {
  PlanPtr l = PlanNode::Source("s1", "R");
  PlanPtr r = PlanNode::Source("s2", "R");
  PlanPtr plan = PlanNode::TupleDestroy(
      PlanNode::WrapList(PlanNode::Difference(std::move(l), std::move(r)),
                         "R", "W"),
      "W");
  EXPECT_EQ(ClassifyPlan(*plan).cls, Browsability::kUnbrowsable);
}

TEST(BrowsabilityTest, WorstOperatorDominates) {
  // join (browsable) + orderBy (unbrowsable) => unbrowsable, with both
  // reasons reported.
  PlanPtr l = PlanNode::GetDescendants(PlanNode::Source("s1", "R1"), "R1",
                                       "a.k", "K1");
  PlanPtr r = PlanNode::GetDescendants(PlanNode::Source("s2", "R2"), "R2",
                                       "b.k", "K2");
  PlanPtr plan = PlanNode::TupleDestroy(
      PlanNode::WrapList(
          PlanNode::OrderBy(
              PlanNode::Join(std::move(l), std::move(r),
                             BindingPredicate::VarVar("K1", CompareOp::kEq,
                                                      "K2")),
              {"K1"}),
          "K1", "W"),
      "W");
  auto report = ClassifyPlan(*plan, /*sigma=*/true);
  EXPECT_EQ(report.cls, Browsability::kUnbrowsable);
  EXPECT_GE(report.reasons.size(), 2u);
}

TEST(BrowsabilityTest, Fig3PlanIsBrowsable) {
  auto q = xmas::ParseQuery(
      "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} "
      "</answer> {} "
      "WHERE homesSrc homes.home $H AND $H zip._ $V1 "
      "AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2");
  auto plan = TranslateQuery(q.value()).ValueOrDie();
  auto report = ClassifyPlan(*plan, /*sigma=*/true);
  // join + groupBy keep it (unbounded) browsable but never unbrowsable.
  EXPECT_EQ(report.cls, Browsability::kBrowsable);
}

TEST(BrowsabilityTest, Names) {
  EXPECT_STREQ(BrowsabilityName(Browsability::kBoundedBrowsable),
               "bounded browsable");
  EXPECT_STREQ(BrowsabilityName(Browsability::kBrowsable), "browsable");
  EXPECT_STREQ(BrowsabilityName(Browsability::kUnbrowsable), "unbrowsable");
}

}  // namespace
}  // namespace mix::mediator
