#include <gtest/gtest.h>

#include "mediator/instantiate.h"
#include "mediator/reference_eval.h"
#include "mediator/rewrite.h"
#include "mediator/translate.h"
#include "test_util.h"
#include "xmas/parser.h"
#include "xml/random_tree.h"
#include "xml/doc_navigable.h"

namespace mix::mediator {
namespace {

using algebra::BindingPredicate;
using algebra::CompareOp;

PlanPtr Translate(const std::string& text) {
  auto q = xmas::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto plan = TranslateQuery(q.value());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).ValueOrDie();
}

int CountSigma(const PlanNode& n) {
  int c = n.kind == PlanNode::Kind::kGetDescendants && n.use_sigma ? 1 : 0;
  for (const PlanPtr& child : n.children) c += CountSigma(*child);
  return c;
}

TEST(RewriteTest, SigmaEnabledOnLabelChains) {
  PlanPtr plan = Translate(
      "CONSTRUCT <a> $H {$H} </a> {} "
      "WHERE src homes.home $H AND $H zip._ $V");
  RewriteOptions options;
  options.sigma_capable_sources = true;
  RewriteStats stats = Rewrite(&plan, options);
  // homes.home is a chain; zip._ is not.
  EXPECT_EQ(stats.sigma_enabled, 1);
  EXPECT_EQ(CountSigma(*plan), 1);
}

TEST(RewriteTest, SigmaNotEnabledWithoutCapableSources) {
  PlanPtr plan = Translate(
      "CONSTRUCT <a> $H {$H} </a> {} WHERE src homes.home $H");
  RewriteStats stats = Rewrite(&plan, RewriteOptions{});
  EXPECT_EQ(stats.sigma_enabled, 0);
}

TEST(RewriteTest, SelectPushedBelowJoin) {
  // Build select(join(...)) by hand.
  PlanPtr left = PlanNode::GetDescendants(PlanNode::Source("s1", "R1"), "R1",
                                          "a.k", "K1");
  PlanPtr right = PlanNode::GetDescendants(PlanNode::Source("s2", "R2"), "R2",
                                           "b.k", "K2");
  PlanPtr join =
      PlanNode::Join(std::move(left), std::move(right),
                     BindingPredicate::VarVar("K1", CompareOp::kEq, "K2"));
  PlanPtr plan = PlanNode::Select(
      std::move(join), BindingPredicate::VarConst("K1", CompareOp::kGt, "5"));

  RewriteStats stats = Rewrite(&plan, RewriteOptions{});
  EXPECT_GE(stats.selects_pushed, 1);
  // The root is now the join; the select sits on the left side.
  EXPECT_EQ(plan->kind, PlanNode::Kind::kJoin);
  EXPECT_EQ(plan->children[0]->kind, PlanNode::Kind::kSelect);
}

TEST(RewriteTest, SelectPushedBelowGetDescendants) {
  PlanPtr gd1 = PlanNode::GetDescendants(PlanNode::Source("s", "R"), "R",
                                         "a.k", "K");
  PlanPtr gd2 =
      PlanNode::GetDescendants(std::move(gd1), "K", "v._", "V");
  PlanPtr plan = PlanNode::Select(
      std::move(gd2), BindingPredicate::VarConst("K", CompareOp::kEq, "x"));

  RewriteStats stats = Rewrite(&plan, RewriteOptions{});
  // The predicate mentions K but not V: it can sink below the V extraction
  // (but not below K's own extraction).
  EXPECT_EQ(stats.selects_pushed, 1);
  EXPECT_EQ(plan->kind, PlanNode::Kind::kGetDescendants);
  EXPECT_EQ(plan->out_var, "V");
  EXPECT_EQ(plan->children[0]->kind, PlanNode::Kind::kSelect);
}

TEST(RewriteTest, SelectPushedBelowGroupByOnGroupVars) {
  PlanPtr gd = PlanNode::GetDescendants(PlanNode::Source("s", "R"), "R", "a",
                                        "A");
  PlanPtr gd2 = PlanNode::GetDescendants(std::move(gd), "A", "v._", "V");
  PlanPtr gb = PlanNode::GroupBy(std::move(gd2), {"A"}, "V", "L");
  PlanPtr plan = PlanNode::Select(
      std::move(gb), BindingPredicate::VarConst("A", CompareOp::kNe, "z"));

  RewriteStats stats = Rewrite(&plan, RewriteOptions{});
  // Sinks below the groupBy *and* below the V extraction, stopping at A's
  // own extraction.
  EXPECT_EQ(stats.selects_pushed, 2);
  EXPECT_EQ(plan->kind, PlanNode::Kind::kGroupBy);
  EXPECT_EQ(plan->children[0]->kind, PlanNode::Kind::kGetDescendants);
  EXPECT_EQ(plan->children[0]->children[0]->kind, PlanNode::Kind::kSelect);
}

TEST(RewriteTest, SelectNotPushedWhenListVarInvolved) {
  PlanPtr gd = PlanNode::GetDescendants(PlanNode::Source("s", "R"), "R", "a",
                                        "A");
  PlanPtr plan = PlanNode::Select(
      std::move(gd), BindingPredicate::VarConst("A", CompareOp::kEq, "x"));
  // Predicate uses the getDescendants output: no pushdown possible.
  RewriteStats stats = Rewrite(&plan, RewriteOptions{});
  EXPECT_EQ(stats.selects_pushed, 0);
  EXPECT_EQ(plan->kind, PlanNode::Kind::kSelect);
}

TEST(RewriteTest, RedundantProjectRemoved) {
  PlanPtr gd = PlanNode::GetDescendants(PlanNode::Source("s", "R"), "R", "a",
                                        "A");
  PlanPtr plan = PlanNode::Project(std::move(gd), {"R", "A"});
  RewriteStats stats = Rewrite(&plan, RewriteOptions{});
  EXPECT_EQ(stats.projects_removed, 1);
  EXPECT_EQ(plan->kind, PlanNode::Kind::kGetDescendants);
}

TEST(RewriteTest, NarrowingProjectKept) {
  PlanPtr gd = PlanNode::GetDescendants(PlanNode::Source("s", "R"), "R", "a",
                                        "A");
  PlanPtr plan = PlanNode::Project(std::move(gd), {"A"});
  RewriteStats stats = Rewrite(&plan, RewriteOptions{});
  EXPECT_EQ(stats.projects_removed, 0);
  EXPECT_EQ(plan->kind, PlanNode::Kind::kProject);
}

TEST(RewriteTest, RewrittenPlanIsEquivalent) {
  const char* query =
      "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} "
      "</answer> {} "
      "WHERE homesSrc homes.home $H AND $H zip._ $V1 "
      "AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2";
  PlanPtr plan = Translate(query);
  PlanPtr rewritten = plan->Clone();
  RewriteOptions options;
  options.sigma_capable_sources = true;
  Rewrite(&rewritten, options);

  auto homes = xml::MakeHomesDoc(15, 3);
  auto schools = xml::MakeSchoolsDoc(15, 3);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  SourceRegistry sources;
  sources.Register("homesSrc", &homes_nav);
  sources.Register("schoolsSrc", &schools_nav);

  auto before = LazyMediator::Build(*plan, sources).ValueOrDie();
  auto after = LazyMediator::Build(*rewritten, sources).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(before->document()),
            testing::MaterializeToTerm(after->document()));
}

TEST(RewriteTest, StatsToString) {
  RewriteStats stats;
  stats.sigma_enabled = 2;
  stats.selects_pushed = 1;
  EXPECT_NE(stats.ToString().find("sigma_enabled=2"), std::string::npos);
  EXPECT_EQ(stats.total(), 3);
}

TEST(RewriteTest, CloneIsDeepAndEqualRendering) {
  PlanPtr plan = Translate(
      "CONSTRUCT <a> $H {$H} </a> {} WHERE src homes.home $H");
  PlanPtr clone = plan->Clone();
  EXPECT_EQ(plan->ToString(), clone->ToString());
  clone->children[0]->label = "changed";
  EXPECT_NE(plan->ToString(), clone->ToString());
}

}  // namespace
}  // namespace mix::mediator
