#include <gtest/gtest.h>

#include "algebra/get_descendants_op.h"
#include "algebra/order_by_op.h"
#include "algebra/source_op.h"
#include "test_util.h"
#include "xml/doc_navigable.h"

namespace mix::algebra {
namespace {

using pathexpr::PathExpr;

struct Fixture {
  explicit Fixture(const std::string& term)
      : doc(testing::Doc(term)),
        nav(doc.get()),
        counting(&nav, &stats),
        source(&counting, "R"),
        people(&source, "R", PathExpr::Parse("person").ValueOrDie(), "P"),
        ages(&people, "P", PathExpr::Parse("age._").ValueOrDie(), "A") {}

  std::unique_ptr<xml::Document> doc;
  xml::DocNavigable nav;
  NavStats stats;
  CountingNavigable counting;
  SourceOp source;
  GetDescendantsOp people;
  GetDescendantsOp ages;
};

const char* kPeople =
    "people[person[name[bob],age[30]],person[name[amy],age[9]],"
    "person[name[cy],age[120]]]";

TEST(OrderByTest, NumericOrdering) {
  // Example 1's unbrowsable view: reorder by the arithmetic attribute age.
  Fixture f(kPeople);
  OrderByOp ordered(&f.ages, {"A"});
  std::vector<std::string> ages;
  for (auto b = ordered.FirstBinding(); b.has_value();
       b = ordered.NextBinding(*b)) {
    ages.push_back(AtomOf(ordered.Attr(*b, "A")));
  }
  // Numeric: 9 < 30 < 120 (lexicographic would give 120 < 30 < 9).
  EXPECT_EQ(ages, (std::vector<std::string>{"9", "30", "120"}));
}

TEST(OrderByTest, SchemaUnchanged) {
  Fixture f(kPeople);
  OrderByOp ordered(&f.ages, {"A"});
  EXPECT_EQ(ordered.schema(), f.ages.schema());
  auto b = ordered.FirstBinding();
  EXPECT_EQ(TermOfValue(ordered.Attr(*b, "P")), "person[name[amy],age[9]]");
}

TEST(OrderByTest, FirstNavigationDrainsInput) {
  // The unbrowsable signature: even the *first* output binding costs a
  // full scan of the input.
  Fixture f(kPeople);
  OrderByOp ordered(&f.ages, {"A"});
  EXPECT_EQ(f.stats.total(), 0);
  ordered.FirstBinding();
  int64_t after_first = f.stats.total();
  // All three persons (and their ages) were visited for the first result.
  EXPECT_GT(after_first, 10);
  // Subsequent bindings come from the materialized order: no new source
  // navigation for the binding scan itself.
  auto b = ordered.FirstBinding();
  ordered.NextBinding(*b);
  EXPECT_EQ(f.stats.total(), after_first);
}

TEST(OrderByTest, StableForEqualKeys) {
  Fixture f(
      "people[person[name[a],age[5]],person[name[b],age[5]],"
      "person[name[c],age[1]]]");
  OrderByOp ordered(&f.ages, {"A"});
  std::vector<std::string> names;
  for (auto b = ordered.FirstBinding(); b.has_value();
       b = ordered.NextBinding(*b)) {
    names.push_back(TermOfValue(ordered.Attr(*b, "P")));
  }
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "person[name[c],age[1]]");
  EXPECT_EQ(names[1], "person[name[a],age[5]]");  // input order preserved
  EXPECT_EQ(names[2], "person[name[b],age[5]]");
}

TEST(OrderByTest, MultiKeyOrdering) {
  Fixture f(
      "people[person[name[x],age[5]],person[name[y],age[5]],"
      "person[name[z],age[3]]]");
  GetDescendantsOp names(&f.ages, "P", PathExpr::Parse("name._").ValueOrDie(),
                         "N");
  OrderByOp ordered(&names, {"A", "N"});
  std::vector<std::string> out;
  for (auto b = ordered.FirstBinding(); b.has_value();
       b = ordered.NextBinding(*b)) {
    out.push_back(AtomOf(ordered.Attr(*b, "N")));
  }
  EXPECT_EQ(out, (std::vector<std::string>{"z", "x", "y"}));
}

TEST(OrderByTest, EmptyInput) {
  Fixture f("people[nobody]");
  OrderByOp ordered(&f.ages, {"A"});
  EXPECT_FALSE(ordered.FirstBinding().has_value());
}

}  // namespace
}  // namespace mix::algebra

namespace mix::algebra {
namespace {

TEST(OrderByOccurrenceTest, ClustersByFirstOccurrence) {
  // Input order of P values: p1, p2, p1, p3, p2 — occurrence mode clusters
  // all p1 bindings first, then p2, then p3 (the paper's "according to the
  // occurrence of bindings bin.x in the input").
  auto doc = testing::Doc("d[p1,p2,p3,a,b,c,d,e]");
  xml::DocNavigable nav(doc.get());
  auto node = [&](int i) {
    return testing::RefTo(&nav, doc->root()->children[static_cast<size_t>(i)]);
  };
  testing::VectorBindingStream in(
      VarList{"P", "V"},
      {{node(0), node(3)},
       {node(1), node(4)},
       {node(0), node(5)},
       {node(2), node(6)},
       {node(1), node(7)}});
  OrderByOp ordered(&in, {"P"}, OrderByOp::Mode::kByOccurrence);
  std::vector<std::string> out;
  for (auto b = ordered.FirstBinding(); b.has_value();
       b = ordered.NextBinding(*b)) {
    out.push_back(AtomOf(ordered.Attr(*b, "P")) + ":" +
                  AtomOf(ordered.Attr(*b, "V")));
  }
  EXPECT_EQ(out, (std::vector<std::string>{"p1:a", "p1:c", "p2:b", "p2:e",
                                           "p3:d"}));
}

TEST(OrderByOccurrenceTest, IdentityNotValueClustering) {
  // Two distinct nodes with equal labels are distinct occurrences.
  auto doc = testing::Doc("d[k,k,x,y,z]");
  xml::DocNavigable nav(doc.get());
  auto node = [&](int i) {
    return testing::RefTo(&nav, doc->root()->children[static_cast<size_t>(i)]);
  };
  testing::VectorBindingStream in(
      VarList{"K", "V"},
      {{node(0), node(2)}, {node(1), node(3)}, {node(0), node(4)}});
  OrderByOp ordered(&in, {"K"}, OrderByOp::Mode::kByOccurrence);
  std::vector<std::string> out;
  for (auto b = ordered.FirstBinding(); b.has_value();
       b = ordered.NextBinding(*b)) {
    out.push_back(AtomOf(ordered.Attr(*b, "V")));
  }
  // node(0)'s bindings cluster (x, z), node(1)'s stays between.
  EXPECT_EQ(out, (std::vector<std::string>{"x", "z", "y"}));
}

}  // namespace
}  // namespace mix::algebra
