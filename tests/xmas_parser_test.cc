#include <gtest/gtest.h>

#include "xmas/parser.h"

namespace mix::xmas {
namespace {

/// The Fig. 3 query, verbatim (including the paper's % comments).
const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H          % ... med_home elements followed by
    $S {$S}              % ... school elements (one for each $S)
  </med_home> {$H}       % (one med_home element for each $H)
</answer> {}             % create one answer element (= for each {})
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

TEST(XmasParserTest, Fig3QueryParses) {
  Query q = ParseQuery(kFig3).ValueOrDie();
  ASSERT_EQ(q.conditions.size(), 5u);

  EXPECT_EQ(q.conditions[0].kind, Condition::Kind::kSourcePath);
  EXPECT_EQ(q.conditions[0].source, "homesSrc");
  EXPECT_EQ(q.conditions[0].path, "homes.home");
  EXPECT_EQ(q.conditions[0].out_var, "H");

  EXPECT_EQ(q.conditions[1].kind, Condition::Kind::kVarPath);
  EXPECT_EQ(q.conditions[1].src_var, "H");
  EXPECT_EQ(q.conditions[1].path, "zip._");
  EXPECT_EQ(q.conditions[1].out_var, "V1");

  EXPECT_EQ(q.conditions[4].kind, Condition::Kind::kCompare);
  EXPECT_EQ(q.conditions[4].left_var, "V1");
  EXPECT_EQ(q.conditions[4].op, algebra::CompareOp::kEq);
  EXPECT_TRUE(q.conditions[4].right_is_var);
  EXPECT_EQ(q.conditions[4].right, "V2");

  EXPECT_EQ(q.SourceNames(),
            (std::vector<std::string>{"homesSrc", "schoolsSrc"}));
}

TEST(XmasParserTest, Fig3HeadShape) {
  Query q = ParseQuery(kFig3).ValueOrDie();
  const HeadNode& answer = *q.head;
  EXPECT_EQ(answer.kind, HeadNode::Kind::kElement);
  EXPECT_EQ(answer.label, "answer");
  ASSERT_TRUE(answer.group.has_value());
  EXPECT_TRUE(answer.group->empty());  // {}

  ASSERT_EQ(answer.children.size(), 1u);
  const HeadNode& med_home = *answer.children[0];
  EXPECT_EQ(med_home.label, "med_home");
  ASSERT_TRUE(med_home.group.has_value());
  EXPECT_EQ(*med_home.group, (std::vector<std::string>{"H"}));

  ASSERT_EQ(med_home.children.size(), 2u);
  EXPECT_EQ(med_home.children[0]->kind, HeadNode::Kind::kVar);
  EXPECT_EQ(med_home.children[0]->var, "H");
  EXPECT_FALSE(med_home.children[0]->group.has_value());  // scalar
  EXPECT_EQ(med_home.children[1]->var, "S");
  EXPECT_EQ(*med_home.children[1]->group, (std::vector<std::string>{"S"}));
}

TEST(XmasParserTest, PrintParseFixpoint) {
  Query q = ParseQuery(kFig3).ValueOrDie();
  std::string printed = q.ToString();
  Query q2 = ParseQuery(printed).ValueOrDie();
  EXPECT_EQ(q2.ToString(), printed);
}

TEST(XmasParserTest, ComparisonOperators) {
  const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
  algebra::CompareOp expected[] = {
      algebra::CompareOp::kEq, algebra::CompareOp::kNe, algebra::CompareOp::kLt,
      algebra::CompareOp::kLe, algebra::CompareOp::kGt, algebra::CompareOp::kGe};
  for (int i = 0; i < 6; ++i) {
    std::string text = std::string("CONSTRUCT <a> $X </a> {} WHERE s p $X AND $X ") +
                       ops[i] + " 5";
    Query q = ParseQuery(text).ValueOrDie();
    ASSERT_EQ(q.conditions.size(), 2u) << ops[i];
    EXPECT_EQ(q.conditions[1].op, expected[i]);
    EXPECT_FALSE(q.conditions[1].right_is_var);
    EXPECT_EQ(q.conditions[1].right, "5");
  }
}

TEST(XmasParserTest, AngleBracketOperatorVsTagDisambiguation) {
  // `<>` inside WHERE is not a tag.
  Query q = ParseQuery("CONSTRUCT <a> $X </a> {} WHERE s p $X AND $X <> 'y'")
                .ValueOrDie();
  EXPECT_EQ(q.conditions[1].op, algebra::CompareOp::kNe);
}

TEST(XmasParserTest, QuotedLiteralsAndNestedElements) {
  Query q = ParseQuery(
                "CONSTRUCT <out> <label> 'price:' $P </label> {$P} </out> {} "
                "WHERE src items.item.price._ $P")
                .ValueOrDie();
  const HeadNode& label = *q.head->children[0];
  EXPECT_EQ(label.children[0]->kind, HeadNode::Kind::kText);
  EXPECT_EQ(label.children[0]->label, "price:");
  EXPECT_EQ(q.conditions[0].path, "items.item.price._");
}

TEST(XmasParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(
      ParseQuery("construct <a> $X </a> {} where s p $X").ok());
}

TEST(XmasParserTest, GroupAnnotationVariants) {
  Query q = ParseQuery(
                "CONSTRUCT <a> <b> $X {$X,$Y} </b> {$Y} </a> {} "
                "WHERE s p $X AND s q $Y")
                .ValueOrDie();
  EXPECT_EQ(*q.head->children[0]->children[0]->group,
            (std::vector<std::string>{"X", "Y"}));
}

TEST(XmasParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("WHERE s p $X").ok());
  EXPECT_FALSE(ParseQuery("CONSTRUCT <a> $X </a> {}").ok());  // no WHERE
  EXPECT_FALSE(
      ParseQuery("CONSTRUCT <a> $X </b> {} WHERE s p $X").ok());  // mismatch
  EXPECT_FALSE(
      ParseQuery("CONSTRUCT <a> $X </a> {} WHERE s p").ok());  // no out var
  EXPECT_FALSE(ParseQuery("CONSTRUCT <a> $X </a> {} WHERE s p $X AND").ok());
  EXPECT_FALSE(
      ParseQuery("CONSTRUCT <a> $X {$} </a> {} WHERE s p $X").ok());
}

TEST(XmasParserTest, ConditionToString) {
  Query q = ParseQuery(kFig3).ValueOrDie();
  EXPECT_EQ(q.conditions[0].ToString(), "homesSrc homes.home $H");
  EXPECT_EQ(q.conditions[1].ToString(), "$H zip._ $V1");
  EXPECT_EQ(q.conditions[4].ToString(), "$V1 = $V2");
}

}  // namespace
}  // namespace mix::xmas
