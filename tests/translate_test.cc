#include <gtest/gtest.h>

#include "mediator/translate.h"
#include "xmas/parser.h"

namespace mix::mediator {
namespace {

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

PlanPtr Translate(const std::string& text) {
  auto q = xmas::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto plan = TranslateQuery(q.value());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).ValueOrDie();
}

/// Collects operator kinds along the left spine (child 0 chain).
std::vector<PlanNode::Kind> Spine(const PlanNode& root) {
  std::vector<PlanNode::Kind> kinds;
  for (const PlanNode* n = &root;; n = n->children[0].get()) {
    kinds.push_back(n->kind);
    if (n->children.empty()) break;
  }
  return kinds;
}

TEST(TranslateTest, Fig3ProducesFig4PlanShape) {
  PlanPtr plan = Translate(kFig3);
  using K = PlanNode::Kind;
  // Fig. 4 top-down: tupleDestroy, createElement(answer), groupBy{},
  // createElement(med_home), concatenate, groupBy{H}, join, then the two
  // getDescendants/source chains.
  EXPECT_EQ(Spine(*plan),
            (std::vector<K>{K::kTupleDestroy, K::kCreateElement, K::kGroupBy,
                            K::kCreateElement, K::kConcatenate, K::kGroupBy,
                            K::kJoin, K::kGetDescendants, K::kGetDescendants,
                            K::kSource}));

  // Check key parameters along the way.
  const PlanNode* ce_answer = plan->children[0].get();
  EXPECT_EQ(ce_answer->label, "answer");
  const PlanNode* gb_all = ce_answer->children[0].get();
  EXPECT_TRUE(gb_all->vars.empty());  // groupBy{}
  const PlanNode* ce_mh = gb_all->children[0].get();
  EXPECT_EQ(ce_mh->label, "med_home");
  const PlanNode* concat = ce_mh->children[0].get();
  EXPECT_EQ(concat->x_var, "H");
  const PlanNode* gb_h = concat->children[0].get();
  EXPECT_EQ(gb_h->vars, (algebra::VarList{"H"}));
  EXPECT_EQ(gb_h->grouped_var, "S");

  const PlanNode* join = gb_h->children[0].get();
  ASSERT_EQ(join->children.size(), 2u);
  EXPECT_EQ(join->predicate->ToString(), "$V1=$V2");

  // Both join inputs are getDescendants chains ending in a source.
  const PlanNode* left = join->children[0].get();
  EXPECT_EQ(left->kind, PlanNode::Kind::kGetDescendants);
  EXPECT_EQ(left->path, "zip._");
  EXPECT_EQ(left->children[0]->path, "homes.home");
  EXPECT_EQ(left->children[0]->children[0]->source_name, "homesSrc");
  const PlanNode* right = join->children[1].get();
  EXPECT_EQ(right->children[0]->children[0]->source_name, "schoolsSrc");
}

TEST(TranslateTest, SchemaOfFig3StreamValidates) {
  PlanPtr plan = Translate(kFig3);
  auto schema = ComputeSchema(*plan->children[0]);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  // Final stream holds only the answer element variable (plus nothing else
  // surviving groupBy{}).
  EXPECT_EQ(schema.value().back(), plan->var);
}

TEST(TranslateTest, PlanPrints) {
  PlanPtr plan = Translate(kFig3);
  std::string s = plan->ToString();
  EXPECT_NE(s.find("tupleDestroy"), std::string::npos);
  EXPECT_NE(s.find("createElement[answer"), std::string::npos);
  EXPECT_NE(s.find("join[$V1=$V2]"), std::string::npos);
  EXPECT_NE(s.find("source[homesSrc -> $#root_homesSrc]"), std::string::npos);
}

TEST(TranslateTest, VarConstSelection) {
  PlanPtr plan = Translate(
      "CONSTRUCT <out> $H {$H} </out> {} "
      "WHERE src homes.home $H AND $H zip._ $V AND $V = '91220'");
  std::string s = plan->ToString();
  EXPECT_NE(s.find("select[$V='91220']"), std::string::npos);
}

TEST(TranslateTest, ScalarOnlyElementGetsCollapseGroupBy) {
  // <out>$H</out>{$H}: one out element per distinct H requires a collapse.
  PlanPtr plan = Translate(
      "CONSTRUCT <answer> <out> $H </out> {$H} </answer> {} "
      "WHERE src homes.home $H");
  auto schema = ComputeSchema(*plan->children[0]);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  std::string s = plan->ToString();
  // Two groupBys: the collapse for {$H} and the outer {} grouping.
  EXPECT_NE(s.find("groupBy[{$H}"), std::string::npos);
  EXPECT_NE(s.find("groupBy[{}"), std::string::npos);
  EXPECT_NE(s.find("wrapList[$H"), std::string::npos);
}

TEST(TranslateTest, LiteralTextBecomesConst) {
  PlanPtr plan = Translate(
      "CONSTRUCT <answer> <p> 'price' $V </p> {$V} </answer> {} "
      "WHERE src a.b $V");
  std::string s = plan->ToString();
  EXPECT_NE(s.find("const['price'"), std::string::npos);
  EXPECT_NE(s.find("concatenate"), std::string::npos);
}

TEST(TranslateTest, OutOfOrderConditionsResolve) {
  // $H referenced before its binding condition appears.
  PlanPtr plan = Translate(
      "CONSTRUCT <a> $V {$V} </a> {} "
      "WHERE $H zip._ $V AND src homes.home $H");
  auto schema = ComputeSchema(*plan->children[0]);
  EXPECT_TRUE(schema.ok());
}

TEST(TranslateTest, ErrorOnCrossProduct) {
  auto q = xmas::ParseQuery(
      "CONSTRUCT <a> $X {$X} </a> {} WHERE s1 p $X AND s2 q $Y");
  auto plan = TranslateQuery(q.value());
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), Status::Code::kUnimplemented);
}

TEST(TranslateTest, ErrorOnDoubleBinding) {
  auto q = xmas::ParseQuery(
      "CONSTRUCT <a> $X {$X} </a> {} WHERE s p $X AND s q $X");
  auto plan = TranslateQuery(q.value());
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().ToString().find("bound twice"), std::string::npos);
}

TEST(TranslateTest, ErrorOnUnboundConditionVar) {
  auto q = xmas::ParseQuery(
      "CONSTRUCT <a> $X {$X} </a> {} WHERE s p $X AND $Z q $W");
  auto plan = TranslateQuery(q.value());
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().ToString().find("unbound"), std::string::npos);
}

TEST(TranslateTest, ErrorOnMissingRootAnnotation) {
  auto q = xmas::ParseQuery("CONSTRUCT <a> $X {$X} </a> WHERE s p $X");
  auto plan = TranslateQuery(q.value());
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().ToString().find("{}"), std::string::npos);
}

TEST(TranslateTest, ErrorOnTwoGroupedChildren) {
  auto q = xmas::ParseQuery(
      "CONSTRUCT <a> $X {$X} $Y {$Y} </a> {} "
      "WHERE s p $X AND $X q $Y");
  auto plan = TranslateQuery(q.value());
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), Status::Code::kUnimplemented);
}

TEST(TranslateTest, ErrorOnScalarOutsideContext) {
  // $V2 is not part of the grouping context of <a>'s children.
  auto q = xmas::ParseQuery(
      "CONSTRUCT <answer> <a> $V2 $X {$X} </a> {} </answer> {} "
      "WHERE s p $X AND $X q $V2");
  auto plan = TranslateQuery(q.value());
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().ToString().find("no longer"), std::string::npos);
}

TEST(TranslateTest, NestedScalarElements) {
  PlanPtr plan = Translate(
      "CONSTRUCT <answer> <card> <name> $H </name> </card> {$H} </answer> {} "
      "WHERE src homes.home $H");
  auto schema = ComputeSchema(*plan->children[0]);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  std::string s = plan->ToString();
  EXPECT_NE(s.find("createElement[name"), std::string::npos);
  EXPECT_NE(s.find("createElement[card"), std::string::npos);
}

}  // namespace
}  // namespace mix::mediator
