// "Intermediate eager steps" (paper Section 6): materialize operator,
// hash-indexed join, and groupBy's Fig. 10 input-enumeration cache.
#include <gtest/gtest.h>

#include "algebra/get_descendants_op.h"
#include "algebra/group_by_op.h"
#include "algebra/join_op.h"
#include "algebra/materialize_op.h"
#include "algebra/nav_memo.h"
#include "algebra/source_op.h"
#include "mediator/browsability.h"
#include "mediator/instantiate.h"
#include "test_util.h"
#include "xml/doc_navigable.h"
#include "xml/random_tree.h"

namespace mix::algebra {
namespace {

using pathexpr::PathExpr;

struct Chain {
  Chain(const xml::Document* doc, const std::string& elem, const char* var,
        const std::string& leaf, const char* leaf_var)
      : nav(doc),
        counted(&nav, &stats),
        source(&counted, std::string("#r") + var),
        elems(&source, std::string("#r") + var,
              PathExpr::Parse(elem).ValueOrDie(), var),
        leafs(&elems, var, PathExpr::Parse(leaf).ValueOrDie(), leaf_var) {}

  NavStats stats;
  xml::DocNavigable nav;
  CountingNavigable counted;
  SourceOp source;
  GetDescendantsOp elems;
  GetDescendantsOp leafs;
};

// ---------------------------------------------------------------------------
// MaterializeOp
// ---------------------------------------------------------------------------

TEST(MaterializeOpTest, IdentitySemantics) {
  auto doc = testing::Doc("r[n[1],n[2],n[3]]");
  Chain c(doc.get(), "n", "N", "_", "V");
  MaterializeOp mz(&c.leafs);
  EXPECT_EQ(mz.schema(), c.leafs.schema());
  EXPECT_EQ(testing::StreamToTerm(&mz),
            "bs[b[#rN[r[n[1],n[2],n[3]]],N[n[1]],V[1]],"
            "b[#rN[r[n[1],n[2],n[3]]],N[n[2]],V[2]],"
            "b[#rN[r[n[1],n[2],n[3]]],N[n[3]],V[3]]]");
}

TEST(MaterializeOpTest, LazyUntilFirstAccessThenDrainsOnce) {
  auto doc = testing::Doc("r[n[1],n[2],n[3]]");
  Chain c(doc.get(), "n", "N", "_", "V");
  MaterializeOp mz(&c.leafs);
  // Construction is free.
  EXPECT_FALSE(mz.materialized());
  EXPECT_EQ(c.stats.total(), 0);
  // First access drains the input completely...
  auto b = mz.FirstBinding();
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(mz.materialized());
  EXPECT_EQ(mz.binding_count(), 3);
  int64_t after_drain = c.stats.total();
  EXPECT_GT(after_drain, 0);
  // ...and iteration afterwards re-navigates nothing.
  int count = 0;
  for (auto it = mz.FirstBinding(); it.has_value();
       it = mz.NextBinding(*it)) {
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_EQ(c.stats.total(), after_drain);
}

TEST(MaterializeOpTest, EmptyInput) {
  auto doc = testing::Doc("r[x]");
  Chain c(doc.get(), "nothing", "N", "_", "V");
  MaterializeOp mz(&c.leafs);
  EXPECT_FALSE(mz.FirstBinding().has_value());
}

TEST(MaterializeOpTest, ClassifiedUnbrowsable) {
  auto plan = mediator::PlanNode::TupleDestroy(
      mediator::PlanNode::WrapList(
          mediator::PlanNode::Materialize(mediator::PlanNode::GetDescendants(
              mediator::PlanNode::Source("s", "R"), "R", "a", "A")),
          "A", "W"),
      "W");
  auto report = mediator::Classify(*plan, mediator::BrowsabilityOptions{});
  EXPECT_EQ(report.cls, mediator::Browsability::kUnbrowsable);
}

// ---------------------------------------------------------------------------
// Hash-indexed join
// ---------------------------------------------------------------------------

std::pair<std::string, int64_t> RunJoin(bool index, int n) {
  auto homes = xml::MakeHomesDoc(n, n / 4);
  auto schools = xml::MakeSchoolsDoc(n, n / 4);
  Chain l(homes.get(), "home", "H", "zip._", "V1");
  Chain r(schools.get(), "school", "S", "zip._", "V2");
  JoinOp::Options options;
  options.index_inner = index;
  JoinOp join(&l.leafs, &r.leafs,
              BindingPredicate::VarVar("V1", CompareOp::kEq, "V2"), options);
  std::string out;
  for (auto b = join.FirstBinding(); b.has_value(); b = join.NextBinding(*b)) {
    out += AtomOf(join.Attr(*b, "V1")) + ";";
  }
  return {out, l.stats.total() + r.stats.total()};
}

TEST(HashJoinTest, SameResultsAsNestedLoops) {
  auto [indexed, indexed_navs] = RunJoin(true, 60);
  auto [nested, nested_navs] = RunJoin(false, 60);
  EXPECT_EQ(indexed, nested);
  EXPECT_FALSE(indexed.empty());
}

TEST(HashJoinTest, NumericAtomNormalization) {
  // "2.50" and "2.5" must join under the index, as they do under the
  // numeric-aware nested-loops comparison.
  auto l_doc = testing::Doc("r[k[2.50]]");
  auto r_doc = testing::Doc("r[k[2.5]]");
  Chain l(l_doc.get(), "k", "A", "_", "K1");
  Chain r(r_doc.get(), "k", "B", "_", "K2");
  JoinOp::Options options;
  options.index_inner = true;
  JoinOp join(&l.leafs, &r.leafs,
              BindingPredicate::VarVar("K1", CompareOp::kEq, "K2"), options);
  EXPECT_TRUE(join.FirstBinding().has_value());
}

TEST(HashJoinTest, EagerStepTradeoff) {
  // First result: the index drains the inner side up front (eager), the
  // nested loop stops at the first match (lazy).
  auto schools = xml::MakeSchoolsDoc(500, 1);  // every zip is "91000"
  auto homes2 = testing::Doc("homes[home[zip[91000]]]");

  auto run = [&](bool index) {
    Chain l(homes2.get(), "home", "H", "zip._", "V1");
    Chain r(schools.get(), "school", "S", "zip._", "V2");
    JoinOp::Options options;
    options.index_inner = index;
    JoinOp join(&l.leafs, &r.leafs,
                BindingPredicate::VarVar("V1", CompareOp::kEq, "V2"),
                options);
    EXPECT_TRUE(join.FirstBinding().has_value());
    return r.stats.total();
  };
  int64_t lazy_first = run(false);
  int64_t eager_first = run(true);
  // The eager step touches the whole inner source before the first result.
  EXPECT_GT(eager_first, lazy_first * 10);
}

TEST(HashJoinTest, NonEqPredicateFallsBack) {
  auto l_doc = testing::Doc("r[k[5]]");
  auto r_doc = testing::Doc("r[k[3],k[7]]");
  Chain l(l_doc.get(), "k", "A", "_", "K1");
  Chain r(r_doc.get(), "k", "B", "_", "K2");
  JoinOp::Options options;
  options.index_inner = true;  // ignored for non-eq
  JoinOp join(&l.leafs, &r.leafs,
              BindingPredicate::VarVar("K1", CompareOp::kGt, "K2"), options);
  auto b = join.FirstBinding();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(AtomOf(join.Attr(*b, "K2")), "3");
  EXPECT_FALSE(join.NextBinding(*b).has_value());
}

// ---------------------------------------------------------------------------
// groupBy input-enumeration cache (Fig. 10's closing optimization)
// ---------------------------------------------------------------------------

/// Iterates all groups and their item *positions* without touching any
/// value content — isolating the Fig. 10 scans from value navigation
/// (values are never cached; re-reading them re-drives the source by
/// design).
int64_t DriveScansOnly(GroupByOp* gb, const NavStats& stats) {
  for (auto b = gb->FirstBinding(); b.has_value(); b = gb->NextBinding(*b)) {
    ValueRef list = gb->Attr(*b, "L");
    for (auto item = list.nav->Down(list.id); item.has_value();
         item = list.nav->Right(*item)) {
    }
  }
  return stats.total();
}

TEST(GroupByCacheTest, SameResultsWithAndWithoutCache) {
  auto run = [](bool cache) {
    auto doc = testing::Doc(
        "regions[region[h[1],h[2]],region[h[3]],region[h[4],h[5]]]");
    Chain c(doc.get(), "region", "G", "h._", "V");
    GroupByOp::Options options;
    options.cache_input = cache;
    GroupByOp gb(&c.leafs, {"G"}, "V", "L", options);
    return testing::StreamToTerm(&gb);
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(GroupByCacheTest, CacheCutsScanNavigations) {
  // Pin the per-operator navigation memo off so this ablation isolates the
  // Fig. 10 input-enumeration cache (otherwise the upstream getDescendants
  // memo absorbs the cache-less groupBy's re-drives and both runs tie).
  size_t saved = DefaultNavMemoCapacity();
  SetDefaultNavMemoCapacity(0);
  auto run = [](bool cache) {
    auto doc = testing::Doc(
        "regions[region[h[1],h[2]],region[h[3]],region[h[4],h[5]],"
        "region[h[6]],region[h[7],h[8]]]");
    Chain c(doc.get(), "region", "G", "h._", "V");
    GroupByOp::Options options;
    options.cache_input = cache;
    GroupByOp gb(&c.leafs, {"G"}, "V", "L", options);
    return DriveScansOnly(&gb, c.stats);
  };
  int64_t cached = run(true);
  int64_t plain = run(false);
  SetDefaultNavMemoCapacity(saved);
  // Item scans + next_gb scans revisit the same input regions; only the
  // cache-less operator re-drives the input operator for them.
  EXPECT_LT(cached, plain);
}

TEST(GroupByCacheTest, SecondPassIsScanFree) {
  auto doc = testing::Doc(
      "regions[region[h[1],h[2]],region[h[3]],region[h[4]]]");
  Chain c(doc.get(), "region", "G", "h._", "V");
  GroupByOp gb(&c.leafs, {"G"}, "V", "L");

  int64_t after_first = DriveScansOnly(&gb, c.stats);
  // Second pass over the same operator: enumeration fully memoized.
  int64_t after_second = DriveScansOnly(&gb, c.stats);
  EXPECT_EQ(after_first, after_second);
}

}  // namespace
}  // namespace mix::algebra
