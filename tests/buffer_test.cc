#include <gtest/gtest.h>

#include "buffer/buffer.h"
#include "buffer/lxp.h"
#include "test_util.h"
#include "xml/materialize.h"

namespace mix::buffer {
namespace {

using FL = FragmentList;

TEST(FragmentTest, Constructors) {
  Fragment h = Fragment::Hole("id7");
  EXPECT_TRUE(h.is_hole);
  EXPECT_EQ(h.ToTerm(), "hole[id7]");

  Fragment e = Fragment::Element("a", {Fragment::Text("x"), Fragment::Hole("1")});
  EXPECT_EQ(e.ToTerm(), "a[x,hole[1]]");
}

TEST(FragmentTest, FromXmlSubtree) {
  auto doc = testing::Doc("r[a[x],b]");
  Fragment f = Fragment::FromXmlSubtree(doc->root());
  EXPECT_EQ(f.ToTerm(), "r[a[x],b]");
}

TEST(FragmentTest, ByteSizeGrowsWithContent) {
  Fragment small = Fragment::Element("a");
  Fragment big = Fragment::Element("a", {Fragment::Text("0123456789")});
  EXPECT_GT(big.ByteSize(), small.ByteSize());
  EXPECT_GT(FragmentListByteSize({small, big}), big.ByteSize());
}

/// The liberal LXP trace of Example 7 for t = a[b[d,e],c].
ScriptedLxpWrapper MakeExample7Wrapper() {
  std::map<std::string, FL> fills;
  fills["h0"] = {Fragment::Element("a", {Fragment::Hole("h1")})};
  fills["h1"] = {Fragment::Element("b", {Fragment::Hole("h2")}),
                 Fragment::Hole("h3")};
  fills["h3"] = {Fragment::Element("c")};
  fills["h2"] = {Fragment::Hole("h4"),
                 Fragment::Element("d", {Fragment::Hole("h5")}),
                 Fragment::Hole("h6")};
  fills["h4"] = {};
  fills["h5"] = {};
  fills["h6"] = {Fragment::Element("e")};
  return ScriptedLxpWrapper("h0", std::move(fills));
}

TEST(BufferTest, Example7FullExploration) {
  ScriptedLxpWrapper wrapper = MakeExample7Wrapper();
  BufferComponent buffer(&wrapper, "u");
  EXPECT_EQ(testing::MaterializeToTerm(&buffer), "a[b[d,e],c]");
}

TEST(BufferTest, Example7StepwiseTraceAndOpenTrees) {
  ScriptedLxpWrapper wrapper = MakeExample7Wrapper();
  BufferComponent buffer(&wrapper, "u");

  NodeId a = buffer.Root();
  EXPECT_EQ(buffer.Fetch(a), "a");
  EXPECT_EQ(wrapper.fill_log(), (std::vector<std::string>{"h0"}));
  EXPECT_EQ(buffer.OpenTreeTerm(), "[a[hole[h1]]]");

  auto b = buffer.Down(a);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(buffer.Fetch(*b), "b");
  EXPECT_EQ(wrapper.fill_log(), (std::vector<std::string>{"h0", "h1"}));
  EXPECT_EQ(buffer.OpenTreeTerm(), "[a[b[hole[h2]],hole[h3]]]");

  // Descending into b hits the liberal fill of h2: the buffer must chase
  // through the leading hole h4 (which fills empty) to reach d.
  auto d = buffer.Down(*b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(buffer.Fetch(*d), "d");
  EXPECT_EQ(wrapper.fill_log(),
            (std::vector<std::string>{"h0", "h1", "h2", "h4"}));

  // d's only "child" is the empty hole h5: d is in fact a leaf.
  EXPECT_FALSE(buffer.Down(*d).has_value());
  // Right of d chases h6 -> e.
  auto e = buffer.Right(*d);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(buffer.Fetch(*e), "e");
  EXPECT_FALSE(buffer.Right(*e).has_value());

  // Right of b chases h3 -> c.
  auto c = buffer.Right(*b);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(buffer.Fetch(*c), "c");
  EXPECT_EQ(buffer.holes_outstanding(), 0);
}

TEST(BufferTest, NoSourceAccessBeforeFirstNavigation) {
  ScriptedLxpWrapper wrapper = MakeExample7Wrapper();
  BufferComponent buffer(&wrapper, "u");
  // Constructing the buffer must not fill anything.
  EXPECT_EQ(buffer.fill_count(), 0);
}

TEST(BufferTest, MinimalFillsForPartialNavigation) {
  ScriptedLxpWrapper wrapper = MakeExample7Wrapper();
  BufferComponent buffer(&wrapper, "u");
  NodeId a = buffer.Root();
  buffer.Down(a);
  // Only the root hole and the first-level hole were filled; the subtrees
  // of b and the sibling c were never requested.
  EXPECT_EQ(buffer.fill_count(), 2);
  EXPECT_EQ(buffer.holes_outstanding(), 2);  // h2 and h3
}

TEST(BufferTest, BufferedNodesAnsweredWithoutRefill) {
  ScriptedLxpWrapper wrapper = MakeExample7Wrapper();
  BufferComponent buffer(&wrapper, "u");
  NodeId a = buffer.Root();
  auto b = buffer.Down(a);
  int64_t fills = buffer.fill_count();
  // Re-navigating over explored parts must not touch the wrapper.
  EXPECT_EQ(buffer.Fetch(buffer.Root()), "a");
  auto b2 = buffer.Down(a);
  EXPECT_EQ(*b2, *b);
  EXPECT_EQ(buffer.fill_count(), fills);
}

TEST(BufferTest, ChannelAccounting) {
  ScriptedLxpWrapper wrapper = MakeExample7Wrapper();
  net::SimClock clock;
  net::Channel channel(&clock, net::ChannelOptions{});
  BufferComponent::Options options;
  options.channel = &channel;
  BufferComponent buffer(&wrapper, "u", options);

  buffer.Root();
  // get_root (2 messages) + fill h0 (2 messages).
  EXPECT_EQ(channel.stats().messages, 4);
  EXPECT_GT(channel.stats().bytes, 0);
  EXPECT_GT(clock.now_ns(), 0);
}

TEST(BufferTest, PrefetchFillsHolesInBackground) {
  ScriptedLxpWrapper demand_wrapper = MakeExample7Wrapper();
  BufferComponent plain(&demand_wrapper, "u");
  plain.Root();
  int64_t plain_fills = plain.fill_count();

  ScriptedLxpWrapper prefetch_wrapper = MakeExample7Wrapper();
  net::Channel background(nullptr, net::ChannelOptions{});
  BufferComponent::Options options;
  options.prefetch_per_command = 2;
  options.prefetch_channel = &background;
  BufferComponent prefetching(&prefetch_wrapper, "u", options);
  prefetching.Root();

  EXPECT_GT(prefetching.fill_count(), plain_fills);
  EXPECT_GT(background.stats().messages, 0);
  // Prefetching never changes what the client sees.
  EXPECT_EQ(testing::MaterializeToTerm(&prefetching), "a[b[d,e],c]");
}

TEST(BufferTest, EmptyFillRemovesHole) {
  std::map<std::string, FL> fills;
  fills["root"] = {Fragment::Element("r", {Fragment::Element("a"),
                                           Fragment::Hole("tail")})};
  fills["tail"] = {};
  ScriptedLxpWrapper wrapper("root", std::move(fills));
  BufferComponent buffer(&wrapper, "u");
  NodeId r = buffer.Root();
  auto a = buffer.Down(r);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(buffer.Right(*a).has_value());
  EXPECT_EQ(buffer.holes_outstanding(), 0);
}

// A fill violating the progress conditions is rejected *before* any splice:
// the offending hole degrades to an unavailable node, the error is latched
// as a typed Status, and the process never aborts (a remote wrapper must
// not be able to kill the mediator).
TEST(BufferFaultTest, AdjacentHolesRejectedWithStatus) {
  std::map<std::string, FL> fills;
  fills["root"] = {Fragment::Element(
      "r", {Fragment::Hole("x"), Fragment::Hole("y")})};
  ScriptedLxpWrapper wrapper("root", std::move(fills));
  BufferComponent buffer(&wrapper, "u");
  NodeId r = buffer.Root();
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(buffer.Fetch(r), "#unavailable");
  Status s = buffer.TakeStatus();
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(s.message().find("adjacent holes"), std::string::npos);
  EXPECT_EQ(buffer.degraded_holes(), 1);
  // The latch is drained: clean navigation stays clean.
  EXPECT_TRUE(buffer.TakeStatus().ok());
}

TEST(BufferFaultTest, AllHoleFillRejectedWithStatus) {
  std::map<std::string, FL> fills;
  fills["root"] = {Fragment::Element("r", {Fragment::Hole("x")})};
  fills["x"] = {Fragment::Hole("y")};
  ScriptedLxpWrapper wrapper("root", std::move(fills));
  BufferComponent buffer(&wrapper, "u");
  NodeId r = buffer.Root();
  std::optional<NodeId> child = buffer.Down(r);
  ASSERT_TRUE(child.has_value());
  EXPECT_EQ(buffer.Fetch(*child), "#unavailable");
  Status s = buffer.TakeStatus();
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(s.message().find("only of holes"), std::string::npos);
  EXPECT_EQ(buffer.degraded_holes(), 1);
}

}  // namespace
}  // namespace mix::buffer
