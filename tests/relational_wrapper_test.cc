#include <gtest/gtest.h>

#include "buffer/buffer.h"
#include "test_util.h"
#include "wrappers/relational_wrapper.h"

namespace mix::wrappers {
namespace {

rdb::Database MakeDb(int rows = 5) {
  rdb::Database db("realty");
  rdb::Schema schema({{"addr", rdb::Type::kString}, {"zip", rdb::Type::kInt}});
  rdb::Table* t = db.CreateTable("homes", schema).ValueOrDie();
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(t->Insert({rdb::Value("street " + std::to_string(i)),
                           rdb::Value(int64_t{91220 + i % 2})})
                    .ok());
  }
  return db;
}

TEST(RelationalWrapperTest, DatabaseViewShape) {
  rdb::Database db = MakeDb(2);
  RelationalLxpWrapper wrapper(&db);
  buffer::BufferComponent buffer(&wrapper, "db");
  // Fig. 6's relational-data-as-XML format, with the whole-db view of §4:
  // db[table[row[att[v]...]...]].
  EXPECT_EQ(testing::MaterializeToTerm(&buffer),
            "realty[homes[row[addr[street 0],zip[91220]],"
            "row[addr[street 1],zip[91221]]]]");
}

TEST(RelationalWrapperTest, ChunkedTableFills) {
  rdb::Database db = MakeDb(25);
  RelationalLxpWrapper::Options options;
  options.chunk = 10;
  RelationalLxpWrapper wrapper(&db, options);
  buffer::BufferComponent buffer(&wrapper, "db");
  testing::MaterializeToTerm(&buffer);
  // 1 root fill + 2 table fills: the first continuation serves the base
  // chunk (10 rows); adaptive fill sizing then doubles the offer, so the
  // remaining 15 rows ship in one fill instead of two.
  EXPECT_EQ(buffer.fill_count(), 3);
  EXPECT_EQ(wrapper.fills_served(), 3);
}

TEST(RelationalWrapperTest, HoleIdsEncodeRowPositions) {
  rdb::Database db = MakeDb(15);
  RelationalLxpWrapper::Options options;
  options.chunk = 10;
  RelationalLxpWrapper wrapper(&db, options);
  auto root = wrapper.Fill("dbroot");
  // realty[homes[hole[t:homes:0]]]
  ASSERT_EQ(root.size(), 1u);
  const buffer::Fragment& table = root[0].children[0];
  ASSERT_EQ(table.children.size(), 1u);
  EXPECT_EQ(table.children[0].hole_id, "t:homes:0");

  auto rows = wrapper.Fill("t:homes:0");
  ASSERT_EQ(rows.size(), 11u);  // 10 rows + trailing hole
  EXPECT_EQ(rows.back().hole_id, "t:homes:10");
  auto rest = wrapper.Fill("t:homes:10");
  EXPECT_EQ(rest.size(), 5u);  // final chunk, no hole
  EXPECT_FALSE(rest.back().is_hole);
}

TEST(RelationalWrapperTest, TupleAtATimeGranularity) {
  // Rows ship complete: navigating into attributes needs no further fills.
  rdb::Database db = MakeDb(3);
  RelationalLxpWrapper wrapper(&db);
  buffer::BufferComponent buffer(&wrapper, "db");

  NodeId root = buffer.Root();
  auto table = buffer.Down(root);
  auto row = buffer.Down(*table);
  int64_t fills = buffer.fill_count();
  auto addr = buffer.Down(*row);
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(buffer.Fetch(*addr), "addr");
  auto value = buffer.Down(*addr);
  EXPECT_EQ(buffer.Fetch(*value), "street 0");
  auto zip = buffer.Right(*addr);
  EXPECT_EQ(buffer.Fetch(*zip), "zip");
  EXPECT_EQ(buffer.fill_count(), fills);  // all answered from the buffer
}

TEST(RelationalWrapperTest, QueryViewFiltersAndProjects) {
  rdb::Database db = MakeDb(6);
  RelationalLxpWrapper::Options options;
  options.chunk = 2;
  RelationalLxpWrapper wrapper(&db, options);
  buffer::BufferComponent buffer(
      &wrapper, "sql:SELECT addr FROM homes WHERE zip = 91220");
  EXPECT_EQ(testing::MaterializeToTerm(&buffer),
            "view[row[addr[street 0]],row[addr[street 2]],"
            "row[addr[street 4]]]");
}

TEST(RelationalWrapperTest, QueryViewChunkingScansLazily) {
  rdb::Database db = MakeDb(100);
  RelationalLxpWrapper::Options options;
  options.chunk = 2;
  RelationalLxpWrapper wrapper(&db, options);
  buffer::BufferComponent buffer(&wrapper, "sql:SELECT * FROM homes");

  NodeId view = buffer.Root();
  auto row = buffer.Down(view);
  ASSERT_TRUE(row.has_value());
  // One root fill delivered the first chunk; most of the table unscanned.
  EXPECT_LE(wrapper.rows_scanned(), 6);
}

TEST(RelationalWrapperTest, EmptyQueryResult) {
  rdb::Database db = MakeDb(4);
  RelationalLxpWrapper wrapper(&db);
  buffer::BufferComponent buffer(&wrapper,
                                 "sql:SELECT * FROM homes WHERE zip = 1");
  NodeId view = buffer.Root();
  EXPECT_EQ(buffer.Fetch(view), "view");
  EXPECT_FALSE(buffer.Down(view).has_value());
}

TEST(RelationalWrapperTest, EmptyTableHasNoHole) {
  rdb::Database db("d");
  db.CreateTable("empty", rdb::Schema({{"a", rdb::Type::kInt}})).ValueOrDie();
  RelationalLxpWrapper wrapper(&db);
  buffer::BufferComponent buffer(&wrapper, "db");
  EXPECT_EQ(testing::MaterializeToTerm(&buffer), "d[empty]");
}

}  // namespace
}  // namespace mix::wrappers
