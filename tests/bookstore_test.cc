#include <gtest/gtest.h>

#include "buffer/buffer.h"
#include "test_util.h"
#include "wrappers/bookstore.h"
#include "xml/parser.h"

namespace mix::wrappers {
namespace {

TEST(CatalogTest, DeterministicInSeed) {
  CatalogOptions options;
  options.size = 10;
  options.seed = 3;
  auto a = MakeCatalog(options);
  auto b = MakeCatalog(options);
  ASSERT_EQ(a.size(), 10u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].title, b[i].title);
    EXPECT_EQ(a[i].price_cents, b[i].price_cents);
  }
}

TEST(CatalogTest, SharedPrefixOverlapsAcrossStores) {
  CatalogOptions amazon{20, 1, 5};
  CatalogOptions bn{20, 2, 5};
  auto a = MakeCatalog(amazon);
  auto b = MakeCatalog(bn);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a[static_cast<size_t>(i)].title, b[static_cast<size_t>(i)].title);
  }
  // Disjoint seeds beyond the shared prefix (overwhelmingly likely to
  // differ; check one position).
  EXPECT_NE(a[10].title, b[10].title);
}

TEST(BookstoreSiteTest, PaginationAndHtmlWellFormed) {
  BookstoreSite site("amazon", MakeCatalog({25, 1, 0}), 10);
  EXPECT_EQ(site.page_count(), 3);
  for (int p = 0; p < 3; ++p) {
    std::string html = site.RenderPageHtml(p);
    auto parsed = xml::Parse(html);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  }
  // Last page holds the remainder.
  std::string last = site.RenderPageHtml(2);
  EXPECT_EQ(last.find("rel=\"next\""), std::string::npos);
  std::string first = site.RenderPageHtml(0);
  EXPECT_NE(first.find("rel=\"next\""), std::string::npos);
}

TEST(BookstoreWrapperTest, ScrapesBooksFromHtml) {
  auto catalog = MakeCatalog({7, 1, 0});
  BookstoreSite site("amazon", catalog, 3);
  BookstoreLxpWrapper wrapper(&site);
  buffer::BufferComponent buffer(&wrapper, "http://amazon");

  NodeId root = buffer.Root();
  EXPECT_EQ(buffer.Fetch(root), "books");
  auto book = buffer.Down(root);
  ASSERT_TRUE(book.has_value());
  EXPECT_EQ(buffer.Fetch(*book), "book");
  auto title = buffer.Down(*book);
  EXPECT_EQ(buffer.Fetch(*title), "title");
  auto title_text = buffer.Down(*title);
  EXPECT_EQ(buffer.Fetch(*title_text), catalog[0].title);
}

TEST(BookstoreWrapperTest, PageAtATimeFetching) {
  BookstoreSite site("amazon", MakeCatalog({30, 1, 0}), 10);
  BookstoreLxpWrapper wrapper(&site);
  buffer::BufferComponent buffer(&wrapper, "http://amazon");

  // Browsing the first 10 books costs exactly one page fetch.
  auto book = buffer.Down(buffer.Root());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(book.has_value());
    book = buffer.Right(*book);
  }
  EXPECT_EQ(wrapper.pages_fetched(), 1);
  // The 11th book triggers the second page.
  ASSERT_TRUE(book.has_value());
  book = buffer.Right(*book);
  ASSERT_TRUE(book.has_value());
  EXPECT_EQ(wrapper.pages_fetched(), 2);
  EXPECT_EQ(site.pages_served(), 2);
}

TEST(BookstoreWrapperTest, FullCatalogRoundTrip) {
  auto catalog = MakeCatalog({12, 9, 0});
  BookstoreSite site("bn", catalog, 5);
  BookstoreLxpWrapper wrapper(&site);
  buffer::BufferComponent buffer(&wrapper, "http://bn");

  auto doc = xml::Materialize(&buffer);
  ASSERT_EQ(doc->root()->children.size(), 12u);
  for (size_t i = 0; i < 12; ++i) {
    const xml::Node* book = doc->root()->children[i];
    EXPECT_EQ(book->children[0]->children[0]->label, catalog[i].title);
    EXPECT_EQ(book->children[1]->children[0]->label, catalog[i].author);
    EXPECT_EQ(book->children[2]->children[0]->label,
              std::to_string(catalog[i].price_cents));
  }
  EXPECT_EQ(wrapper.pages_fetched(), 3);
}

}  // namespace
}  // namespace mix::wrappers
