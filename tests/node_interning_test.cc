// Atom table and NodeId hash-consing invariants (the interning layer under
// every navigation command).
#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>
#include <vector>

#include "algebra/get_descendants_op.h"
#include "algebra/source_op.h"
#include "core/atom.h"
#include "core/node_id.h"
#include "pathexpr/path_expr.h"
#include "test_util.h"
#include "xml/doc_navigable.h"

namespace mix {
namespace {

// ---------------------------------------------------------------------------
// Atom table
// ---------------------------------------------------------------------------

TEST(AtomTest, InternIsIdempotent) {
  Atom a = Atom::Intern("home");
  Atom b = Atom::Intern("home");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.name(), "home");
}

TEST(AtomTest, DistinctStringsGetDistinctAtoms) {
  EXPECT_NE(Atom::Intern("zip"), Atom::Intern("zipcode"));
  EXPECT_NE(Atom::Intern(""), Atom::Intern(" "));
  EXPECT_EQ(Atom::Intern("").name(), "");
}

TEST(AtomTest, InvalidAtomCompares) {
  Atom invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_NE(invalid, Atom::Intern("x"));
}

TEST(AtomTest, StableAcrossThreads) {
  // Every thread interns the same labels (plus private noise to force
  // concurrent table growth); all threads must agree on the handles.
  const std::vector<std::string> shared = {"home",   "school", "zip",
                                           "answer", "b",      "fw"};
  constexpr int kThreads = 8;
  std::vector<std::vector<Atom>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &shared, &results]() {
      for (int round = 0; round < 200; ++round) {
        Atom::Intern("noise_" + std::to_string(t) + "_" +
                     std::to_string(round));
        for (const std::string& s : shared) {
          Atom a = Atom::Intern(s);
          if (round == 199) results[t].push_back(a);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t], results[0]);
  }
  for (size_t i = 0; i < shared.size(); ++i) {
    EXPECT_EQ(results[0][i].name(), shared[i]);
  }
}

// ---------------------------------------------------------------------------
// NodeId hash-consing
// ---------------------------------------------------------------------------

TEST(NodeIdInterningTest, RecurringIdsShareOneRep) {
  // The intern cache admits a key on its second mint (doorkeeper policy), so
  // re-mints from the third one on must return the same shared rep.
  auto mint = [] {
    return NodeId("intern_test_b",
                  {int64_t{400}, NodeId("intern_test_src", {int64_t{7}}),
                   int64_t{12}});
  };
  NodeId first = mint();
  NodeId second = mint();
  NodeId third = mint();
  NodeId fourth = mint();
  EXPECT_EQ(third.rep_identity(), fourth.rep_identity());
  // Structural equality holds whether or not reps are shared.
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, fourth);
  EXPECT_EQ(first.Hash(), fourth.Hash());
}

TEST(NodeIdInterningTest, SharedRepsPreserveComponents) {
  NodeId warm;
  for (int i = 0; i < 3; ++i) {
    warm = NodeId("intern_test_c", {int64_t{1}, std::string("hole_3")});
  }
  EXPECT_EQ(warm.tag(), "intern_test_c");
  ASSERT_EQ(warm.arity(), 2u);
  EXPECT_EQ(warm.IntAt(0), 1);
  EXPECT_EQ(warm.StrAt(1), "hole_3");
}

TEST(NodeIdInterningTest, EqualityAcrossThreadsWithoutSharedReps) {
  // The intern cache is thread-local: equal ids minted on different threads
  // may hold distinct reps but must still compare equal (structural
  // fallback) and hash identically.
  NodeId local("intern_test_d", {int64_t{3}, int64_t{9}});
  NodeId remote;
  std::thread t([&remote]() {
    remote = NodeId("intern_test_d", {int64_t{3}, int64_t{9}});
  });
  t.join();
  EXPECT_EQ(local, remote);
  EXPECT_EQ(local.Hash(), remote.Hash());
}

TEST(NodeIdInterningTest, UnorderedContainersSeeOneKey) {
  std::unordered_map<NodeId, int, NodeIdHash> map;
  for (int i = 0; i < 4; ++i) {
    map[NodeId("intern_test_e", {int64_t{5}, int64_t{i % 2}})]++;
  }
  EXPECT_EQ(map.size(), 2u);
  for (const auto& [id, count] : map) {
    EXPECT_EQ(count, 2) << id.ToString();
  }
}

// ---------------------------------------------------------------------------
// Foreign-id rejection: interning must not weaken CheckOwn.
// ---------------------------------------------------------------------------

using NodeIdInterningDeathTest = ::testing::Test;

TEST(NodeIdInterningDeathTest, ForeignBindingIdStillAborts) {
  auto doc = testing::Doc("r[a[1],a[2]]");
  xml::DocNavigable nav(doc.get());
  algebra::SourceOp source(&nav, "R");
  algebra::GetDescendantsOp gd(
      &source, "R", pathexpr::PathExpr::Parse("a").ValueOrDie(), "A");
  auto sb = source.FirstBinding();
  ASSERT_TRUE(sb.has_value());
  ASSERT_TRUE(gd.FirstBinding().has_value());
  // A source-level binding handed to getDescendants is a foreign id; the
  // operator must refuse it, shared reps or not.
  EXPECT_DEATH(gd.NextBinding(*sb), "MIX_CHECK failed");
}

}  // namespace
}  // namespace mix
