// Fleet-tier tests: consistent-hash ring determinism and stability, the
// health circuit breaker, bounded-load session placement, health-aware
// failover with byte-identical answers (the Skolem-id replay property),
// all-backends-down shedding and probe-driven recovery, aggregated metrics,
// stateless LXP routing, and TCP mediator-over-mediator stacking.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/framed_document.h"
#include "fleet/hash_ring.h"
#include "fleet/health.h"
#include "fleet/remote_source.h"
#include "fleet/router.h"
#include "mediator/instantiate.h"
#include "mediator/plan_cache.h"
#include "mediator/translate.h"
#include "net/tcp/tcp_server.h"
#include "service/service.h"
#include "service/session.h"
#include "service/wire.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/doc_navigable.h"

namespace mix::fleet {
namespace {

using client::FramedDocument;
using service::MediatorService;
using service::SessionEnvironment;
using service::wire::Frame;
using service::wire::MsgType;

// The Fig. 3 running example (same fixture as tests/service_test.cc).
const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

const char* kHomes =
    "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]],"
    "home[addr[Nowhere],zip[99999]]]";
const char* kSchools =
    "schools[school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],"
    "school[dir[Hart],zip[91223]]]";

const char* kExpectedAnswer =
    "answer["
    "med_home[home[addr[La Jolla],zip[91220]],"
    "school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]]],"
    "med_home[home[addr[El Cajon],zip[91223]],school[dir[Hart],zip[91223]]]]";

// --------------------------------------------------------------------------
// Hash ring.
// --------------------------------------------------------------------------

TEST(HashRingTest, PreferenceIsACompleteDeterministicPermutation) {
  HashRing ring({"b0", "b1", "b2", "b3"}, 64);
  for (int i = 0; i < 100; ++i) {
    std::string key = "key-" + std::to_string(i);
    std::vector<size_t> pref = ring.PreferenceFor(key);
    ASSERT_EQ(pref.size(), 4u);
    std::vector<size_t> sorted = pref;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<size_t>{0, 1, 2, 3}));
    // Deterministic: a rebuilt identical ring agrees exactly.
    HashRing again({"b0", "b1", "b2", "b3"}, 64);
    EXPECT_EQ(again.PreferenceFor(key), pref);
    EXPECT_EQ(ring.Owner(FleetHash(key)), pref[0]);
  }
}

TEST(HashRingTest, RemovingABackendOnlyMovesItsOwnKeys) {
  // The consistent-hashing contract: dropping b2 must not re-shuffle keys
  // owned by the survivors (their ring points are untouched).
  HashRing full({"b0", "b1", "b2"}, 64);
  HashRing reduced({"b0", "b1"}, 64);
  int moved = 0;
  for (int i = 0; i < 1000; ++i) {
    uint64_t h = FleetHash("key-" + std::to_string(i));
    size_t owner = full.Owner(h);
    if (owner != 2) {
      EXPECT_EQ(reduced.Owner(h), owner) << "survivor key " << i << " moved";
    } else {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0) << "fixture: b2 should own some keys";
}

TEST(HashRingTest, VirtualNodesBalanceOwnership) {
  HashRing ring({"b0", "b1", "b2"}, 64);
  std::vector<int> owned(3, 0);
  const int kKeys = 3000;
  for (int i = 0; i < kKeys; ++i) {
    ++owned[ring.Owner(FleetHash("key-" + std::to_string(i)))];
  }
  for (int b = 0; b < 3; ++b) {
    EXPECT_GT(owned[b], kKeys / 6) << "backend " << b << " starved";
    EXPECT_LT(owned[b], kKeys / 2) << "backend " << b << " overloaded";
  }
}

// --------------------------------------------------------------------------
// Health circuit breaker (fake clock throughout).
// --------------------------------------------------------------------------

TEST(HealthTrackerTest, EjectProbeReadmitCycle) {
  HealthOptions opts;
  opts.failure_threshold = 2;
  opts.probe_interval_ns = 1000;
  HealthTracker health(2, opts);
  int64_t now = 0;

  EXPECT_TRUE(health.Admit(0, now));
  health.ReportFailure(0, now);
  EXPECT_EQ(health.state(0), BackendState::kHealthy) << "1 failure < threshold";
  health.ReportFailure(0, now);
  EXPECT_EQ(health.state(0), BackendState::kEjected);
  EXPECT_EQ(health.healthy_count(), 1u);

  // Ejected: no admission until the probe interval elapses.
  EXPECT_FALSE(health.Admit(0, now + 500));
  // Interval up: exactly ONE caller gets the probe slot.
  EXPECT_TRUE(health.Admit(0, now + 1000));
  EXPECT_EQ(health.state(0), BackendState::kHalfOpen);
  EXPECT_FALSE(health.Admit(0, now + 1000)) << "one probe at a time";

  // Probe fails: re-ejected, interval restarted.
  health.ReportFailure(0, now + 1100);
  EXPECT_EQ(health.state(0), BackendState::kEjected);
  EXPECT_FALSE(health.Admit(0, now + 2000)) << "interval restarted at 1100";
  EXPECT_TRUE(health.Admit(0, now + 2100));

  // Probe succeeds: readmitted.
  health.ReportSuccess(0);
  EXPECT_EQ(health.state(0), BackendState::kHealthy);
  EXPECT_EQ(health.healthy_count(), 2u);

  HealthTracker::Stats stats = health.stats();
  EXPECT_EQ(stats.ejections, 2);
  EXPECT_EQ(stats.probes, 2);
  EXPECT_EQ(stats.readmissions, 1);
}

TEST(HealthTrackerTest, InterleavedSuccessResetsConsecutiveFailures) {
  HealthOptions opts;
  opts.failure_threshold = 3;
  HealthTracker health(1, opts);
  for (int round = 0; round < 5; ++round) {
    health.ReportFailure(0, 0);
    health.ReportFailure(0, 0);
    health.ReportSuccess(0);  // alive-but-lossy: the breaker must not trip
  }
  EXPECT_EQ(health.state(0), BackendState::kHealthy);
  EXPECT_EQ(health.stats().ejections, 0);
}

// --------------------------------------------------------------------------
// Router over in-process killable backends.
// --------------------------------------------------------------------------

/// FrameTransport decorator with a shared kill switch: once `dead` is set,
/// every exchange fails like a dropped connection (retryable kUnavailable),
/// which is what the health tracker and failover loop key on.
class KillableBackend : public service::wire::FrameTransport {
 public:
  KillableBackend(service::wire::FrameTransport* inner,
                  std::atomic<bool>* dead)
      : inner_(inner), dead_(dead) {}

  Result<std::string> RoundTrip(const std::string& request_bytes) override {
    if (dead_->load(std::memory_order_relaxed)) {
      return Status::Unavailable("backend killed");
    }
    return inner_->RoundTrip(request_bytes);
  }

 private:
  service::wire::FrameTransport* inner_;
  std::atomic<bool>* dead_;
};

/// N in-process mixd backends over the shared Fig. 3 sources, each with its
/// own kill switch.
class FleetFixture {
 public:
  explicit FleetFixture(int n)
      : homes_(testing::Doc(kHomes)), schools_(testing::Doc(kSchools)) {
    for (int i = 0; i < n; ++i) {
      auto env = std::make_unique<SessionEnvironment>();
      env->RegisterWrapperFactory(
          "homesSrc",
          [this] {
            return std::make_unique<wrappers::XmlLxpWrapper>(homes_.get());
          },
          "homes.xml");
      env->RegisterWrapperFactory(
          "schoolsSrc",
          [this] {
            return std::make_unique<wrappers::XmlLxpWrapper>(schools_.get());
          },
          "schools.xml");
      MediatorService::Options sopts;
      sopts.backend_id = "b" + std::to_string(i);
      services_.push_back(
          std::make_unique<MediatorService>(env.get(), sopts));
      envs_.push_back(std::move(env));
      dead_.push_back(std::make_unique<std::atomic<bool>>(false));
    }
  }

  std::vector<SessionRouter::Backend> Backends() {
    std::vector<SessionRouter::Backend> backends;
    for (size_t i = 0; i < services_.size(); ++i) {
      backends.push_back(SessionRouter::Backend{
          "b" + std::to_string(i), [this, i] {
            return std::make_unique<KillableBackend>(services_[i].get(),
                                                     dead_[i].get());
          }});
    }
    return backends;
  }

  void Kill(size_t i) { dead_[i]->store(true); }
  void Revive(size_t i) { dead_[i]->store(false); }
  MediatorService& service(size_t i) { return *services_[i]; }
  size_t size() const { return services_.size(); }

  int64_t TotalDegradedHoles() {
    int64_t total = 0;
    for (auto& s : services_) total += s->Metrics().degraded_holes;
    return total;
  }

 private:
  std::unique_ptr<xml::Document> homes_;
  std::unique_ptr<xml::Document> schools_;
  std::vector<std::unique_ptr<SessionEnvironment>> envs_;
  std::vector<std::unique_ptr<MediatorService>> services_;
  std::vector<std::unique_ptr<std::atomic<bool>>> dead_;
};

TEST(SessionRouterTest, SharedQueriesCoLocateOnTheRingOwner) {
  FleetFixture fx(3);
  SessionRouter router(fx.Backends(), {});

  std::vector<std::unique_ptr<FramedDocument>> docs;
  for (int i = 0; i < 4; ++i) {
    docs.push_back(router.OpenDocument(kFig3).ValueOrDie());
    EXPECT_EQ(docs.back()->Fetch(docs.back()->Root()), "answer");
  }
  // All four sessions share one canonical key, and four is under the load
  // floor: they all landed on the key's ring owner, where the second one
  // onward hits the warm caches.
  size_t home =
      router.ring().PreferenceFor(mediator::CanonicalXmasKey(kFig3))[0];
  FleetStats stats = router.stats();
  EXPECT_EQ(stats.opens_routed, 4);
  EXPECT_EQ(stats.sessions_per_backend[home], 4);
  EXPECT_EQ(stats.open_spills, 0);
  EXPECT_EQ(stats.sheds, 0);

  // Close releases the load slots.
  for (auto& doc : docs) EXPECT_TRUE(doc->Close().ok());
  stats = router.stats();
  EXPECT_EQ(stats.sessions_per_backend[home], 0);
}

TEST(SessionRouterTest, BoundedLoadSpillsToTheNextPreference) {
  FleetFixture fx(3);
  SessionRouter::Options opts;
  opts.bounded_load_factor = 1.0;
  opts.min_load_cap = 1;  // fair share only: forces spill immediately
  SessionRouter router(fx.Backends(), opts);

  std::vector<std::unique_ptr<FramedDocument>> docs;
  for (int i = 0; i < 6; ++i) {
    docs.push_back(router.OpenDocument(kFig3).ValueOrDie());
  }
  // One hot query cannot pin the whole fleet to its home backend: with the
  // cap at fair share, six same-key sessions land 2/2/2.
  FleetStats stats = router.stats();
  EXPECT_GT(stats.open_spills, 0);
  for (size_t b = 0; b < fx.size(); ++b) {
    EXPECT_EQ(stats.sessions_per_backend[b], 2) << "backend " << b;
  }
  // Placement never changed the answers.
  for (auto& doc : docs) {
    EXPECT_EQ(testing::MaterializeToTerm(doc.get()), kExpectedAnswer);
  }
  EXPECT_EQ(fx.TotalDegradedHoles(), 0);
}

TEST(SessionRouterTest, FailoverMidNavigationIsByteIdenticalAcrossBackends) {
  FleetFixture fx(3);
  SessionRouter::Options opts;
  opts.health.failure_threshold = 1;
  opts.health.probe_interval_ns = int64_t{3600} * 1'000'000'000;  // no probes
  SessionRouter router(fx.Backends(), opts);

  // 64 sessions of the shared query spread over the preference order by the
  // bounded-load cap (the home fills to its cap, then the spill backends).
  constexpr int kSessions = 64;
  std::vector<std::unique_ptr<FramedDocument>> docs;
  std::vector<NodeId> first_child;
  for (int i = 0; i < kSessions; ++i) {
    docs.push_back(router.OpenDocument(kFig3).ValueOrDie());
    // Partial navigation before the kill: latch a node handle to resume
    // from afterwards.
    std::optional<NodeId> child = docs.back()->Down(docs.back()->Root());
    ASSERT_TRUE(child.has_value());
    first_child.push_back(*child);
  }
  FleetStats before = router.stats();
  size_t home =
      router.ring().PreferenceFor(mediator::CanonicalXmasKey(kFig3))[0];
  ASSERT_GT(before.sessions_per_backend[home], 0);
  ASSERT_GT(before.opens_routed - before.sessions_per_backend[home], 0)
      << "fixture: the cap should have spread sessions beyond the home";

  // Kill the home backend mid-dialogue.
  fx.Kill(home);

  for (int i = 0; i < kSessions; ++i) {
    // Resuming from a PRE-KILL node id must answer identically wherever the
    // session lands: Skolem ids are self-describing, so the re-opened
    // session resolves them by value.
    EXPECT_EQ(docs[i]->Fetch(first_child[i]), "med_home") << "session " << i;
    // And the complete answer stays byte-identical to the single-instance
    // evaluation.
    EXPECT_EQ(testing::MaterializeToTerm(docs[i].get()), kExpectedAnswer)
        << "session " << i;
  }

  FleetStats after = router.stats();
  EXPECT_GT(after.failovers, 0);
  EXPECT_GE(after.health.ejections, 1);
  EXPECT_EQ(after.sessions_per_backend[home], 0)
      << "failed-over sessions must release the dead backend's load slots";
  EXPECT_EQ(fx.TotalDegradedHoles(), 0);
  EXPECT_EQ(router.health().state(home), BackendState::kEjected);
}

TEST(SessionRouterTest, AllBackendsDownShedsThenProbeRecovers) {
  FleetFixture fx(2);
  SessionRouter::Options opts;
  opts.health.failure_threshold = 1;
  opts.health.probe_interval_ns = 50'000'000;  // 50 ms
  SessionRouter router(fx.Backends(), opts);

  auto doc = router.OpenDocument(kFig3).ValueOrDie();
  EXPECT_EQ(doc->Fetch(doc->Root()), "answer");

  fx.Kill(0);
  fx.Kill(1);
  // Bound-session commands fail over nowhere: the error surfaces (and is
  // latched as retryable kUnavailable — a client retry policy could
  // re-drive it after recovery).
  EXPECT_FALSE(doc->Down(doc->Root()).has_value());
  EXPECT_EQ(doc->last_status().code(), Status::Code::kUnavailable);
  // New opens are shed outright.
  Result<std::unique_ptr<FramedDocument>> refused = router.OpenDocument(kFig3);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), Status::Code::kUnavailable);
  EXPECT_GT(router.stats().sheds, 0);

  // Recovery: once the probe interval elapses, the next open doubles as the
  // half-open probe and readmits the backend it lands on.
  fx.Revive(0);
  fx.Revive(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  auto recovered = router.OpenDocument(kFig3);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(testing::MaterializeToTerm(recovered.value().get()),
            kExpectedAnswer);
  EXPECT_GE(router.stats().health.readmissions, 1);
  // The stranded session recovers too (its binding's backend is alive
  // again; no admission gate on bound sessions).
  EXPECT_EQ(doc->Fetch(doc->Root()), "answer");
}

TEST(SessionRouterTest, MetricsFrameAggregatesBackendsAndFleetStats) {
  FleetFixture fx(3);
  SessionRouter router(fx.Backends(), {});
  auto doc = router.OpenDocument(kFig3).ValueOrDie();
  EXPECT_EQ(doc->Fetch(doc->Root()), "answer");

  auto transport = router.MakeTransport();
  Frame req;
  req.type = MsgType::kMetrics;
  Result<Frame> resp = service::wire::Call(transport.get(), req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp.value().type, MsgType::kMetricsText);
  const std::string& text = resp.value().text;
  // Every backend's snapshot, attributed by backend id, plus the router's
  // own counters.
  EXPECT_NE(text.find("backend=b0 "), std::string::npos) << text;
  EXPECT_NE(text.find("backend=b1 "), std::string::npos) << text;
  EXPECT_NE(text.find("backend=b2 "), std::string::npos) << text;
  EXPECT_NE(text.find("fleet{opens="), std::string::npos) << text;
}

TEST(SessionRouterTest, LxpFramesRouteStatelesslyWithFailover) {
  // Each backend exports the same homes document for remote LXP serving;
  // LXP routing is stateless (hole ids encode their own positions), so any
  // healthy backend can answer any fill — including mid-dialogue failover.
  auto homes = testing::Doc(kHomes);
  std::vector<std::unique_ptr<wrappers::XmlLxpWrapper>> wrappers;
  std::vector<std::unique_ptr<SessionEnvironment>> envs;
  std::vector<std::unique_ptr<MediatorService>> services;
  std::vector<std::unique_ptr<std::atomic<bool>>> dead;
  for (int i = 0; i < 3; ++i) {
    wrappers.push_back(std::make_unique<wrappers::XmlLxpWrapper>(homes.get()));
    envs.push_back(std::make_unique<SessionEnvironment>());
    envs.back()->ExportWrapper("homes.xml", wrappers.back().get());
    services.push_back(std::make_unique<MediatorService>(
        envs.back().get(), MediatorService::Options{}));
    dead.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  std::vector<SessionRouter::Backend> backends;
  for (size_t i = 0; i < services.size(); ++i) {
    backends.push_back(SessionRouter::Backend{
        "b" + std::to_string(i), [&services, &dead, i] {
          return std::make_unique<KillableBackend>(services[i].get(),
                                                   dead[i].get());
        }});
  }
  SessionRouter::Options opts;
  opts.health.failure_threshold = 1;
  opts.health.probe_interval_ns = int64_t{3600} * 1'000'000'000;
  SessionRouter router(std::move(backends), opts);

  auto transport = router.MakeTransport();
  service::wire::FramedLxpWrapper remote(transport.get(), "homes.xml");
  std::string root_hole = remote.GetRoot("homes.xml");
  ASSERT_FALSE(root_hole.empty());
  buffer::FragmentList first = remote.Fill(root_hole);
  ASSERT_FALSE(first.empty());

  // Kill the URI's preferred backend: the SAME dialogue continues on the
  // next candidate, byte-identically (re-fill of the root hole matches).
  size_t uri_home = router.ring().PreferenceFor("homes.xml")[0];
  dead[uri_home]->store(true);
  buffer::FragmentList again = remote.Fill(root_hole);
  ASSERT_EQ(again.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(again[i].ToTerm(), first[i].ToTerm());
  }
  EXPECT_GE(router.stats().health.ejections, 1);
}

// --------------------------------------------------------------------------
// Stacking: a mixd instance serving another instance's virtual view over a
// real TCP hop (Fig. 1's mediators-of-mediators, fleet edition).
// --------------------------------------------------------------------------

TEST(FleetStackingTest, UpperInstanceQueriesLowerViewOverTcpByteIdentical) {
  // Lower instance A: the Fig. 3 mediator, its virtual answer view exported
  // for remote LXP serving.
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  mediator::SourceRegistry lower_sources;
  lower_sources.Register("homesSrc", &homes_nav);
  lower_sources.Register("schoolsSrc", &schools_nav);
  auto lower_plan = mediator::CompileXmas(kFig3).ValueOrDie();
  auto lower =
      mediator::LazyMediator::Build(*lower_plan, lower_sources).ValueOrDie();
  ViewLxpWrapper view(lower->document());

  SessionEnvironment env_a;
  env_a.ExportWrapper("fig3.view", &view);
  MediatorService service_a(&env_a, {});
  net::tcp::TcpServer server_a(&service_a, {});
  ASSERT_TRUE(server_a.Start().ok());

  // Upper instance B: registers A's exported view as a demand-paged remote
  // source and answers its own XMAS queries over it.
  SessionEnvironment env_b;
  env_b.RegisterWrapperFactory(
      "lower", RemoteSourceFactory("127.0.0.1", server_a.port(), "fig3.view"),
      "fig3.view");
  MediatorService service_b(&env_b, {});

  auto doc = FramedDocument::Open(
                 &service_b,
                 "CONSTRUCT <schools_found> $S {$S} </schools_found> {} "
                 "WHERE lower answer.med_home.school $S")
                 .ValueOrDie();
  // Byte-identical to the in-process stacked-mediator evaluation
  // (tests/mediator_test.cc StackedMediators) — the TCP hop, the LXP
  // re-encoding, and the session boundary all preserved the view.
  EXPECT_EQ(testing::MaterializeToTerm(doc.get()),
            "schools_found[school[dir[Smith],zip[91220]],"
            "school[dir[Bar],zip[91220]],school[dir[Hart],zip[91223]]]");

  server_a.Stop();
}

}  // namespace
}  // namespace mix::fleet
