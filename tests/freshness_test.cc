// The warehousing-vs-virtual argument of Section 1: "when the user is
// interested in the most recent data available ... a virtual,
// demand-driven approach has to be employed. ... the data will have to
// reflect the ever-changing availability of books."
//
// A warehouse is a one-time materialization of the view; the virtual
// mediator re-derives every answer from the live sources. These tests
// update a source *after* view definition and check who notices.
#include <gtest/gtest.h>

#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "test_util.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"

namespace mix::mediator {
namespace {

PlanPtr StockView() {
  auto q = xmas::ParseQuery(
      "CONSTRUCT <instock> $T {$T} </instock> {} "
      "WHERE store books.book $B AND $B stock._ $K AND $K > 0 "
      "AND $B title._ $T");
  return TranslateQuery(q.value()).ValueOrDie();
}

TEST(FreshnessTest, VirtualViewSeesSourceUpdates) {
  // Live store document; the mediator is built BEFORE the update.
  xml::Document store;
  xml::Node* books = store.NewElement("books");
  auto add_book = [&](const std::string& title, const std::string& stock) {
    xml::Node* book = store.NewElement("book");
    xml::Node* t = store.NewElement("title");
    store.AppendChild(t, store.NewText(title));
    xml::Node* k = store.NewElement("stock");
    store.AppendChild(k, store.NewText(stock));
    store.AppendChild(book, t);
    store.AppendChild(book, k);
    store.AppendChild(books, book);
  };
  add_book("Silent Compass", "3");
  add_book("Broken Lantern", "0");
  store.set_root(books);

  xml::DocNavigable nav(&store);
  SourceRegistry sources;
  sources.Register("store", &nav);
  auto plan = StockView();
  auto virtual_mediator = LazyMediator::Build(*plan, sources).ValueOrDie();

  // The warehouse materializes the view once, up front.
  auto warehouse_copy = xml::Materialize(virtual_mediator->document());
  xml::DocNavigable warehouse(warehouse_copy.get());

  EXPECT_EQ(testing::MaterializeToTerm(&warehouse),
            "instock[Silent Compass]");

  // New stock arrives after the warehouse load.
  add_book("Golden River", "7");

  // The next *query session* — in MIX, composing the query with the view
  // and instantiating the plan happens per query (Section 3's
  // preprocessing), so operator caches never outlive a session — sees the
  // update; the warehouse serves stale data until reloaded.
  auto next_session = LazyMediator::Build(*plan, sources).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(next_session->document()),
            "instock[Silent Compass,Golden River]");
  EXPECT_EQ(testing::MaterializeToTerm(&warehouse),
            "instock[Silent Compass]");
}

TEST(FreshnessTest, EveryNavigationReDerivesFromLiveSources) {
  xml::Document store;
  xml::Node* books = store.NewElement("books");
  xml::Node* book = store.NewElement("book");
  xml::Node* title = store.NewElement("title");
  store.AppendChild(title, store.NewText("Hidden Garden"));
  xml::Node* stock = store.NewElement("stock");
  xml::Node* stock_value = store.NewText("5");
  store.AppendChild(stock, stock_value);
  store.AppendChild(book, title);
  store.AppendChild(book, stock);
  store.AppendChild(books, book);
  store.set_root(books);

  xml::DocNavigable nav(&store);
  SourceRegistry sources;
  sources.Register("store", &nav);
  auto plan = StockView();
  auto med = LazyMediator::Build(*plan, sources).ValueOrDie();

  EXPECT_EQ(testing::MaterializeToTerm(med->document()),
            "instock[Hidden Garden]");

  // The book sells out: mutate the live stock value in place.
  stock_value->label = "0";
  // A fresh query session sees the empty (but well-formed) answer.
  auto fresh = LazyMediator::Build(*plan, sources).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(fresh->document()), "instock");
}

}  // namespace
}  // namespace mix::mediator
