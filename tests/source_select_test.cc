#include <gtest/gtest.h>

#include "algebra/get_descendants_op.h"
#include "algebra/select_op.h"
#include "algebra/source_op.h"
#include "test_util.h"
#include "xml/doc_navigable.h"

namespace mix::algebra {
namespace {

using pathexpr::PathExpr;

TEST(SourceOpTest, SingletonBindingList) {
  auto doc = testing::Doc("homes[home[zip[1]]]");
  xml::DocNavigable nav(doc.get());
  SourceOp source(&nav, "R");

  EXPECT_EQ(source.schema(), (VarList{"R"}));
  auto b = source.FirstBinding();
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(source.NextBinding(*b).has_value());

  ValueRef root = source.Attr(*b, "R");
  EXPECT_EQ(root.nav->Fetch(root.id), "homes");
}

TEST(SourceOpTest, BsTreeShape) {
  auto doc = testing::Doc("r[x]");
  xml::DocNavigable nav(doc.get());
  SourceOp source(&nav, "V");
  EXPECT_EQ(testing::StreamToTerm(&source), "bs[b[V[r[x]]]]");
}

TEST(AtomHelpersTest, AtomOfLeafAndTree) {
  auto doc = testing::Doc("r[zip[91220],home[addr[x],zip[2]]]");
  xml::DocNavigable nav(doc.get());
  NodeId root = nav.Root();
  auto zip = nav.Down(root);
  auto leaf = nav.Down(*zip);
  EXPECT_EQ(AtomOf({&nav, *leaf}), "91220");
  auto home = nav.Right(*zip);
  EXPECT_EQ(AtomOf({&nav, *home}), "home[addr[x],zip[2]]");
  EXPECT_EQ(TermOfValue({&nav, *zip}), "zip[91220]");
}

TEST(AtomHelpersTest, CompareAtomsNumericAware) {
  EXPECT_EQ(CompareAtoms("10", "9"), 1);    // numeric, not lexicographic
  EXPECT_EQ(CompareAtoms("9", "10"), -1);
  EXPECT_EQ(CompareAtoms("2.5", "2.50"), 0);
  EXPECT_LT(CompareAtoms("abc", "abd"), 0);
  EXPECT_EQ(CompareAtoms("x", "x"), 0);
  // Mixed: falls back to string comparison.
  EXPECT_NE(CompareAtoms("10", "1x"), 0);
}

/// Builds source → getDescendants(p) over the given doc for select tests.
struct Fixture {
  explicit Fixture(const std::string& term, const std::string& path)
      : doc(testing::Doc(term)),
        nav(doc.get()),
        source(&nav, "R"),
        gd(&source, "R", PathExpr::Parse(path).ValueOrDie(), "X") {}

  std::unique_ptr<xml::Document> doc;
  xml::DocNavigable nav;
  SourceOp source;
  GetDescendantsOp gd;
};

TEST(SelectOpTest, FiltersByConstant) {
  Fixture f("r[item[a[1],b[x]],item[a[2],b[y]],item[a[1],b[z]]]", "item.a._");
  SelectOp select(&f.gd,
                  BindingPredicate::VarConst("X", CompareOp::kEq, "1"));
  EXPECT_EQ(select.schema(), f.gd.schema());

  int count = 0;
  for (auto b = select.FirstBinding(); b.has_value();
       b = select.NextBinding(*b)) {
    EXPECT_EQ(AtomOf(select.Attr(*b, "X")), "1");
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(SelectOpTest, VarVarPredicate) {
  Fixture f("r[p[v[3],w[3]],p[v[1],w[2]]]", "p");
  GetDescendantsOp v(&f.gd, "X", PathExpr::Parse("v._").ValueOrDie(), "V");
  GetDescendantsOp w(&v, "X", PathExpr::Parse("w._").ValueOrDie(), "W");
  SelectOp select(&w, BindingPredicate::VarVar("V", CompareOp::kEq, "W"));
  auto b = select.FirstBinding();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(AtomOf(select.Attr(*b, "V")), "3");
  EXPECT_FALSE(select.NextBinding(*b).has_value());
}

TEST(SelectOpTest, NumericComparisonOps) {
  Fixture f("r[n[5],n[12],n[7],n[3]]", "n._");
  SelectOp select(&f.gd,
                  BindingPredicate::VarConst("X", CompareOp::kGt, "6"));
  std::vector<std::string> hits;
  for (auto b = select.FirstBinding(); b.has_value();
       b = select.NextBinding(*b)) {
    hits.push_back(AtomOf(select.Attr(*b, "X")));
  }
  // Numeric-aware: 12 > 6 even though "12" < "6" lexicographically.
  EXPECT_EQ(hits, (std::vector<std::string>{"12", "7"}));
}

TEST(SelectOpTest, EmptyResult) {
  Fixture f("r[n[1]]", "n._");
  SelectOp select(&f.gd,
                  BindingPredicate::VarConst("X", CompareOp::kEq, "nope"));
  EXPECT_FALSE(select.FirstBinding().has_value());
}

TEST(SelectOpTest, ResumeFromStaleBinding) {
  Fixture f("r[n[1],n[2],n[1],n[3],n[1]]", "n._");
  SelectOp select(&f.gd,
                  BindingPredicate::VarConst("X", CompareOp::kEq, "1"));
  auto b1 = select.FirstBinding();
  auto b2 = select.NextBinding(*b1);
  auto b3 = select.NextBinding(*b2);
  ASSERT_TRUE(b3.has_value());
  // Navigate again from the stale first binding: same logical position
  // (getDescendants handles differ, so compare values, not raw ids).
  auto again = select.NextBinding(*b1);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(AtomOf(select.Attr(*again, "X")),
            AtomOf(select.Attr(*b2, "X")));
  EXPECT_EQ(AtomOf(select.Attr(*b1, "X")), "1");
}

TEST(PredicateTest, ToString) {
  EXPECT_EQ(BindingPredicate::VarVar("V1", CompareOp::kEq, "V2").ToString(),
            "$V1=$V2");
  EXPECT_EQ(BindingPredicate::VarConst("X", CompareOp::kGe, "5").ToString(),
            "$X>='5'");
}

}  // namespace
}  // namespace mix::algebra
