#include <gtest/gtest.h>

#include "test_util.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/parser.h"
#include "xml/random_tree.h"
#include "xml/tree.h"

namespace mix::xml {
namespace {

TEST(TreeTest, BuildAndLinks) {
  Document doc;
  Node* root = doc.NewElement("r");
  Node* a = doc.NewElement("a");
  Node* b = doc.NewText("hello");
  doc.AppendChild(root, a);
  doc.AppendChild(root, b);
  doc.set_root(root);

  EXPECT_EQ(root->first_child(), a);
  EXPECT_EQ(a->right_sibling(), b);
  EXPECT_EQ(b->right_sibling(), nullptr);
  EXPECT_EQ(a->parent, root);
  EXPECT_EQ(b->pos_in_parent, 1);
  EXPECT_EQ(doc.node_count(), 3);
  EXPECT_EQ(doc.NodeAt(a->index), a);
}

TEST(TreeTest, TreeEqualsIgnoresKind) {
  Document d1;
  Node* t = d1.NewText("x");
  Document d2;
  Node* e = d2.NewElement("x");
  EXPECT_TRUE(TreeEquals(t, e));
}

TEST(TreeTest, TreeEqualsStructure) {
  auto a = ParseTerm("r[a,b[c]]").ValueOrDie();
  auto b = ParseTerm("r[a,b[c]]").ValueOrDie();
  auto c = ParseTerm("r[a,b[d]]").ValueOrDie();
  EXPECT_TRUE(TreeEquals(a->root(), b->root()));
  EXPECT_FALSE(TreeEquals(a->root(), c->root()));
}

TEST(TreeTest, ToTermAndSubtreeSize) {
  auto doc = ParseTerm("r[a[x,y],b]").ValueOrDie();
  EXPECT_EQ(ToTerm(doc->root()), "r[a[x,y],b]");
  EXPECT_EQ(SubtreeSize(doc->root()), 5);
}

TEST(ParserTest, BasicDocument) {
  auto doc = Parse("<homes><home><zip>91220</zip></home></homes>").ValueOrDie();
  EXPECT_EQ(ToTerm(doc->root()), "homes[home[zip[91220]]]");
}

TEST(ParserTest, SelfClosingAndMixedWhitespace) {
  auto doc = Parse("<r>\n  <a/>\n  <b> text here </b>\n</r>").ValueOrDie();
  EXPECT_EQ(ToTerm(doc->root()), "r[a,b[text here]]");
}

TEST(ParserTest, AttributesBecomeChildElements) {
  auto doc = Parse("<li class=\"book\"><span>x</span></li>").ValueOrDie();
  EXPECT_EQ(ToTerm(doc->root()), "li[@class[book],span[x]]");
}

TEST(ParserTest, EntitiesDecoded) {
  auto doc = Parse("<a>x &lt; y &amp; z &#65;</a>").ValueOrDie();
  EXPECT_EQ(doc->root()->children[0]->label, "x < y & z A");
}

TEST(ParserTest, CommentsAndPrologSkipped) {
  auto doc =
      Parse("<?xml version=\"1.0\"?><!-- hi --><r><!-- inner --><a/></r>")
          .ValueOrDie();
  EXPECT_EQ(ToTerm(doc->root()), "r[a]");
}

TEST(ParserTest, MismatchedTagIsError) {
  auto r = Parse("<a><b></a></b>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kParseError);
  EXPECT_NE(r.status().ToString().find("mismatched"), std::string::npos);
}

TEST(ParserTest, TrailingContentIsError) {
  EXPECT_FALSE(Parse("<a/><b/>").ok());
}

TEST(ParserTest, UnterminatedIsError) {
  EXPECT_FALSE(Parse("<a><b>").ok());
}

TEST(TermParserTest, RoundTrip) {
  const char* terms[] = {
      "r", "r[a]", "r[a,b,c]", "bs[b[H[home[addr[La Jolla],zip[91220]]]]]",
      "r[list[a,b],x[y[z]]]"};
  for (const char* t : terms) {
    auto doc = ParseTerm(t).ValueOrDie();
    EXPECT_EQ(ToTerm(doc->root()), t);
  }
}

TEST(TermParserTest, EmptyChildListIsElement) {
  auto doc = ParseTerm("r[]").ValueOrDie();
  EXPECT_EQ(doc->root()->kind, NodeKind::kElement);
  EXPECT_TRUE(doc->root()->children.empty());
}

TEST(TermParserTest, Errors) {
  EXPECT_FALSE(ParseTerm("r[a").ok());
  EXPECT_FALSE(ParseTerm("r[a]]").ok());
  EXPECT_FALSE(ParseTerm("").ok());
}

TEST(SerializerTest, EscapesSpecials) {
  Document doc;
  Node* r = doc.NewElement("r");
  doc.AppendChild(r, doc.NewText("a<b&c"));
  doc.set_root(r);
  EXPECT_EQ(ToXml(r), "<r>a&lt;b&amp;c</r>");
}

TEST(SerializerTest, XmlParseSerializeFixpoint) {
  auto doc = Parse("<r><a>1</a><b><c/></b></r>").ValueOrDie();
  std::string xml = ToXml(doc->root());
  auto doc2 = Parse(xml).ValueOrDie();
  EXPECT_TRUE(TreeEquals(doc->root(), doc2->root()));
}

TEST(DocNavigableTest, FullNavigation) {
  auto doc = ParseTerm("r[a[x],b]").ValueOrDie();
  DocNavigable nav(doc.get());
  NodeId root = nav.Root();
  EXPECT_EQ(nav.Fetch(root), "r");
  auto a = nav.Down(root);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(nav.Fetch(*a), "a");
  auto x = nav.Down(*a);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(nav.Fetch(*x), "x");
  EXPECT_FALSE(nav.Down(*x).has_value());
  EXPECT_FALSE(nav.Right(*x).has_value());
  auto b = nav.Right(*a);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(nav.Fetch(*b), "b");
  EXPECT_FALSE(nav.Right(*b).has_value());
}

TEST(DocNavigableTest, NavigationFromStaleIdsWorks) {
  auto doc = ParseTerm("r[a,b,c]").ValueOrDie();
  DocNavigable nav(doc.get());
  auto a = nav.Down(nav.Root());
  auto b = nav.Right(*a);
  auto c = nav.Right(*b);
  // Go back to the old pointer and navigate again.
  EXPECT_EQ(nav.Fetch(*a), "a");
  auto b2 = nav.Right(*a);
  EXPECT_EQ(*b2, *b);
  EXPECT_EQ(nav.Fetch(*c), "c");
}

TEST(MaterializeTest, CopiesWholeTree) {
  auto doc = ParseTerm("r[a[x,y],b[z]]").ValueOrDie();
  DocNavigable nav(doc.get());
  auto copy = Materialize(&nav);
  EXPECT_TRUE(TreeEquals(doc->root(), copy->root()));
}

TEST(MaterializeTest, PrefixStopsEarly) {
  auto doc = ParseTerm("r[a,b,c,d,e]").ValueOrDie();
  DocNavigable nav(doc.get());
  Document out;
  Node* root = MaterializePrefixInto(&nav, &out, 3);
  // Root + two children fit in the budget of 3.
  EXPECT_EQ(SubtreeSize(root), 3);
}

TEST(RandomTreeTest, DeterministicInSeed) {
  RandomTreeOptions options;
  options.seed = 99;
  auto a = RandomTree(options);
  auto b = RandomTree(options);
  EXPECT_TRUE(TreeEquals(a->root(), b->root()));
  options.seed = 100;
  auto c = RandomTree(options);
  EXPECT_FALSE(TreeEquals(a->root(), c->root()));
}

TEST(RandomTreeTest, HomesAndSchoolsShape) {
  auto homes = MakeHomesDoc(3, 2);
  EXPECT_EQ(homes->root()->label, "homes");
  ASSERT_EQ(homes->root()->children.size(), 3u);
  const Node* home = homes->root()->children[0];
  EXPECT_EQ(home->label, "home");
  ASSERT_EQ(home->children.size(), 2u);
  EXPECT_EQ(home->children[0]->label, "addr");
  EXPECT_EQ(home->children[1]->label, "zip");

  auto schools = MakeSchoolsDoc(2, 2);
  EXPECT_EQ(schools->root()->label, "schools");
  EXPECT_EQ(schools->root()->children[0]->children[0]->label, "dir");
}

TEST(RandomTreeTest, ZipForDeterminesJoinKeys) {
  // A home and school generated with the same seed at position i share zip.
  EXPECT_EQ(ZipFor(5, 10, 7), ZipFor(5, 10, 7));
  std::string z = ZipFor(0, 1, 7);
  EXPECT_EQ(z, "91000");  // single zip value
}

}  // namespace
}  // namespace mix::xml
