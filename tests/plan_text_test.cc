// Textual plan round-trip (mediator/plan_text.h).
#include <gtest/gtest.h>

#include "mediator/plan_text.h"
#include "mediator/translate.h"
#include "mediator/instantiate.h"
#include "mediator/reference_eval.h"
#include "test_util.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"

namespace mix::mediator {
namespace {

PlanPtr Fig3Plan() {
  auto q = xmas::ParseQuery(
      "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} "
      "</answer> {} "
      "WHERE homesSrc homes.home $H AND $H zip._ $V1 "
      "AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2");
  return TranslateQuery(q.value()).ValueOrDie();
}

TEST(PlanTextTest, Fig3RoundTrip) {
  PlanPtr plan = Fig3Plan();
  std::string text = plan->ToString();
  auto parsed = ParsePlanText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value()->ToString(), text);
}

TEST(PlanTextTest, AllOperatorsRoundTrip) {
  using algebra::BindingPredicate;
  using algebra::CompareOp;
  PlanPtr left = PlanNode::GetDescendants(PlanNode::Source("s1", "R1"), "R1",
                                          "a.(b|c)*._", "X");
  left->use_sigma = true;
  left = PlanNode::Select(std::move(left),
                          BindingPredicate::VarConst("X", CompareOp::kGe, "5"));
  left = PlanNode::Distinct(std::move(left));
  left = PlanNode::OrderBy(std::move(left), {"X"});
  left = PlanNode::Materialize(std::move(left));
  PlanPtr right = PlanNode::GetDescendants(PlanNode::Source("s2", "R2"), "R2",
                                           "k", "Y");
  PlanPtr join =
      PlanNode::Join(std::move(left), std::move(right),
                     BindingPredicate::VarVar("X", CompareOp::kNe, "Y"));
  PlanPtr plan = PlanNode::GroupBy(std::move(join), {"X", "Y"}, "R1", "L");
  plan = PlanNode::Const(std::move(plan), "text, with ] and '", "T");
  plan = PlanNode::Concatenate(std::move(plan), "L", "T", "Z");
  plan = PlanNode::WrapList(std::move(plan), "Z", "W");
  plan = PlanNode::CreateElement(std::move(plan), false, "X", "W", "E");
  plan = PlanNode::Rename(std::move(plan), "E", "Out");
  plan = PlanNode::Project(std::move(plan), {"Out"});
  PlanPtr root = PlanNode::TupleDestroy(std::move(plan), "Out");

  std::string text = root->ToString();
  auto parsed = ParsePlanText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  EXPECT_EQ(parsed.value()->ToString(), text);
}

TEST(PlanTextTest, ParsedPlanExecutes) {
  PlanPtr plan = Fig3Plan();
  auto parsed = ParsePlanText(plan->ToString()).ValueOrDie();

  auto homes = testing::Doc("homes[home[addr[A],zip[1]]]");
  auto schools = testing::Doc("schools[school[dir[D],zip[1]]]");
  xml::DocNavigable hn(homes.get()), sn(schools.get());
  xml::DocNavigable hn2(homes.get()), sn2(schools.get());
  SourceRegistry s1, s2;
  s1.Register("homesSrc", &hn);
  s1.Register("schoolsSrc", &sn);
  s2.Register("homesSrc", &hn2);
  s2.Register("schoolsSrc", &sn2);
  auto m1 = LazyMediator::Build(*plan, s1).ValueOrDie();
  auto m2 = LazyMediator::Build(*parsed, s2).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(m1->document()),
            testing::MaterializeToTerm(m2->document()));
}

TEST(PlanTextTest, OccurrenceOrderByRoundTrip) {
  PlanPtr plan = PlanNode::TupleDestroy(
      PlanNode::WrapList(
          PlanNode::OrderByOccurrence(
              PlanNode::GetDescendants(PlanNode::Source("s", "R"), "R", "a",
                                       "A"),
              {"A"}),
          "A", "W"),
      "W");
  std::string text = plan->ToString();
  EXPECT_NE(text.find("occurrence"), std::string::npos);
  auto parsed = ParsePlanText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value()->ToString(), text);
  EXPECT_TRUE(parsed.value()
                  ->children[0]
                  ->children[0]
                  ->order_by_occurrence);
}

TEST(PlanTextTest, Errors) {
  EXPECT_FALSE(ParsePlanText("").ok());
  EXPECT_FALSE(ParsePlanText("nonsense[]").ok());
  EXPECT_FALSE(ParsePlanText("tupleDestroy[$X]").ok());  // missing child
  EXPECT_FALSE(ParsePlanText("tupleDestroy[$X]\n   source[s -> $X]").ok());
  EXPECT_FALSE(
      ParsePlanText("tupleDestroy[$X]\n  source[s -> $X]\n  source[t -> $Y]")
          .ok());  // extra subtree
  EXPECT_FALSE(ParsePlanText("select[oops]\n  source[s -> $X]").ok());
}

}  // namespace
}  // namespace mix::mediator
