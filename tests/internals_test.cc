// Low-level invariants: ValueSpace wrapping, id-ownership checks, and the
// abort-on-misuse contracts of the Skolem-id machinery.
#include <gtest/gtest.h>

#include "algebra/source_op.h"
#include "algebra/value_space.h"
#include "test_util.h"
#include "xml/doc_navigable.h"

namespace mix::algebra {
namespace {

TEST(ValueSpaceTest, WrapUnwrapRoundTrip) {
  auto doc = testing::Doc("r[a[x],b]");
  xml::DocNavigable nav(doc.get());
  ValueSpace space(NextOperatorInstance());

  ValueRef root{&nav, nav.Root()};
  NodeId wrapped = space.Wrap(root);
  EXPECT_TRUE(space.Owns(wrapped));
  ValueRef back = space.Unwrap(wrapped);
  EXPECT_EQ(back.nav, &nav);
  EXPECT_EQ(back.id, nav.Root());
}

TEST(ValueSpaceTest, ForwardedNavigationRewraps) {
  auto doc = testing::Doc("r[a[x],b]");
  xml::DocNavigable nav(doc.get());
  ValueSpace space(NextOperatorInstance());
  NodeId wrapped = space.Wrap({&nav, nav.Root()});

  auto a = space.Down(wrapped);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(space.Owns(*a));
  EXPECT_EQ(space.Fetch(*a), "a");
  auto b = space.Right(*a);
  EXPECT_EQ(space.Fetch(*b), "b");
  EXPECT_FALSE(space.Right(*b).has_value());
  auto x = space.Down(*a);
  EXPECT_EQ(space.Fetch(*x), "x");
  EXPECT_FALSE(space.Down(*x).has_value());
}

TEST(ValueSpaceTest, SharedHandlePerNavigable) {
  auto doc = testing::Doc("r[a,b]");
  xml::DocNavigable nav(doc.get());
  ValueSpace space(NextOperatorInstance());
  NodeId w1 = space.Wrap({&nav, nav.Root()});
  NodeId w2 = space.Wrap({&nav, *nav.Down(nav.Root())});
  // Same navigable -> same handle component.
  EXPECT_EQ(w1.IntAt(1), w2.IntAt(1));
}

TEST(ValueSpaceDeathTest, ForeignIdsRejected) {
  auto doc = testing::Doc("r[a]");
  xml::DocNavigable nav(doc.get());
  ValueSpace space1(NextOperatorInstance());
  ValueSpace space2(NextOperatorInstance());
  NodeId wrapped = space1.Wrap({&nav, nav.Root()});
  EXPECT_FALSE(space2.Owns(wrapped));
  EXPECT_DEATH(space2.Unwrap(wrapped), "foreign");
  EXPECT_DEATH(space1.Unwrap(nav.Root()), "foreign");
}

TEST(OperatorDeathTest, ForeignBindingIdsRejected) {
  auto doc = testing::Doc("r[a]");
  xml::DocNavigable nav(doc.get());
  SourceOp source1(&nav, "A");
  SourceOp source2(&nav, "A");
  NodeId b = *source1.FirstBinding();
  // Another operator instance must refuse the id.
  EXPECT_DEATH(source2.NextBinding(b), "foreign binding id");
}

TEST(NodeIdDeathTest, ComponentTypeMismatch) {
  NodeId id("t", {int64_t{1}, std::string("s")});
  EXPECT_DEATH(id.StrAt(0), "not a string");
  EXPECT_DEATH(id.IntAt(1), "not an int");
  EXPECT_DEATH(id.IdAt(0), "not a NodeId");
}

TEST(DocNavigableDeathTest, CrossDocumentIdsRejected) {
  auto doc1 = testing::Doc("r[a]");
  auto doc2 = testing::Doc("r[b]");
  xml::DocNavigable nav1(doc1.get());
  xml::DocNavigable nav2(doc2.get());
  EXPECT_DEATH(nav2.Fetch(nav1.Root()), "foreign node-id");
}

}  // namespace
}  // namespace mix::algebra
