// Integration tests for the mixd service layer: session lifecycle, framed
// navigation equivalence against in-process evaluation (the Fig. 3 running
// example), deadline expiry, overload rejection, remote-LXP serving, and a
// multi-worker concurrency smoke test.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer.h"
#include "client/client.h"
#include "client/framed_document.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "service/service.h"
#include "service/session.h"
#include "service/wire.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/doc_navigable.h"

namespace mix::service {
namespace {

using client::FramedDocument;
using wire::Frame;
using wire::MsgType;

// The Fig. 3 running example (same fixture as tests/mediator_test.cc).
const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

const char* kHomes =
    "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]],"
    "home[addr[Nowhere],zip[99999]]]";
const char* kSchools =
    "schools[school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],"
    "school[dir[Hart],zip[91223]]]";

const char* kExpectedAnswer =
    "answer["
    "med_home[home[addr[La Jolla],zip[91220]],"
    "school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]]],"
    "med_home[home[addr[El Cajon],zip[91223]],school[dir[Hart],zip[91223]]]]";

/// Decorator that sleeps in Fetch — a "distant source" that makes one
/// navigation command take long enough to pile requests up behind it.
class SlowNavigable : public Navigable {
 public:
  SlowNavigable(Navigable* inner, std::chrono::milliseconds delay)
      : inner_(inner), delay_(delay) {}

  NodeId Root() override { return inner_->Root(); }
  std::optional<NodeId> Down(const NodeId& p) override {
    return inner_->Down(p);
  }
  std::optional<NodeId> Right(const NodeId& p) override {
    return inner_->Right(p);
  }
  Label Fetch(const NodeId& p) override {
    std::this_thread::sleep_for(delay_);
    return inner_->Fetch(p);
  }

 private:
  Navigable* inner_;
  std::chrono::milliseconds delay_;
};

/// A kFetch request for `doc`'s root — the command the deadline/overload
/// tests queue up (Fetch resolves the first binding through the sources, so
/// it is the slow one when a source is slow).
std::optional<Frame> MakeFetchRoot(FramedDocument* doc) {
  Frame f;
  f.type = MsgType::kFetch;
  f.session = doc->session_id();
  f.node = doc->Root();
  if (!f.node.valid()) return std::nullopt;
  return f;
}

/// Environment with per-session wrapper-backed homes/schools sources (the
/// full service stack: session-private BufferComponents over XmlLxpWrapper).
class ServiceFixture {
 public:
  ServiceFixture() : homes_(testing::Doc(kHomes)), schools_(testing::Doc(kSchools)) {
    env_.RegisterWrapperFactory(
        "homesSrc",
        [this] { return std::make_unique<wrappers::XmlLxpWrapper>(homes_.get()); },
        "homes.xml");
    env_.RegisterWrapperFactory(
        "schoolsSrc",
        [this] { return std::make_unique<wrappers::XmlLxpWrapper>(schools_.get()); },
        "schools.xml");
  }

  SessionEnvironment& env() { return env_; }
  const xml::Document* homes() const { return homes_.get(); }

 private:
  std::unique_ptr<xml::Document> homes_;
  std::unique_ptr<xml::Document> schools_;
  SessionEnvironment env_;
};

TEST(ServiceTest, SessionLifecycle) {
  ServiceFixture fx;
  MediatorService service(&fx.env(), {});

  auto doc = FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_NE(doc->session_id(), 0u);
  EXPECT_EQ(service.registry().LiveIds().size(), 1u);

  NodeId root = doc->Root();
  EXPECT_TRUE(root.valid());
  EXPECT_EQ(doc->Fetch(root), "answer");
  EXPECT_TRUE(doc->last_status().ok());

  EXPECT_TRUE(doc->Close().ok());
  EXPECT_EQ(service.registry().LiveIds().size(), 0u);

  // Navigation after close: ⊥ result, kNotFound latched, no crash.
  EXPECT_FALSE(doc->Down(root).has_value());
  EXPECT_EQ(doc->last_status().code(), Status::Code::kNotFound);
  // Second close reports the server's kNotFound.
  EXPECT_EQ(doc->Close().code(), Status::Code::kNotFound);

  ServiceMetricsSnapshot snap = service.Metrics();
  EXPECT_EQ(snap.sessions_opened, 1);
  EXPECT_EQ(snap.sessions_closed, 1);
  EXPECT_EQ(snap.sessions_open, 0);
  EXPECT_GT(snap.frames_in, 0);
  EXPECT_EQ(snap.frames_in, snap.frames_out);
}

TEST(ServiceTest, OpenRejectsBadQuery) {
  ServiceFixture fx;
  MediatorService service(&fx.env(), {});
  auto doc = FramedDocument::Open(&service, "THIS IS NOT XMAS");
  EXPECT_FALSE(doc.ok());
}

TEST(ServiceTest, FramedAnswerMatchesInProcessEvaluation) {
  ServiceFixture fx;
  MediatorService service(&fx.env(), {});

  // In-process evaluation of the same plan over the same documents.
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  mediator::SourceRegistry sources;
  sources.Register("homesSrc", &homes_nav);
  sources.Register("schoolsSrc", &schools_nav);
  auto plan = mediator::CompileXmas(kFig3).ValueOrDie();
  auto in_process = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
  std::string local_term = testing::MaterializeToTerm(in_process->document());

  // The framed session must produce the identical term — every d/r/f the
  // materializer issues crosses the wire.
  auto doc = FramedDocument::Open(&service, kFig3).ValueOrDie();
  std::string remote_term = testing::MaterializeToTerm(doc.get());
  EXPECT_EQ(remote_term, local_term);
  EXPECT_EQ(remote_term, kExpectedAnswer);
  EXPECT_TRUE(doc->last_status().ok());
}

TEST(ServiceTest, VectoredNavigationOverFrames) {
  ServiceFixture fx;
  MediatorService service(&fx.env(), {});
  auto doc = FramedDocument::Open(&service, kFig3).ValueOrDie();

  std::vector<NodeId> med_homes;
  doc->DownAll(doc->Root(), &med_homes);
  ASSERT_EQ(med_homes.size(), 2u);
  for (const NodeId& mh : med_homes) EXPECT_EQ(doc->Fetch(mh), "med_home");

  // σ as a frame: from the first child of med_home[0] (a home element),
  // select the following sibling labeled "school".
  std::optional<NodeId> home = doc->Down(med_homes[0]);
  ASSERT_TRUE(home.has_value());
  std::optional<NodeId> school =
      doc->SelectSibling(*home, LabelPredicate::Equals("school"));
  ASSERT_TRUE(school.has_value());
  EXPECT_EQ(doc->Fetch(*school), "school");

  // NthChild and NextSiblings.
  std::optional<NodeId> second = doc->NthChild(doc->Root(), 1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, med_homes[1]);
  std::vector<NodeId> sibs;
  doc->NextSiblings(med_homes[0], -1, &sibs);
  ASSERT_EQ(sibs.size(), 1u);
  EXPECT_EQ(sibs[0], med_homes[1]);

  // FetchSubtree snapshots the whole answer in one frame.
  std::vector<SubtreeEntry> entries;
  doc->FetchSubtree(doc->Root(), -1, &entries);
  EXPECT_FALSE(entries.empty());
  EXPECT_EQ(entries[0].label.name(), "answer");

  // The XmlElement client layer works unchanged over the framed session
  // (transparency across the service boundary).
  client::VirtualXmlDocument vdoc(doc.get());
  client::XmlElement answer = vdoc.Root();
  EXPECT_EQ(answer.Name(), "answer");
  EXPECT_EQ(answer.Children().size(), 2u);
  EXPECT_EQ(answer.FirstChild().Child("home").Child("zip").Text(), "91220");
}

TEST(ServiceTest, MalformedFramesLeaveSessionUsable) {
  ServiceFixture fx;
  MediatorService service(&fx.env(), {});
  auto doc = FramedDocument::Open(&service, kFig3).ValueOrDie();
  NodeId root = doc->Root();

  // A parade of garbage: truncated, corrupt magic, bogus type. Every one
  // comes back as a kError frame (or transport error), never a crash.
  for (const std::string& junk :
       {std::string(), std::string("\x01\x02\x03"), std::string(40, '\xff'),
        std::string("\x00\x00\x00\x00MX\x01\x20", 8)}) {
    Result<std::string> resp = service.RoundTrip(junk);
    ASSERT_TRUE(resp.ok());
    Result<Frame> decoded = wire::DecodeFrame(resp.value());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().type, MsgType::kError);
    EXPECT_FALSE(decoded.value().ToStatus().ok());
  }

  // A well-formed frame with an unknown session: error frame, not a crash.
  Frame stray;
  stray.type = MsgType::kDown;
  stray.session = 424242;
  stray.node = root;
  Result<Frame> r = wire::Call(&service, stray);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);

  // The existing session is untouched by all of the above.
  EXPECT_EQ(doc->Fetch(root), "answer");
  EXPECT_EQ(testing::MaterializeToTerm(doc.get()), kExpectedAnswer);
}

TEST(ServiceTest, IdleSessionsAreEvicted) {
  ServiceFixture fx;
  MediatorService::Options options;
  options.session_idle_ttl_ns = 1;  // everything idle >1ns is reclaimable
  MediatorService service(&fx.env(), options);

  auto doc = FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_EQ(doc->Fetch(doc->Root()), "answer");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(service.registry().EvictIdle(), 1u);

  EXPECT_FALSE(doc->Down(doc->Root()).has_value());
  EXPECT_EQ(doc->last_status().code(), Status::Code::kNotFound);
  EXPECT_EQ(service.Metrics().sessions_evicted, 1);
}

TEST(ServiceTest, TouchedSessionDoesNotCauseSweepScanStorm) {
  ServiceFixture fx;
  MediatorService::Options options;
  options.session_idle_ttl_ns = 30'000'000;  // 30 ms
  MediatorService service(&fx.env(), options);

  auto doc = FramedDocument::Open(&service, kFig3).ValueOrDie();
  NodeId root = doc->Root();
  EXPECT_EQ(doc->Fetch(root), "answer");
  // Everything is fresh: the expiry hint is in the future, so neither the
  // Open nor the commands paid a registry scan.
  EXPECT_EQ(service.registry().counters().sweep_scans, 0);

  // Let the TTL lapse, then keep the session hot with a burst of commands.
  // The hint still points at the session's ORIGINAL expiry, so the first
  // command finds it in the past and pays one (no-op) scan. That scan must
  // recompute the hint from the touched activity time — before that fix the
  // hint stayed stale and every one of these commands scanned.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(doc->Fetch(root), "answer");
  }
  int64_t scans = service.registry().counters().sweep_scans;
  EXPECT_GE(scans, 1);
  EXPECT_LE(scans, 3) << "stale expiry hint: every command is scanning";
  // The kept session survived its own sweeps mid-dialogue.
  EXPECT_EQ(service.Metrics().sessions_evicted, 0);
}

TEST(ServiceTest, OpenIdempotencyTokenReplaysLiveSession) {
  ServiceFixture fx;
  MediatorService service(&fx.env(), {});

  Frame open;
  open.type = MsgType::kOpen;
  open.text = kFig3;
  open.text2 = "failover-token-1";
  Result<Frame> first = wire::Call(&service, open);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().type, MsgType::kOpenOk);

  // Replaying the same token (a failover re-issue whose response was lost)
  // re-attaches to the live session instead of leaking a second one.
  Result<Frame> replay = wire::Call(&service, open);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().type, MsgType::kOpenOk);
  EXPECT_EQ(replay.value().session, first.value().session);
  EXPECT_EQ(service.registry().counters().open_replays, 1);
  EXPECT_EQ(service.registry().counters().opened, 1);

  // A different token — and no token at all — each build fresh sessions.
  open.text2 = "failover-token-2";
  Result<Frame> second = wire::Call(&service, open);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.value().session, first.value().session);
  open.text2.clear();
  Result<Frame> third = wire::Call(&service, open);
  ASSERT_TRUE(third.ok());
  EXPECT_NE(third.value().session, first.value().session);
  EXPECT_EQ(service.registry().counters().opened, 3);

  // Close retires the token; the next open under it is a new session.
  Frame close;
  close.type = MsgType::kClose;
  close.session = first.value().session;
  ASSERT_EQ(wire::Call(&service, close).ValueOrDie().type, MsgType::kCloseOk);
  open.text2 = "failover-token-1";
  Result<Frame> fresh = wire::Call(&service, open);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh.value().session, first.value().session);
  EXPECT_EQ(service.registry().counters().open_replays, 1);
}

TEST(ServiceTest, ForeignNodeIdIsRejectedWithTypedErrorNotAbort) {
  // Answer-document node ids embed plan-instance-private state; handing one
  // session's ids to another (a failed-over client, a restarted peer, a
  // fuzzer) used to trip the navigable layer's internal-bug CHECK and abort
  // the whole process. The boundary must answer with a typed frame instead.
  ServiceFixture fx;
  MediatorService service(&fx.env(), {});

  auto doc_a = FramedDocument::Open(&service, kFig3).ValueOrDie();
  auto doc_b = FramedDocument::Open(&service, kFig3).ValueOrDie();
  NodeId root_a = doc_a->Root();
  ASSERT_TRUE(root_a.valid());
  std::optional<NodeId> child_a = doc_a->Down(root_a);
  ASSERT_TRUE(child_a.has_value());

  // Session A's id inside session B's dialogue: typed rejection, no crash.
  Frame cross;
  cross.type = MsgType::kDown;
  cross.session = doc_b->session_id();
  cross.node = *child_a;
  Result<Frame> rejected = wire::Call(&service, cross);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kInvalidArgument);

  // An entirely fabricated id gets the same treatment.
  cross.node = NodeId("fw", {int64_t{424242}, int64_t{7},
                             NodeId("bogus", {int64_t{1}})});
  rejected = wire::Call(&service, cross);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kInvalidArgument);

  // Both sessions keep serving their OWN ids afterwards.
  EXPECT_EQ(doc_a->Fetch(*child_a), "med_home");
  EXPECT_EQ(doc_b->Fetch(doc_b->Root()), "answer");
}

TEST(ServiceTest, SessionTableCapacity) {
  ServiceFixture fx;
  MediatorService::Options options;
  options.max_sessions = 2;
  MediatorService service(&fx.env(), options);

  auto a = FramedDocument::Open(&service, kFig3).ValueOrDie();
  auto b = FramedDocument::Open(&service, kFig3).ValueOrDie();
  Result<std::unique_ptr<FramedDocument>> c =
      FramedDocument::Open(&service, kFig3);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), Status::Code::kUnavailable);

  // Closing one makes room again.
  EXPECT_TRUE(a->Close().ok());
  EXPECT_TRUE(FramedDocument::Open(&service, kFig3).ok());
}

TEST(ServiceTest, DeadlineExpiryWhileQueued) {
  // One worker; the first command holds it for tens of ms, so a second
  // command on the same session with a 1ms budget expires in the queue and
  // is cancelled with kDeadlineExceeded at dequeue time.
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  SlowNavigable slow_homes(&homes_nav, std::chrono::milliseconds(30));

  SessionEnvironment env;
  env.RegisterShared("homesSrc", &slow_homes);
  env.RegisterShared("schoolsSrc", &schools_nav);

  MediatorService::Options options;
  options.workers = 1;
  MediatorService service(&env, options);
  auto doc = FramedDocument::Open(&service, kFig3).ValueOrDie();

  // Slow request first (async, no deadline): Fetch(root) resolves the first
  // binding, which fetches through the slow source.
  Frame slow = *MakeFetchRoot(doc.get());
  std::atomic<bool> slow_done{false};
  service.CallAsync(wire::EncodeFrame(slow),
                    [&slow_done](std::string) { slow_done = true; });

  // Second request on the same session with a 1ms budget.
  Frame hurried = slow;
  hurried.deadline_ns = 1'000'000;
  Result<Frame> response = wire::Call(&service, hurried);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(slow_done.load());  // Call() waited behind the slow one

  EXPECT_GE(service.Metrics().requests_expired, 1);
  // The session survived the expired request.
  EXPECT_EQ(doc->Fetch(doc->Root()), "answer");
}

TEST(ServiceTest, OverloadRejectsWithUnavailable) {
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  SlowNavigable slow_homes(&homes_nav, std::chrono::milliseconds(50));

  SessionEnvironment env;
  env.RegisterShared("homesSrc", &slow_homes);
  env.RegisterShared("schoolsSrc", &schools_nav);

  MediatorService::Options options;
  options.workers = 1;
  options.queue_capacity = 1;
  MediatorService service(&env, options);
  auto doc = FramedDocument::Open(&service, kFig3).ValueOrDie();

  Frame fetch = *MakeFetchRoot(doc.get());
  std::string bytes = wire::EncodeFrame(fetch);

  // #1 occupies the single worker (slow source); #2 fills the single queue
  // slot; #3 must be refused at the door with kUnavailable.
  std::atomic<int> completions{0};
  service.CallAsync(bytes, [&completions](std::string) { ++completions; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let #1 start
  service.CallAsync(bytes, [&completions](std::string) { ++completions; });
  Result<Frame> rejected = wire::Call(&service, fetch);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kUnavailable);
  EXPECT_GE(service.Metrics().requests_rejected, 1);

  // The in-flight requests complete normally and the session stays usable.
  while (completions.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(doc->Fetch(doc->Root()), "answer");
}

TEST(ServiceTest, RemoteLxpServing) {
  // The service exports a wrapper; a client-side BufferComponent demand-
  // pages the remote source through FramedLxpWrapper — the same open-tree
  // machinery, now with fills as frames.
  auto homes = testing::Doc(kHomes);
  wrappers::XmlLxpWrapper wrapper(homes.get());
  SessionEnvironment env;
  env.ExportWrapper("homes.xml", &wrapper);
  MediatorService service(&env, {});

  wire::FramedLxpWrapper remote(&service, "homes.xml");
  buffer::BufferComponent buffer(&remote, "homes.xml");
  EXPECT_EQ(testing::MaterializeToTerm(&buffer), kHomes);
  EXPECT_TRUE(remote.last_status().ok());
  EXPECT_GT(wrapper.fills_served(), 0);

  // Unknown URI: empty results, status latched, no crash.
  wire::FramedLxpWrapper bogus(&service, "nope.xml");
  EXPECT_EQ(bogus.GetRoot("nope.xml"), "");
  EXPECT_EQ(bogus.last_status().code(), Status::Code::kNotFound);
}

TEST(ServiceTest, ConcurrentSessionsSmoke) {
  ServiceFixture fx;
  MediatorService::Options options;
  options.workers = 8;
  options.queue_capacity = 4096;
  MediatorService service(&fx.env(), options);

  constexpr int kThreads = 8;
  constexpr int kSessionsPerThread = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &failures] {
      for (int s = 0; s < kSessionsPerThread; ++s) {
        auto doc = FramedDocument::Open(&service, kFig3);
        if (!doc.ok()) {
          ++failures;
          continue;
        }
        if (testing::MaterializeToTerm(doc.value().get()) != kExpectedAnswer) {
          ++failures;
        }
        if (!doc.value()->Close().ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  ServiceMetricsSnapshot snap = service.Metrics();
  EXPECT_EQ(snap.sessions_opened, kThreads * kSessionsPerThread);
  EXPECT_EQ(snap.sessions_open, 0);
  EXPECT_EQ(snap.requests_rejected, 0);
  EXPECT_EQ(snap.requests_error, 0);
  EXPECT_GT(snap.p99_ns, 0);
}

// Single-source query for the cache tests (one wrapper factory per open).
const char* kHomesOnly = R"(
CONSTRUCT <answer> $H {$H} </answer> {}
WHERE homesSrc homes.home $H
)";

TEST(ServiceTest, ConcurrentOpensOverlap) {
  // Session construction (wrapper factories, mediator instantiation) must
  // run OUTSIDE the registry lock: two Opens dispatched to different
  // workers rendezvous inside the wrapper factory. If Opens serialized,
  // the first factory would wait out its timeout alone and max_inside
  // would stay 1.
  auto homes = testing::Doc(kHomes);
  std::mutex mu;
  std::condition_variable cv;
  int inside = 0;
  int max_inside = 0;

  SessionEnvironment env;
  env.RegisterWrapperFactory(
      "homesSrc",
      [&]() -> std::unique_ptr<buffer::LxpWrapper> {
        {
          std::unique_lock<std::mutex> lock(mu);
          ++inside;
          max_inside = std::max(max_inside, inside);
          cv.notify_all();
          cv.wait_for(lock, std::chrono::seconds(2),
                      [&] { return max_inside >= 2; });
          --inside;
        }
        return std::make_unique<wrappers::XmlLxpWrapper>(homes.get());
      },
      "homes.xml");

  MediatorService::Options options;
  options.workers = 4;
  MediatorService service(&env, options);

  std::atomic<int> failures{0};
  std::thread t1([&] {
    if (!FramedDocument::Open(&service, kHomesOnly).ok()) ++failures;
  });
  std::thread t2([&] {
    // Different text (a comment) so neither Open waits on the other's
    // plan-cache entry — only the registry lock could serialize them.
    std::string other = std::string(kHomesOnly) + "% second\n";
    if (!FramedDocument::Open(&service, other).ok()) ++failures;
  });
  t1.join();
  t2.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(max_inside, 2) << "concurrent Opens serialized on the registry";
}

TEST(ServiceTest, SharedCacheServesSecondSessionWithoutWrapperFills) {
  auto homes = testing::Doc(kHomes);
  std::mutex mu;
  std::vector<wrappers::XmlLxpWrapper*> created;  // owned by their sessions

  SessionEnvironment env;
  env.RegisterWrapperFactory(
      "homesSrc",
      [&]() -> std::unique_ptr<buffer::LxpWrapper> {
        auto w = std::make_unique<wrappers::XmlLxpWrapper>(homes.get());
        std::lock_guard<std::mutex> lock(mu);
        created.push_back(w.get());
        return w;
      },
      "homes.xml");

  MediatorService::Options options;
  options.source_cache_bytes = 1 << 20;
  MediatorService service(&env, options);

  auto doc1 = FramedDocument::Open(&service, kHomesOnly).ValueOrDie();
  std::string first = testing::MaterializeToTerm(doc1.get());

  // Second session, same query reformatted: the compiled plan comes from
  // the plan cache and every source fill from the fragment cache — its
  // wrapper instance serves ZERO fills, and the answer is byte-identical.
  std::string reformatted =
      "CONSTRUCT <answer>  $H {$H} </answer> {} % same query\n"
      "WHERE homesSrc homes.home $H";
  auto doc2 = FramedDocument::Open(&service, reformatted).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(doc2.get()), first);

  ASSERT_EQ(created.size(), 2u);
  EXPECT_GT(created[0]->fills_served(), 0);
  EXPECT_EQ(created[1]->fills_served(), 0);

  ServiceMetricsSnapshot snap = service.Metrics();
  EXPECT_GT(snap.cache_hits, 0);
  EXPECT_GT(snap.cache_bytes, 0);
  EXPECT_EQ(snap.plan_cache_hits, 1);
  EXPECT_GE(snap.plan_cache_misses, 1);
}

TEST(ServiceTest, InvalidateSourcePreservesFreshnessSemantics) {
  // The E9 churn scenario with the cache enabled: after the source changes
  // AND InvalidateSource is called, new sessions see the new content; the
  // cache never resurrects the old generation for them.
  auto v1 = testing::Doc("homes[home[zip[91220]]]");
  auto v2 = testing::Doc("homes[home[zip[99999]]]");
  std::atomic<xml::Document*> current{v1.get()};

  SessionEnvironment env;
  env.RegisterWrapperFactory(
      "homesSrc",
      [&]() -> std::unique_ptr<buffer::LxpWrapper> {
        return std::make_unique<wrappers::XmlLxpWrapper>(current.load());
      },
      "homes.xml");

  MediatorService::Options options;
  options.source_cache_bytes = 1 << 20;
  MediatorService service(&env, options);

  auto doc1 = FramedDocument::Open(&service, kHomesOnly).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(doc1.get()),
            "answer[home[zip[91220]]]");

  // The source churns. Without an invalidation the cache still answers
  // from the published generation-0 fragments (the staleness window a
  // shared cache introduces)...
  current.store(v2.get());
  auto stale = FramedDocument::Open(&service, kHomesOnly).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(stale.get()),
            "answer[home[zip[91220]]]");

  // ...and InvalidateSource closes it: the generation bump makes every old
  // entry unreachable to sessions opened from now on.
  service.InvalidateSource("homesSrc");
  auto fresh = FramedDocument::Open(&service, kHomesOnly).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(fresh.get()),
            "answer[home[zip[99999]]]");
}

TEST(ServiceTest, CacheStressManySessionsByteIdenticalUnderEviction) {
  // 8 workers x 64 sessions over a shared hot source with an UNDERSIZED
  // cache budget: every answer must match the cache-off truth
  // (kExpectedAnswer) exactly, the byte account must respect the budget,
  // and the budget pressure must show up as evictions. Runs under TSan in
  // CI (thread-sanitize job).
  ServiceFixture fx;
  MediatorService::Options options;
  options.workers = 8;
  options.queue_capacity = 4096;
  options.source_cache_bytes = 1024;  // a handful of entries — must churn
  MediatorService service(&fx.env(), options);

  constexpr int kThreads = 8;
  constexpr int kSessionsPerThread = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &mismatches] {
      for (int s = 0; s < kSessionsPerThread; ++s) {
        auto doc = FramedDocument::Open(&service, kFig3);
        if (!doc.ok()) {
          ++mismatches;
          continue;
        }
        if (testing::MaterializeToTerm(doc.value().get()) != kExpectedAnswer) {
          ++mismatches;
        }
        if (!doc.value()->Close().ok()) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  ServiceMetricsSnapshot snap = service.Metrics();
  EXPECT_EQ(snap.sessions_opened, kThreads * kSessionsPerThread);
  EXPECT_LE(snap.cache_bytes, options.source_cache_bytes);
  EXPECT_GT(snap.cache_evictions, 0) << "undersized budget must evict";
  EXPECT_GT(snap.cache_hits + snap.cache_misses, 0);
  // Concurrent first misses may each compile (first insert wins), so up to
  // kThreads opens can miss; everything after hits the shared plan.
  EXPECT_GE(snap.plan_cache_hits, kThreads * (kSessionsPerThread - 1));
}

TEST(ServiceTest, MetricsFrameRoundTrip) {
  ServiceFixture fx;
  MediatorService service(&fx.env(), {});
  auto doc = FramedDocument::Open(&service, kFig3).ValueOrDie();
  (void)doc->Fetch(doc->Root());

  Frame req;
  req.type = MsgType::kMetrics;
  Result<Frame> resp = wire::Call(&service, req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().type, MsgType::kMetricsText);
  EXPECT_NE(resp.value().text.find("sessions"), std::string::npos);
}

}  // namespace
}  // namespace mix::service
