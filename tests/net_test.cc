#include <gtest/gtest.h>

#include "net/sim_net.h"

namespace mix::net {
namespace {

TEST(SimClockTest, Advances) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0);
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.now_ns(), 150);
}

TEST(ChannelTest, CostModel) {
  SimClock clock;
  ChannelOptions options;
  options.latency_per_message_ns = 1000;
  options.ns_per_byte = 2;
  Channel channel(&clock, options);

  channel.Send(100);
  EXPECT_EQ(clock.now_ns(), 1000 + 200);
  EXPECT_EQ(channel.stats().messages, 1);
  EXPECT_EQ(channel.stats().bytes, 100);
  EXPECT_EQ(channel.stats().busy_ns, 1200);

  channel.Send(0);  // empty message still pays latency
  EXPECT_EQ(clock.now_ns(), 2200);
  EXPECT_EQ(channel.stats().messages, 2);
}

TEST(ChannelTest, ResetStatsKeepsClock) {
  SimClock clock;
  Channel channel(&clock, ChannelOptions{10, 1});
  channel.Send(5);
  channel.ResetStats();
  EXPECT_EQ(channel.stats().messages, 0);
  EXPECT_EQ(channel.stats().bytes, 0);
  EXPECT_GT(clock.now_ns(), 0);
}

TEST(ChannelTest, NullClockStillCounts) {
  Channel channel(nullptr, ChannelOptions{10, 1});
  channel.Send(5);
  EXPECT_EQ(channel.stats().messages, 1);
  EXPECT_EQ(channel.stats().bytes, 5);
}

TEST(ChannelTest, SendBatchCostsOneMessage) {
  SimClock clock;
  ChannelOptions options;
  options.latency_per_message_ns = 1000;
  options.ns_per_byte = 2;
  Channel channel(&clock, options);

  channel.SendBatch(100, 8);  // 8 coalesced parts, one wire message
  EXPECT_EQ(channel.stats().messages, 1);
  EXPECT_EQ(channel.stats().bytes, 100);
  EXPECT_EQ(channel.stats().batches, 1);
  EXPECT_EQ(channel.stats().batched_parts, 8);
  // Latency is paid once, not per part.
  EXPECT_EQ(clock.now_ns(), 1000 + 200);

  std::string s = channel.stats().ToString();
  EXPECT_NE(s.find("batches=1"), std::string::npos);
  EXPECT_NE(s.find("batched_parts=8"), std::string::npos);
}

TEST(ChannelTest, SendBatchWithNullClock) {
  Channel channel(nullptr, ChannelOptions{10, 1});
  channel.SendBatch(64, 4);
  EXPECT_EQ(channel.stats().messages, 1);
  EXPECT_EQ(channel.stats().bytes, 64);
  EXPECT_EQ(channel.stats().batches, 1);
  EXPECT_EQ(channel.stats().batched_parts, 4);
}

TEST(ChannelStatsTest, ToString) {
  ChannelStats stats{3, 500, 2'000'000};
  std::string s = stats.ToString();
  EXPECT_NE(s.find("messages=3"), std::string::npos);
  EXPECT_NE(s.find("bytes=500"), std::string::npos);
}

// The chunking claim in miniature: shipping N bytes in k messages costs
// k*latency + N*per_byte — fewer, bigger messages are strictly cheaper.
TEST(ChannelTest, BulkTransferBeatsNodeAtATime) {
  ChannelOptions options;  // defaults
  SimClock fine_clock;
  Channel fine(&fine_clock, options);
  for (int i = 0; i < 100; ++i) fine.Send(10);

  SimClock bulk_clock;
  Channel bulk(&bulk_clock, options);
  bulk.Send(1000);

  EXPECT_EQ(fine.stats().bytes, bulk.stats().bytes);
  EXPECT_GT(fine_clock.now_ns(), bulk_clock.now_ns());
}

// ---------------------------------------------------------------------------
// Overflow hardening: adversarial payload sizes must saturate at the int64
// extremes, never wrap (signed overflow is UB, and a wrapped virtual clock
// runs backwards).
// ---------------------------------------------------------------------------

constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();

TEST(SaturatingMathTest, AddAndMulPinAtExtremes) {
  EXPECT_EQ(SaturatingAdd(1, 2), 3);
  EXPECT_EQ(SaturatingAdd(kInt64Max, 1), kInt64Max);
  EXPECT_EQ(SaturatingAdd(kInt64Max, kInt64Max), kInt64Max);
  EXPECT_EQ(SaturatingAdd(std::numeric_limits<int64_t>::min(), -1),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(SaturatingMul(6, 7), 42);
  EXPECT_EQ(SaturatingMul(kInt64Max, 2), kInt64Max);
  EXPECT_EQ(SaturatingMul(kInt64Max / 2, 3), kInt64Max);
  EXPECT_EQ(SaturatingMul(kInt64Max, -2),
            std::numeric_limits<int64_t>::min());
}

TEST(SimClockTest, AdvanceSaturatesInsteadOfWrapping) {
  SimClock clock;
  clock.Advance(kInt64Max);
  EXPECT_EQ(clock.now_ns(), kInt64Max);
  clock.Advance(kInt64Max);  // would wrap negative before the fix
  EXPECT_EQ(clock.now_ns(), kInt64Max);
  clock.Advance(-100);  // negative advances are clamped, never rewind
  EXPECT_EQ(clock.now_ns(), kInt64Max);
}

TEST(ChannelTest, SendSaturatesOnHugePayload) {
  SimClock clock;
  ChannelOptions options;
  options.latency_per_message_ns = 1000;
  options.ns_per_byte = 10;
  Channel channel(&clock, options);
  // payload_bytes * ns_per_byte overflows int64; the cost (and the clock)
  // must pin at INT64_MAX, not wrap to a negative advance.
  channel.Send(kInt64Max / 2);
  EXPECT_EQ(clock.now_ns(), kInt64Max);
  EXPECT_EQ(channel.stats().busy_ns, kInt64Max);
  // A later ordinary send keeps the clock pinned (monotone).
  channel.Send(10);
  EXPECT_EQ(clock.now_ns(), kInt64Max);
}

}  // namespace
}  // namespace mix::net
