// Async fill engine tests (DESIGN.md §4 "Async fill engine"):
//
//   * FillFuture / PushMailbox primitives — first-writer-wins completion,
//     inline callbacks, drop-after-close cancellation;
//   * readahead equivalence — a buffer with a concurrent readahead window
//     materializes byte-identically to the demand-only baseline, on clean
//     sources AND under the PR 4 fault matrix (p ∈ {0.05, 0.2} × seeds);
//   * degraded holes stay isolated with readahead on;
//   * TcpFrameTransport::RoundTripAsync — concurrent submissions complete
//     exactly once, coalesce into pipelined batches, and teardown with ops
//     pending fails them instead of dropping them;
//   * the background prefetcher — fills land in the shared SourceCache and
//     in the submitting session's mailbox, within the per-job budget;
//   * thread-safe Channel/SimClock accounting under concurrent senders.
//
// The whole file is in the CI TSan run: it exercises every cross-thread
// edge the engine added (dispatch thread vs. submitters, worker pool vs.
// session navigation, concurrent channel charging).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "buffer/async_fill.h"
#include "buffer/buffer.h"
#include "buffer/fault_wrapper.h"
#include "buffer/lxp.h"
#include "client/framed_document.h"
#include "net/fault.h"
#include "net/sim_net.h"
#include "net/tcp/tcp_server.h"
#include "net/tcp/tcp_transport.h"
#include "service/prefetcher.h"
#include "service/service.h"
#include "service/session.h"
#include "service/wire.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"

namespace mix::service {
namespace {

using buffer::BufferComponent;
using buffer::FaultyLxpWrapper;
using buffer::FillBudget;
using buffer::FillFuture;
using buffer::Fragment;
using buffer::FragmentList;
using buffer::HoleFill;
using buffer::HoleFillList;
using buffer::LxpWrapper;
using buffer::PushedFill;
using buffer::PushMailbox;
using buffer::ScriptedLxpWrapper;
using client::FramedDocument;
using net::tcp::TcpFrameTransport;
using net::tcp::TcpServer;
using net::tcp::TcpTransportOptions;
using wire::Frame;
using wire::MsgType;

// The Fig. 3 running example (same fixture as tests/service_test.cc).
const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

const char* kHomes =
    "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]],"
    "home[addr[Nowhere],zip[99999]]]";
const char* kSchools =
    "schools[school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],"
    "school[dir[Hart],zip[91223]]]";

const char* kExpectedAnswer =
    "answer["
    "med_home[home[addr[La Jolla],zip[91220]],"
    "school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]]],"
    "med_home[home[addr[El Cajon],zip[91223]],school[dir[Hart],zip[91223]]]]";

/// A wide homes document (`n` homes, distinct addresses) — enough children
/// that chunked fills leave a deep hole queue for readahead/prefetch.
std::string WideHomesTerm(int n) {
  std::string term = "homes[";
  for (int i = 0; i < n; ++i) {
    if (i > 0) term += ',';
    term += "home[addr[A" + std::to_string(i) + "],zip[" +
            std::to_string(91000 + i) + "]]";
  }
  term += ']';
  return term;
}

/// Single-source scan of every home — navigation demand-fills incrementally,
/// so prefetch/readahead actually have holes to run ahead on.
const char* kScanQuery = R"(
CONSTRUCT <all> $H {$H} </all> {}
WHERE homesSrc homes.home $H
)";

// ---------------------------------------------------------------------------
// Primitives: FillFuture and PushMailbox.
// ---------------------------------------------------------------------------

TEST(FillFutureTest, FirstCompletionWinsAndWaitMovesOnce) {
  auto future = std::make_shared<FillFuture>();
  EXPECT_FALSE(future->Ready());

  HoleFillList fills;
  fills.push_back(HoleFill{"h1", {Fragment::Element("a")}});
  future->Complete(Status::OK(), std::move(fills));
  EXPECT_TRUE(future->Ready());
  // Second completion is a no-op (a transport failing its pending futures
  // must not clobber one that raced a real response).
  future->Complete(Status::Unavailable("late loser"), {});

  HoleFillList out;
  EXPECT_TRUE(future->Wait(&out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].hole_id, "h1");
  // A second Wait sees the same status but the list was already moved out.
  HoleFillList again;
  EXPECT_TRUE(future->Wait(&again).ok());
  EXPECT_TRUE(again.empty());
}

TEST(FillFutureTest, WaitBlocksUntilCompletedFromAnotherThread) {
  auto future = std::make_shared<FillFuture>();
  std::thread completer([future] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    future->Complete(Status::Unavailable("boom"), {});
  });
  HoleFillList out;
  Status s = future->Wait(&out);
  completer.join();
  EXPECT_EQ(s.code(), Status::Code::kUnavailable);
}

TEST(FillFutureTest, CallbackFiresInlineWhenAlreadyComplete) {
  auto future = FillFuture::Resolved(Status::OK(), {});
  bool fired = false;
  future->OnComplete([&fired](const Status& s, const HoleFillList&) {
    fired = s.ok();
  });
  EXPECT_TRUE(fired);
}

TEST(PushMailboxTest, CloseDropsLaterDeliveries) {
  PushMailbox box;
  EXPECT_TRUE(box.Deliver(PushedFill{"h1", {Fragment::Element("a")}}));
  EXPECT_EQ(box.delivered(), 1);

  box.Close();
  box.Close();  // idempotent
  EXPECT_TRUE(box.closed());
  EXPECT_FALSE(box.Deliver(PushedFill{"h2", {}}));
  EXPECT_EQ(box.dropped(), 1);
  // Pending deliveries were discarded with the close.
  EXPECT_TRUE(box.Drain().empty());
}

TEST(PushMailboxTest, BoundsPendingDeliveries) {
  PushMailbox box;
  for (size_t i = 0; i < PushMailbox::kMaxPending; ++i) {
    EXPECT_TRUE(box.Deliver(PushedFill{"h" + std::to_string(i), {}}));
  }
  EXPECT_FALSE(box.Deliver(PushedFill{"overflow", {}}));
  EXPECT_EQ(box.Drain().size(), PushMailbox::kMaxPending);
  EXPECT_TRUE(box.Deliver(PushedFill{"after-drain", {}}));
}

// ---------------------------------------------------------------------------
// Readahead equivalence: async window == demand-only, byte for byte.
// ---------------------------------------------------------------------------

TEST(ReadaheadTest, ByteIdenticalToDemandOnlyAcrossWindowSizes) {
  auto homes = testing::Doc(WideHomesTerm(24));
  wrappers::XmlLxpWrapper clean(homes.get());
  BufferComponent baseline(&clean, "homes.xml");
  const std::string expected = testing::MaterializeToTerm(&baseline);

  for (int window : {1, 2, 4, 8}) {
    wrappers::XmlLxpWrapper wrapper(homes.get());
    BufferComponent::Options opts;
    opts.max_in_flight = window;
    BufferComponent buf(&wrapper, "homes.xml", opts);
    EXPECT_EQ(testing::MaterializeToTerm(&buf), expected)
        << "window=" << window;
    BufferComponent::Stats st = buf.stats();
    EXPECT_GT(st.readahead_issued, 0) << "window=" << window;
    EXPECT_GT(st.readahead_hits, 0) << "window=" << window;
    EXPECT_LE(st.readahead_hits + st.readahead_fallbacks, st.readahead_issued);
    EXPECT_EQ(st.degraded_holes, 0);
    EXPECT_TRUE(buf.TakeStatus().ok());
  }
}

TEST(ReadaheadTest, ByteIdenticalUnderFaultMatrix) {
  auto homes = testing::Doc(WideHomesTerm(16));
  wrappers::XmlLxpWrapper clean(homes.get());
  BufferComponent baseline(&clean, "homes.xml");
  const std::string expected = testing::MaterializeToTerm(&baseline);

  int64_t total_faults = 0;
  int64_t total_fallbacks = 0;
  for (double p : {0.05, 0.2}) {
    for (uint64_t seed : {1u, 2u, 3u, 4u}) {
      wrappers::XmlLxpWrapper inner(homes.get());
      net::FaultSpec spec;
      spec.p_fail = p;
      spec.p_truncate = p / 2;
      spec.p_garble = p / 2;
      spec.p_duplicate = p / 2;
      spec.p_delay = p;
      FaultyLxpWrapper faulty(&inner, spec, seed);
      net::SimClock clock;
      faulty.AttachClock(&clock);

      BufferComponent::Options opts;
      opts.clock = &clock;
      opts.retry.max_attempts = 10;
      opts.retry_seed = seed ^ 0xabcdefull;
      opts.max_in_flight = 3;
      BufferComponent buf(&faulty, "homes.xml", opts);

      // A faulted readahead flight falls back to the demand path, whose
      // retries absorb it — the answer never changes.
      EXPECT_EQ(testing::MaterializeToTerm(&buf), expected)
          << "p=" << p << " seed=" << seed;
      BufferComponent::Stats st = buf.stats();
      EXPECT_EQ(st.degraded_holes, 0);
      EXPECT_TRUE(buf.TakeStatus().ok());
      total_faults += st.faults;
      total_fallbacks += st.readahead_fallbacks;
    }
  }
  EXPECT_GT(total_faults, 0);
  EXPECT_GT(total_fallbacks, 0);  // some flights definitely failed
}

/// Fails every exchange touching one specific hole id (Try and Begin paths
/// both route through TryFillMany here).
class SelectiveFailWrapper : public LxpWrapper {
 public:
  SelectiveFailWrapper(LxpWrapper* inner, std::string bad_hole)
      : inner_(inner), bad_(std::move(bad_hole)) {}

  std::string GetRoot(const std::string& uri) override {
    return inner_->GetRoot(uri);
  }
  FragmentList Fill(const std::string& hole_id) override {
    return inner_->Fill(hole_id);
  }
  Status TryFill(const std::string& hole_id, FragmentList* out) override {
    if (hole_id == bad_) return Status::Unavailable("source refused " + bad_);
    return inner_->TryFill(hole_id, out);
  }
  Status TryFillMany(const std::vector<std::string>& holes,
                     const FillBudget& budget, HoleFillList* out) override {
    for (const std::string& h : holes) {
      if (h == bad_) return Status::Unavailable("source refused " + bad_);
    }
    return inner_->TryFillMany(holes, budget, out);
  }

 private:
  LxpWrapper* inner_;
  std::string bad_;
};

/// Records every hole id requested through TryFillMany (to pick a real,
/// mid-document hole for the selective-failure runs below).
class RecordingWrapper : public LxpWrapper {
 public:
  explicit RecordingWrapper(LxpWrapper* inner) : inner_(inner) {}
  std::string GetRoot(const std::string& uri) override {
    return inner_->GetRoot(uri);
  }
  FragmentList Fill(const std::string& hole_id) override {
    return inner_->Fill(hole_id);
  }
  Status TryFill(const std::string& hole_id, FragmentList* out) override {
    seen.push_back(hole_id);
    return inner_->TryFill(hole_id, out);
  }
  Status TryFillMany(const std::vector<std::string>& holes,
                     const FillBudget& budget, HoleFillList* out) override {
    for (const std::string& h : holes) seen.push_back(h);
    return inner_->TryFillMany(holes, budget, out);
  }
  std::vector<std::string> seen;

 private:
  LxpWrapper* inner_;
};

TEST(ReadaheadTest, DegradedHoleStaysIsolatedWithReadahead) {
  auto homes = testing::Doc(WideHomesTerm(12));

  // Pick a hole the dialogue actually requests, away from the root.
  std::string bad;
  {
    wrappers::XmlLxpWrapper probe_inner(homes.get());
    RecordingWrapper probe(&probe_inner);
    BufferComponent buf(&probe, "homes.xml");
    (void)testing::MaterializeToTerm(&buf);
    ASSERT_GT(probe.seen.size(), 4u);
    bad = probe.seen[probe.seen.size() / 2];
  }

  wrappers::XmlLxpWrapper clean(homes.get());
  SelectiveFailWrapper baseline_wrapper(&clean, bad);
  net::SimClock baseline_clock;
  BufferComponent::Options baseline_opts;
  baseline_opts.clock = &baseline_clock;
  baseline_opts.retry.max_attempts = 2;
  baseline_opts.retry.jitter = 0;
  BufferComponent baseline(&baseline_wrapper, "homes.xml", baseline_opts);
  const std::string expected = testing::MaterializeToTerm(&baseline);
  ASSERT_NE(expected.find("#unavailable"), std::string::npos);

  wrappers::XmlLxpWrapper inner(homes.get());
  SelectiveFailWrapper wrapper(&inner, bad);
  net::SimClock clock;
  BufferComponent::Options opts;
  opts.clock = &clock;
  opts.retry.max_attempts = 2;
  opts.retry.jitter = 0;
  opts.max_in_flight = 4;
  BufferComponent buf(&wrapper, "homes.xml", opts);

  // Same degraded answer: the broken hole becomes #unavailable on the
  // demand path (after its readahead flight failed), everything around it
  // is intact, and exactly as many holes degrade as without readahead.
  EXPECT_EQ(testing::MaterializeToTerm(&buf), expected);
  EXPECT_EQ(buf.stats().degraded_holes, baseline.stats().degraded_holes);
  EXPECT_FALSE(buf.TakeStatus().ok());
}

TEST(ReadaheadTest, ServiceAnswerByteIdenticalWithPerSourceWindows) {
  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  SessionEnvironment env;
  SessionEnvironment::WrapperOptions wo;
  wo.max_in_flight = 2;
  env.RegisterWrapperFactory(
      "homesSrc",
      [&homes] { return std::make_unique<wrappers::XmlLxpWrapper>(homes.get()); },
      "homes.xml", wo);
  env.RegisterWrapperFactory(
      "schoolsSrc",
      [&schools] {
        return std::make_unique<wrappers::XmlLxpWrapper>(schools.get());
      },
      "schools.xml", wo);
  MediatorService service(&env, {});

  auto doc = FramedDocument::Open(&service, kFig3).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(doc.get()), kExpectedAnswer);
  EXPECT_TRUE(doc->last_status().ok());

  auto session = service.registry().Find(doc->session_id());
  ASSERT_NE(session, nullptr);
  session->RefreshSourceMetrics();
  EXPECT_NE(session->metrics().ToString().find("async{"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TcpFrameTransport::RoundTripAsync — the native async seam.
// ---------------------------------------------------------------------------

/// Environment exporting one wide homes wrapper for remote LXP.
class ExportFixture {
 public:
  ExportFixture()
      : homes_(testing::Doc(WideHomesTerm(24))), wrapper_(homes_.get()) {
    env_.ExportWrapper("homes.xml", &wrapper_);
  }
  SessionEnvironment& env() { return env_; }
  const xml::Document* doc() const { return homes_.get(); }

 private:
  std::unique_ptr<xml::Document> homes_;
  wrappers::XmlLxpWrapper wrapper_;
  SessionEnvironment env_;
};

TEST(TcpAsyncTest, RemoteBufferWithReadaheadMatchesLocal) {
  ExportFixture fx;
  MediatorService service(&fx.env(), {});
  TcpServer server(&service, {});
  ASSERT_TRUE(server.Start().ok());

  wrappers::XmlLxpWrapper local(fx.doc());
  BufferComponent baseline(&local, "homes.xml");
  const std::string expected = testing::MaterializeToTerm(&baseline);

  TcpTransportOptions copts;
  copts.port = server.port();
  TcpFrameTransport transport(copts);
  wire::FramedLxpWrapper remote(&transport, "homes.xml");
  BufferComponent::Options opts;
  opts.max_in_flight = 4;
  BufferComponent buf(&remote, "homes.xml", opts);

  // Concurrent in-flight exchanges over a real socket change nothing about
  // the answer; the dispatch thread really ran them.
  EXPECT_EQ(testing::MaterializeToTerm(&buf), expected);
  EXPECT_GT(buf.stats().readahead_hits, 0);
  EXPECT_GT(transport.async_ops(), 0);
  EXPECT_GT(transport.async_batches(), 0);
  server.Stop();
}

TEST(TcpAsyncTest, ConcurrentOpsCompleteExactlyOnceAndCoalesce) {
  ExportFixture fx;
  MediatorService service(&fx.env(), {});
  TcpServer server(&service, {});
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions copts;
  copts.port = server.port();
  TcpFrameTransport transport(copts);

  Frame root;
  root.type = MsgType::kLxpGetRoot;
  root.text = "homes.xml";
  const std::string request = wire::EncodeFrame(root);

  constexpr int kOps = 64;
  std::mutex mu;
  std::condition_variable cv;
  int completions = 0;
  int ok = 0;
  for (int i = 0; i < kOps; ++i) {
    transport.RoundTripAsync(request, [&](Result<std::string> r) {
      std::lock_guard<std::mutex> lock(mu);
      ++completions;
      if (r.ok()) {
        Result<Frame> decoded = wire::DecodeFrame(r.value());
        if (decoded.ok() && decoded.value().type == MsgType::kLxpRoot) ++ok;
      }
      cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return completions == kOps; }));
    EXPECT_EQ(ok, kOps);
  }
  EXPECT_EQ(transport.async_ops(), kOps);
  // Ops submitted while an exchange held the wire were coalesced into
  // pipelined batches — strictly fewer wire turnarounds than ops.
  EXPECT_LT(transport.async_batches(), kOps);
  EXPECT_GE(transport.async_batches(), 1);
  server.Stop();
}

/// Internally locked wrapper, as required by concurrent export.
class LockedXmlWrapper : public buffer::LxpWrapper {
 public:
  explicit LockedXmlWrapper(const xml::Document* doc) : inner_(doc) {}
  std::string GetRoot(const std::string& uri) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.GetRoot(uri);
  }
  buffer::FragmentList Fill(const std::string& hole_id) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.Fill(hole_id);
  }
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.FillMany(holes, budget);
  }

 private:
  std::mutex mu_;
  wrappers::XmlLxpWrapper inner_;
};

TEST(TcpAsyncTest, ConcurrentExportStaysByteIdentical) {
  // ExportWrapper(..., concurrent = true) drops the per-wrapper lane: each
  // exchange runs on its own executor key, so pipelined fills overlap on
  // the worker pool. Answers must not change (and TSan watches the lock).
  auto homes = testing::Doc(WideHomesTerm(24));
  LockedXmlWrapper wrapper(homes.get());
  SessionEnvironment env;
  env.ExportWrapper("homes.xml", &wrapper, /*concurrent=*/true);
  MediatorService::Options sopts;
  sopts.workers = 4;
  MediatorService service(&env, sopts);
  TcpServer server(&service, {});
  ASSERT_TRUE(server.Start().ok());

  wrappers::XmlLxpWrapper local(homes.get());
  BufferComponent baseline(&local, "homes.xml");
  const std::string expected = testing::MaterializeToTerm(&baseline);

  TcpTransportOptions copts;
  copts.port = server.port();
  TcpFrameTransport transport(copts);
  wire::FramedLxpWrapper remote(&transport, "homes.xml");
  BufferComponent::Options opts;
  opts.max_in_flight = 6;
  BufferComponent buf(&remote, "homes.xml", opts);
  EXPECT_EQ(testing::MaterializeToTerm(&buf), expected);
  EXPECT_GT(buf.stats().readahead_hits, 0);
  server.Stop();
}

TEST(TcpAsyncTest, DestructionFailsPendingOpsExactlyOnce) {
  // Port from a listener that never accepts work: connect() will stall or
  // fail, keeping ops pending long enough for the destructor to claim them.
  std::atomic<int> completions{0};
  {
    TcpTransportOptions copts;
    copts.port = 1;  // nothing listens here
    copts.connect_timeout_ns = 50'000'000;
    copts.auto_reconnect = false;
    TcpFrameTransport transport(copts);
    for (int i = 0; i < 8; ++i) {
      transport.RoundTripAsync("junk", [&](Result<std::string> r) {
        EXPECT_FALSE(r.ok());
        completions.fetch_add(1);
      });
    }
    // Destructor: stops the dispatch thread, fails undispatched ops.
  }
  EXPECT_EQ(completions.load(), 8);
}

// ---------------------------------------------------------------------------
// Background prefetcher: fills land in cache + mailbox within budget.
// ---------------------------------------------------------------------------

TEST(BackgroundPrefetchTest, FillsLandInCacheAndMailbox) {
  auto homes = testing::Doc(WideHomesTerm(40));
  SessionEnvironment env;
  SessionEnvironment::WrapperOptions wo;
  wo.prefetch_per_command = 6;
  wo.background_prefetch = true;
  env.RegisterWrapperFactory(
      "homesSrc",
      [&homes] { return std::make_unique<wrappers::XmlLxpWrapper>(homes.get()); },
      "homes.xml", wo);

  MediatorService::Options sopts;
  sopts.source_cache_bytes = 4 << 20;
  sopts.prefetch_workers = 2;
  sopts.prefetch_fills_per_job = 8;
  MediatorService service(&env, sopts);
  ASSERT_NE(service.prefetcher(), nullptr);

  // Baseline answer from a prefetcher-less service over the same source.
  std::string expected;
  {
    MediatorService plain(&env, {});
    auto doc = FramedDocument::Open(&plain, kScanQuery).ValueOrDie();
    expected = testing::MaterializeToTerm(doc.get());
  }

  auto doc = FramedDocument::Open(&service, kScanQuery).ValueOrDie();
  // Touch the first answer element only: the demand path fills a chunk,
  // the prefetch sink hands the leftover holes to the worker pool.
  NodeId root = doc->Root();
  ASSERT_TRUE(root.valid());
  ASSERT_TRUE(doc->Down(root).has_value());
  service.prefetcher()->Drain();

  ServiceMetricsSnapshot snap = service.Metrics();
  EXPECT_GT(snap.prefetch_jobs, 0);
  EXPECT_GT(snap.prefetch_exchanges, 0);
  EXPECT_GT(snap.prefetch_fills, 0);
  EXPECT_GT(snap.prefetch_published, 0);   // SourceCache got warmed
  EXPECT_GT(snap.prefetch_delivered, 0);   // the session mailbox too
  EXPECT_EQ(snap.prefetch_failures, 0);
  // Budget: one exchange per job, chase bounded by fills_per_job.
  EXPECT_LE(snap.prefetch_exchanges, snap.prefetch_jobs);
  EXPECT_LE(snap.prefetch_fills,
            snap.prefetch_exchanges * sopts.prefetch_fills_per_job);
  EXPECT_NE(snap.ToString().find("prefetch{"), std::string::npos);

  // The rest of the dialogue is byte-identical — background fills only
  // relocate work, never change answers — and some of it was served from
  // the pushed/cached results instead of demand exchanges.
  EXPECT_EQ(testing::MaterializeToTerm(doc.get()), expected);
  auto session = service.registry().Find(doc->session_id());
  ASSERT_NE(session, nullptr);
  session->RefreshSourceMetrics();
  EXPECT_GT(session->metrics().pushed_applied + session->metrics().cache_hits,
            0);
}

TEST(BackgroundPrefetchTest, SessionCloseCancelsCleanly) {
  auto homes = testing::Doc(WideHomesTerm(40));
  SessionEnvironment env;
  SessionEnvironment::WrapperOptions wo;
  wo.prefetch_per_command = 6;
  wo.background_prefetch = true;
  env.RegisterWrapperFactory(
      "homesSrc",
      [&homes] { return std::make_unique<wrappers::XmlLxpWrapper>(homes.get()); },
      "homes.xml", wo);

  MediatorService::Options sopts;
  sopts.source_cache_bytes = 4 << 20;
  sopts.prefetch_workers = 2;
  MediatorService service(&env, sopts);

  // Open, navigate one step (queues background jobs), close immediately —
  // the workers may still be filling. Deliveries into the closed mailbox
  // are dropped on the floor; nothing touches the destroyed session (ASan
  // guards the lifetime, this test guards the counters).
  for (int round = 0; round < 4; ++round) {
    auto doc = FramedDocument::Open(&service, kScanQuery).ValueOrDie();
    NodeId root = doc->Root();
    ASSERT_TRUE(root.valid());
    ASSERT_TRUE(doc->Down(root).has_value());
    EXPECT_TRUE(service.registry().Close(doc->session_id()).ok());
  }
  service.prefetcher()->Drain();
  ServiceMetricsSnapshot snap = service.Metrics();
  EXPECT_GT(snap.prefetch_jobs, 0);
  EXPECT_EQ(snap.prefetch_failures, 0);
}

// ---------------------------------------------------------------------------
// Thread-safe sim-net accounting.
// ---------------------------------------------------------------------------

TEST(ConcurrentChannelTest, SendTotalsAreExactUnderContention) {
  net::SimClock clock;
  net::Channel channel(&clock, {});
  constexpr int kThreads = 4;
  constexpr int kSendsPerThread = 1000;
  constexpr int64_t kBytes = 64;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&channel] {
      for (int i = 0; i < kSendsPerThread; ++i) channel.Send(kBytes);
    });
  }
  for (std::thread& t : threads) t.join();

  net::ChannelStats stats = channel.stats();
  EXPECT_EQ(stats.messages, kThreads * kSendsPerThread);
  EXPECT_EQ(stats.bytes, int64_t{kThreads} * kSendsPerThread * kBytes);
  EXPECT_GT(clock.now_ns(), 0);
}

}  // namespace
}  // namespace mix::service
