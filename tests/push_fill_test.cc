// Wrapper-initiated (push) LXP fills — the asynchronous protocol variant
// of Section 4 — and the SuperRootNavigable document-node adapter.
#include <gtest/gtest.h>

#include "buffer/buffer.h"
#include "core/super_root.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"

namespace mix {
namespace {

using buffer::BufferComponent;
using buffer::Fragment;
using buffer::FragmentList;
using buffer::ScriptedLxpWrapper;

ScriptedLxpWrapper MakeWrapper() {
  std::map<std::string, FragmentList> fills;
  fills["h0"] = {Fragment::Element("r", {Fragment::Hole("h1")})};
  fills["h1"] = {Fragment::Element("a"), Fragment::Hole("h2")};
  fills["h2"] = {Fragment::Element("b"), Fragment::Element("c")};
  return ScriptedLxpWrapper("h0", std::move(fills));
}

TEST(PushFillTest, PushedFillAnswersLaterNavigationForFree) {
  ScriptedLxpWrapper wrapper = MakeWrapper();
  BufferComponent buffer(&wrapper, "u");
  NodeId root = buffer.Root();
  auto a = buffer.Down(root);
  ASSERT_TRUE(a.has_value());
  int64_t demand_fills = buffer.fill_count();

  // The wrapper pushes the h2 continuation before the client asks.
  EXPECT_TRUE(buffer.ApplyPushedFill(
      "h2", {Fragment::Element("b"), Fragment::Element("c")}));

  auto b = buffer.Right(*a);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(buffer.Fetch(*b), "b");
  auto c = buffer.Right(*b);
  EXPECT_EQ(buffer.Fetch(*c), "c");
  // No demand fill happened: the push already satisfied the navigation.
  EXPECT_EQ(buffer.fill_count(), demand_fills);
  EXPECT_TRUE(wrapper.fill_log().size() <= 2u);
}

TEST(PushFillTest, UnknownOrFilledHoleIsDropped) {
  ScriptedLxpWrapper wrapper = MakeWrapper();
  BufferComponent buffer(&wrapper, "u");
  buffer.Root();
  EXPECT_FALSE(buffer.ApplyPushedFill("nope", {Fragment::Element("x")}));
  // h0 was already demand-filled by Root().
  EXPECT_FALSE(buffer.ApplyPushedFill("h0", {Fragment::Element("x")}));
  // A duplicate push for the same hole: first lands, second is dropped.
  EXPECT_TRUE(buffer.ApplyPushedFill("h1", {Fragment::Element("a")}));
  EXPECT_FALSE(buffer.ApplyPushedFill("h1", {Fragment::Element("z")}));
  EXPECT_EQ(testing::MaterializeToTerm(&buffer), "r[a]");
}

TEST(PushFillTest, PushTrafficChargedToBackgroundChannel) {
  ScriptedLxpWrapper wrapper = MakeWrapper();
  net::Channel demand(nullptr, net::ChannelOptions{});
  net::Channel background(nullptr, net::ChannelOptions{});
  BufferComponent::Options options;
  options.channel = &demand;
  options.prefetch_channel = &background;
  BufferComponent buffer(&wrapper, "u", options);
  buffer.Root();
  int64_t demand_msgs = demand.stats().messages;

  EXPECT_TRUE(buffer.ApplyPushedFill("h1", {Fragment::Element("a")}));
  EXPECT_EQ(demand.stats().messages, demand_msgs);
  EXPECT_EQ(background.stats().messages, 1);
  EXPECT_GT(background.stats().bytes, 0);
}

TEST(PushFillTest, PushedFillsMayContainHoles) {
  ScriptedLxpWrapper wrapper = MakeWrapper();
  BufferComponent buffer(&wrapper, "u");
  buffer.Root();
  EXPECT_TRUE(buffer.ApplyPushedFill(
      "h1", {Fragment::Element("a"), Fragment::Hole("h9")}));
  // The pushed hole is live: it can itself be pushed to.
  EXPECT_TRUE(buffer.ApplyPushedFill("h9", {Fragment::Element("z")}));
  EXPECT_EQ(testing::MaterializeToTerm(&buffer), "r[a,z]");
}

// ---------------------------------------------------------------------------
// SuperRootNavigable
// ---------------------------------------------------------------------------

TEST(SuperRootTest, DocumentNodeAboveRoot) {
  auto doc = testing::Doc("homes[home[zip[1]],home[zip[2]]]");
  xml::DocNavigable inner(doc.get());
  SuperRootNavigable sup(&inner);

  NodeId top = sup.Root();
  EXPECT_EQ(sup.Fetch(top), "#document");
  EXPECT_FALSE(sup.Right(top).has_value());

  auto root = sup.Down(top);
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(sup.Fetch(*root), "homes");
  // The root element is the document node's only child.
  EXPECT_FALSE(sup.Right(*root).has_value());
  EXPECT_FALSE(sup.SelectSibling(*root, LabelPredicate::Any()).has_value());

  // Interior navigation forwards.
  auto home = sup.Down(*root);
  EXPECT_EQ(sup.Fetch(*home), "home");
  auto home2 = sup.Right(*home);
  ASSERT_TRUE(home2.has_value());
  EXPECT_EQ(testing::MaterializeToTerm(&sup),
            "#document[homes[home[zip[1]],home[zip[2]]]]");
}

TEST(SuperRootTest, LazyInnerRootAccess) {
  auto doc = testing::Doc("r[x]");
  xml::DocNavigable inner(doc.get());
  NavStats stats;
  CountingNavigable counted(&inner, &stats);
  SuperRootNavigable sup(&counted);
  NodeId top = sup.Root();
  EXPECT_EQ(sup.Fetch(top), "#document");
  EXPECT_EQ(stats.total(), 0);  // the wrapped source is still untouched
  sup.Down(top);
  // Down resolves the inner root (Root() itself is not a counted command).
  EXPECT_EQ(stats.total(), 0);
}

TEST(SuperRootTest, SigmaForwardsToInterior) {
  auto doc = testing::Doc("r[x,y,x]");
  xml::DocNavigable inner(doc.get());
  SuperRootNavigable sup(&inner);
  auto root = sup.Down(sup.Root());
  auto first = sup.Down(*root);
  auto hit = sup.SelectSibling(*first, LabelPredicate::Equals("x"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(sup.Fetch(*hit), "x");
}

}  // namespace
}  // namespace mix
