#include <gtest/gtest.h>

#include "algebra/group_by_op.h"
#include "test_util.h"
#include "xml/doc_navigable.h"

namespace mix::algebra {
namespace {

/// Builds the Example 8 input with *shared node identities*: the three
/// bindings of home1 reference the same home1 node.
struct Example8 {
  Example8()
      : doc(testing::Doc(
            "d[home1,home2,home3,school1,school2,school3,school4,school5]")),
        nav(doc.get()) {
    auto node = [&](int i) {
      return testing::RefTo(&nav, doc->root()->children[static_cast<size_t>(i)]);
    };
    // Input order from Example 8: (home1,school1), (home1,school2),
    // (home2,school3), (home1,school4), (home3,school5).
    stream = std::make_unique<testing::VectorBindingStream>(
        VarList{"H", "S"},
        std::vector<std::vector<ValueRef>>{
            {node(0), node(3)},
            {node(0), node(4)},
            {node(1), node(5)},
            {node(0), node(6)},
            {node(2), node(7)},
        });
  }

  std::unique_ptr<xml::Document> doc;
  xml::DocNavigable nav;
  std::unique_ptr<testing::VectorBindingStream> stream;
};

TEST(GroupByTest, Example8Output) {
  Example8 fix;
  GroupByOp gb(fix.stream.get(), {"H"}, "S", "LSs");
  EXPECT_EQ(gb.schema(), (VarList{"H", "LSs"}));
  // The paper's expected output binding list.
  EXPECT_EQ(testing::StreamToTerm(&gb),
            "bs[b[H[home1],LSs[list[school1,school2,school4]]],"
            "b[H[home2],LSs[list[school3]]],"
            "b[H[home3],LSs[list[school5]]]]");
}

TEST(GroupByTest, NextGbSkipsSeenGroups) {
  Example8 fix;
  GroupByOp gb(fix.stream.get(), {"H"}, "S", "LSs");
  auto b1 = gb.FirstBinding();
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(AtomOf(gb.Attr(*b1, "H")), "home1");
  auto b2 = gb.NextBinding(*b1);
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(AtomOf(gb.Attr(*b2, "H")), "home2");
  auto b3 = gb.NextBinding(*b2);
  ASSERT_TRUE(b3.has_value());
  EXPECT_EQ(AtomOf(gb.Attr(*b3, "H")), "home3");
  EXPECT_FALSE(gb.NextBinding(*b3).has_value());
}

TEST(GroupByTest, ItemRightScansForSameGroup) {
  // The school2 -> school4 navigation of Example 8: Right on a grouped
  // item skips the intervening home2 binding.
  Example8 fix;
  GroupByOp gb(fix.stream.get(), {"H"}, "S", "LSs");
  auto b1 = gb.FirstBinding();
  ValueRef list = gb.Attr(*b1, "LSs");
  EXPECT_EQ(list.nav->Fetch(list.id), "list");

  auto item1 = list.nav->Down(list.id);
  ASSERT_TRUE(item1.has_value());
  EXPECT_EQ(list.nav->Fetch(*item1), "school1");
  auto item2 = list.nav->Right(*item1);
  EXPECT_EQ(list.nav->Fetch(*item2), "school2");
  auto item3 = list.nav->Right(*item2);
  EXPECT_EQ(list.nav->Fetch(*item3), "school4");
  EXPECT_FALSE(list.nav->Right(*item3).has_value());
}

TEST(GroupByTest, StaleBindingNavigationIsStable) {
  Example8 fix;
  GroupByOp gb(fix.stream.get(), {"H"}, "S", "LSs");
  auto b1 = gb.FirstBinding();
  auto b2 = gb.NextBinding(*b1);
  auto b3 = gb.NextBinding(*b2);
  (void)b3;
  // Re-deriving the successor of b1 gives home2 again.
  auto again = gb.NextBinding(*b1);
  EXPECT_EQ(AtomOf(gb.Attr(*again, "H")), "home2");
  // And b1's list still navigates.
  ValueRef list = gb.Attr(*b1, "LSs");
  EXPECT_EQ(list.nav->Fetch(*list.nav->Down(list.id)), "school1");
}

TEST(GroupByTest, GroupingIsByNodeIdentityNotValue) {
  // Two *distinct* nodes with equal labels form two groups (footnote 7:
  // grouping preserves node identities).
  auto doc = testing::Doc("d[k,k,v1,v2]");
  xml::DocNavigable nav(doc.get());
  auto node = [&](int i) {
    return testing::RefTo(&nav, doc->root()->children[static_cast<size_t>(i)]);
  };
  testing::VectorBindingStream stream(
      VarList{"K", "V"}, {{node(0), node(2)}, {node(1), node(3)}});
  GroupByOp gb(&stream, {"K"}, "V", "L");
  EXPECT_EQ(testing::StreamToTerm(&gb),
            "bs[b[K[k],L[list[v1]]],b[K[k],L[list[v2]]]]");
}

TEST(GroupByTest, MultipleGroupVars) {
  auto doc = testing::Doc("d[a,b,x,y,z]");
  xml::DocNavigable nav(doc.get());
  auto node = [&](int i) {
    return testing::RefTo(&nav, doc->root()->children[static_cast<size_t>(i)]);
  };
  // Rows: (a,b,x), (a,b,y), (b,a,z) — grouped by (first,second).
  testing::VectorBindingStream stream(
      VarList{"P", "Q", "V"},
      {{node(0), node(1), node(2)},
       {node(0), node(1), node(3)},
       {node(1), node(0), node(4)}});
  GroupByOp gb(&stream, {"P", "Q"}, "V", "L");
  EXPECT_EQ(testing::StreamToTerm(&gb),
            "bs[b[P[a],Q[b],L[list[x,y]]],b[P[b],Q[a],L[list[z]]]]");
}

TEST(GroupByTest, EmptyGroupVarsCollapsesToOneBinding) {
  Example8 fix;
  GroupByOp gb(fix.stream.get(), {}, "S", "All");
  EXPECT_EQ(testing::StreamToTerm(&gb),
            "bs[b[All[list[school1,school2,school3,school4,school5]]]]");
}

TEST(GroupByTest, EmptyGroupVarsOnEmptyInputYieldsOneEmptyList) {
  // "create one answer element (= for each {})" even with no bindings.
  testing::VectorBindingStream empty(VarList{"X"}, {});
  GroupByOp gb(&empty, {}, "X", "All");
  EXPECT_EQ(testing::StreamToTerm(&gb), "bs[b[All[list]]]");
}

TEST(GroupByTest, NonEmptyGroupVarsOnEmptyInputIsEmpty) {
  testing::VectorBindingStream empty(VarList{"K", "X"}, {});
  GroupByOp gb(&empty, {"K"}, "X", "L");
  EXPECT_FALSE(gb.FirstBinding().has_value());
}

TEST(GroupByTest, ItemInteriorNavigationForwards) {
  // Grouped values with structure: interior navigation passes through.
  auto doc = testing::Doc("d[k,school[dir[Smith],zip[91220]]]");
  xml::DocNavigable nav(doc.get());
  auto node = [&](int i) {
    return testing::RefTo(&nav, doc->root()->children[static_cast<size_t>(i)]);
  };
  testing::VectorBindingStream stream(VarList{"K", "S"}, {{node(0), node(1)}});
  GroupByOp gb(&stream, {"K"}, "S", "L");
  auto b = gb.FirstBinding();
  ValueRef list = gb.Attr(*b, "L");
  auto school = list.nav->Down(list.id);
  auto dir = list.nav->Down(*school);
  EXPECT_EQ(list.nav->Fetch(*dir), "dir");
  auto smith = list.nav->Down(*dir);
  EXPECT_EQ(list.nav->Fetch(*smith), "Smith");
  EXPECT_FALSE(list.nav->Down(*smith).has_value());
  auto zip = list.nav->Right(*dir);
  EXPECT_EQ(list.nav->Fetch(*zip), "zip");
}

}  // namespace
}  // namespace mix::algebra
