// Parser robustness: every fallible front end (XML, term notation, XMAS,
// path expressions, mini-SQL, CSV) must return a Status on arbitrary
// garbage and survive adversarial shapes (deep nesting, truncations,
// binary noise) without crashing.
#include <gtest/gtest.h>

#include <string>

#include "pathexpr/path_expr.h"
#include "rdb/sql.h"
#include "wrappers/csv_wrapper.h"
#include "xmas/parser.h"
#include "xml/parser.h"

namespace mix {
namespace {

/// Deterministic pseudo-random byte strings.
std::string NoiseString(uint64_t seed, size_t length) {
  std::string out;
  out.reserve(length);
  uint64_t state = seed;
  for (size_t i = 0; i < length; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    // Printable-ish mix plus the structural characters the parsers react to.
    const char* alphabet =
        "<>/=\"'{}$%.|*()_,abAB012 \n\t&;:!-#@?+[]";
    out.push_back(alphabet[state % 39]);
  }
  return out;
}

TEST(RobustnessTest, RandomNoiseNeverCrashesAnyParser) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    std::string noise = NoiseString(seed, 40 + seed * 7);
    (void)xml::Parse(noise);
    (void)xml::ParseTerm(noise);
    (void)xmas::ParseQuery(noise);
    (void)pathexpr::PathExpr::Parse(noise);
    (void)rdb::ParseSelect(noise);
    (void)wrappers::ParseCsv(noise);
  }
  SUCCEED();
}

TEST(RobustnessTest, TruncationsOfValidInputsFailCleanly) {
  const std::string xml = "<homes><home><zip>91220</zip></home></homes>";
  for (size_t cut = 0; cut < xml.size(); ++cut) {
    auto r = xml::Parse(xml.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix length " << cut;
  }
  const std::string query =
      "CONSTRUCT <a> $X {$X} </a> {} WHERE s p.q $X AND $X r $Y";
  for (size_t cut = 1; cut < query.size(); cut += 3) {
    (void)xmas::ParseQuery(query.substr(0, cut));  // must not crash
  }
  const std::string sql = "SELECT a, b FROM t WHERE c = 'x' LIMIT 3";
  for (size_t cut = 1; cut < sql.size(); cut += 2) {
    (void)rdb::ParseSelect(sql.substr(0, cut));
  }
}

TEST(RobustnessTest, DeeplyNestedXml) {
  constexpr int kDepth = 2000;
  std::string deep;
  for (int i = 0; i < kDepth; ++i) deep += "<a>";
  deep += "x";
  for (int i = 0; i < kDepth; ++i) deep += "</a>";
  auto doc = xml::Parse(deep);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->node_count(), kDepth + 1);
}

TEST(RobustnessTest, DeeplyNestedTermAndPattern) {
  std::string term;
  for (int i = 0; i < 2000; ++i) term += "a[";
  term += "x";
  for (int i = 0; i < 2000; ++i) term += "]";
  EXPECT_TRUE(xml::ParseTerm(term).ok());

  std::string path;
  for (int i = 0; i < 500; ++i) path += "(";
  path += "a";
  for (int i = 0; i < 500; ++i) path += ")*";
  EXPECT_TRUE(pathexpr::PathExpr::Parse(path).ok());
}

TEST(RobustnessTest, PathologicalPathExpressionStillMatches) {
  // Heavily nested closure: the NFA must stay finite and usable.
  auto p = pathexpr::PathExpr::Parse("((a|b)*.(c|_)?)+.d");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().Matches({"a", "b", "c", "d"}));
  EXPECT_TRUE(p.value().Matches({"d"}));
  EXPECT_FALSE(p.value().Matches({"a"}));
}

TEST(RobustnessTest, HugeAttributeAndTextContent) {
  std::string big(200000, 'x');
  auto doc = xml::Parse("<a k=\"" + big + "\">" + big + "</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->root()->children.size(), 2u);  // @k + text
}

TEST(RobustnessTest, XmasCommentBombsAndWeirdWhitespace) {
  std::string text = "CONSTRUCT";
  for (int i = 0; i < 100; ++i) text += "\n% comment line with <tags> $vars";
  text += "\n<a> $X {$X} </a> {}\nWHERE\n\t\ts  p\n$X";
  auto q = xmas::ParseQuery(text);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().conditions.size(), 1u);
}

}  // namespace
}  // namespace mix
