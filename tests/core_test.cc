#include <gtest/gtest.h>

#include <unordered_set>

#include "core/navigable.h"
#include "core/node_id.h"
#include "core/status.h"
#include "xml/doc_navigable.h"
#include "xml/parser.h"

namespace mix {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, ValueAccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, ErrorAccess) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(NodeIdTest, InvalidByDefault) {
  NodeId id;
  EXPECT_FALSE(id.valid());
}

TEST(NodeIdTest, TagAndComponents) {
  NodeId inner("src", {int64_t{1}, int64_t{7}});
  NodeId id("b", {int64_t{3}, std::string("H"), inner});
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.tag(), "b");
  ASSERT_EQ(id.arity(), 3u);
  EXPECT_EQ(id.IntAt(0), 3);
  EXPECT_EQ(id.StrAt(1), "H");
  EXPECT_EQ(id.IdAt(2), inner);
}

TEST(NodeIdTest, StructuralEquality) {
  NodeId a("v", {int64_t{1}, std::string("x")});
  NodeId b("v", {int64_t{1}, std::string("x")});
  NodeId c("v", {int64_t{2}, std::string("x")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(NodeIdTest, NestedEquality) {
  NodeId inner1("src", {int64_t{1}});
  NodeId inner2("src", {int64_t{1}});
  EXPECT_EQ(NodeId("b", {inner1}), NodeId("b", {inner2}));
  EXPECT_NE(NodeId("b", {inner1}), NodeId("c", {inner2}));
}

TEST(NodeIdTest, HashableInUnorderedContainers) {
  std::unordered_set<NodeId, NodeIdHash> set;
  set.insert(NodeId("a", {int64_t{1}}));
  set.insert(NodeId("a", {int64_t{1}}));
  set.insert(NodeId("a", {int64_t{2}}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(NodeIdTest, ToStringIsReadable) {
  NodeId id("b", {int64_t{3}, std::string("H"), NodeId("src", {int64_t{1}})});
  EXPECT_EQ(id.ToString(), "b(3,'H',src(1))");
  EXPECT_EQ(NodeId().ToString(), "<null>");
  EXPECT_EQ(NodeId("bs").ToString(), "bs");
}

TEST(LabelPredicateTest, Matchers) {
  EXPECT_TRUE(LabelPredicate::Equals("zip").Matches("zip"));
  EXPECT_FALSE(LabelPredicate::Equals("zip").Matches("zap"));
  EXPECT_TRUE(LabelPredicate::Any().Matches("anything"));
  auto pred = LabelPredicate::Fn(
      [](const Label& l) { return l.size() == 3; }, "len3");
  EXPECT_TRUE(pred.Matches("abc"));
  EXPECT_FALSE(pred.Matches("ab"));
  EXPECT_EQ(pred.description(), "len3");
}

TEST(NavStatsTest, AccumulatesAndPrints) {
  NavStats a{1, 2, 3, 4};
  NavStats b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.downs, 11);
  EXPECT_EQ(a.rights, 22);
  EXPECT_EQ(a.fetches, 33);
  EXPECT_EQ(a.selects, 44);
  EXPECT_EQ(a.total(), 110);
  EXPECT_NE(a.ToString().find("total=110"), std::string::npos);
}

TEST(CountingNavigableTest, CountsEveryCommand) {
  auto doc = xml::ParseTerm("r[a,b,c]").ValueOrDie();
  xml::DocNavigable nav(doc.get());
  NavStats stats;
  CountingNavigable counted(&nav, &stats);

  NodeId root = counted.Root();
  auto child = counted.Down(root);
  ASSERT_TRUE(child.has_value());
  EXPECT_EQ(counted.Fetch(*child), "a");
  auto sibling = counted.Right(*child);
  ASSERT_TRUE(sibling.has_value());
  auto hit = counted.SelectSibling(*child, LabelPredicate::Equals("c"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(counted.Fetch(*hit), "c");

  EXPECT_EQ(stats.downs, 1);
  EXPECT_EQ(stats.rights, 1);
  EXPECT_EQ(stats.fetches, 2);
  EXPECT_EQ(stats.selects, 1);
}

TEST(NavigableTest, DefaultSelectSiblingScans) {
  auto doc = xml::ParseTerm("r[a,b,c,b]").ValueOrDie();
  xml::DocNavigable nav(doc.get());
  auto first = nav.Down(nav.Root());
  ASSERT_TRUE(first.has_value());
  auto hit = nav.SelectSibling(*first, LabelPredicate::Equals("b"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(nav.Fetch(*hit), "b");
  // σ is exclusive: starting *at* a b finds the later b.
  auto second_b = nav.SelectSibling(*hit, LabelPredicate::Equals("b"));
  ASSERT_TRUE(second_b.has_value());
  auto none = nav.SelectSibling(*second_b, LabelPredicate::Equals("b"));
  EXPECT_FALSE(none.has_value());
}

}  // namespace
}  // namespace mix

namespace mix {
namespace {

TEST(NthChildTest, DefaultImplementationLoops) {
  auto doc = xml::ParseTerm("r[a,b,c]").ValueOrDie();
  xml::DocNavigable nav(doc.get());
  // Through the base-class default (CountingNavigable has its own counter
  // but forwards to the O(1) override; exercise both).
  NavStats stats;
  CountingNavigable counted(&nav, &stats);
  auto b = counted.NthChild(counted.Root(), 1);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(counted.Fetch(*b), "b");
  EXPECT_EQ(stats.nths, 1);
  EXPECT_FALSE(counted.NthChild(counted.Root(), 3).has_value());
  EXPECT_FALSE(counted.NthChild(counted.Root(), -1).has_value());
}

TEST(NthChildTest, DocNavigableIsRandomAccess) {
  auto doc = xml::ParseTerm("r[a,b,c,d]").ValueOrDie();
  xml::DocNavigable nav(doc.get());
  EXPECT_EQ(nav.Fetch(*nav.NthChild(nav.Root(), 0)), "a");
  EXPECT_EQ(nav.Fetch(*nav.NthChild(nav.Root(), 3)), "d");
  EXPECT_FALSE(nav.NthChild(nav.Root(), 4).has_value());
  auto leaf = nav.NthChild(nav.Root(), 0);
  EXPECT_FALSE(nav.NthChild(*leaf, 0).has_value());
}

TEST(NavStatsTest, NthCounted) {
  NavStats a{1, 2, 3, 4, 5};
  EXPECT_EQ(a.total(), 15);
  EXPECT_NE(a.ToString().find("nth=5"), std::string::npos);
}

}  // namespace
}  // namespace mix
