// Plan-IR optimizer tests (DESIGN.md §6): per-pass units over the IR,
// golden per-pass dumps, and end-to-end byte-equality of optimized vs.
// level-0 plans across the Fig. 3 query family, stacked mediators, and the
// PR 4 fault matrix — plus the NavStats guarantee that an optimized plan
// never navigates the sources more than the unoptimized one.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "buffer/buffer.h"
#include "client/framed_document.h"
#include "mediator/instantiate.h"
#include "mediator/ir.h"
#include "mediator/passes/pass.h"
#include "mediator/plan_cache.h"
#include "mediator/plan_text.h"
#include "mediator/translate.h"
#include "service/service.h"
#include "test_util.h"
#include "wrappers/relational_wrapper.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/random_tree.h"

namespace mix::mediator {
namespace {

using algebra::BindingPredicate;
using algebra::CompareOp;
using client::FramedDocument;
using passes::OptimizePlan;
using passes::OptimizeReport;
using passes::OptimizerOptions;

// The Fig. 3 running example and fixtures (same as tests/mediator_test.cc).
const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";
const char* kHomes =
    "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]],"
    "home[addr[Nowhere],zip[99999]]]";
const char* kSchools =
    "schools[school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],"
    "school[dir[Hart],zip[91223]]]";

PlanPtr Compile(const std::string& text) {
  auto plan = CompileXmas(text);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).ValueOrDie();
}

int CountKind(const PlanNode& n, PlanNode::Kind kind) {
  int c = n.kind == kind ? 1 : 0;
  for (const PlanPtr& child : n.children) c += CountKind(*child, kind);
  return c;
}

const PlanNode* FindKind(const PlanNode& n, PlanNode::Kind kind) {
  if (n.kind == kind) return &n;
  for (const PlanPtr& child : n.children) {
    if (const PlanNode* f = FindKind(*child, kind)) return f;
  }
  return nullptr;
}

/// Capability of the realty test database: homes(addr string, zip int,
/// price double).
SourceCapability RealtyCapability() {
  SourceCapability cap;
  cap.pushdown = true;
  cap.database = "realty";
  cap.tables["homes"] = {{"addr", ColumnType::kString},
                         {"zip", ColumnType::kInt},
                         {"price", ColumnType::kDouble}};
  return cap;
}

rdb::Database MakeRealtyDb(int rows) {
  rdb::Database db("realty");
  rdb::Schema schema({{"addr", rdb::Type::kString},
                      {"zip", rdb::Type::kInt},
                      {"price", rdb::Type::kDouble}});
  rdb::Table* t = db.CreateTable("homes", schema).ValueOrDie();
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(t->Insert({rdb::Value("street " + std::to_string(i)),
                           rdb::Value(int64_t{91220 + i % 20}),
                           rdb::Value(100.5 + i)})
                    .ok());
  }
  return db;
}

// ---------------------------------------------------------------------------
// IR plumbing
// ---------------------------------------------------------------------------

TEST(PlanIrTest, RoundTripPreservesPlanText) {
  PlanPtr plan = Compile(kFig3);
  IrPtr ir = IrFromPlan(*plan);
  ASSERT_TRUE(AnalyzeIr(ir.get(), {}, false).ok());
  EXPECT_EQ(IrToPlan(*ir)->ToString(), plan->ToString());
}

TEST(PlanIrTest, AnalyzeAnnotatesSchemaSourcesAndClass) {
  PlanPtr plan = Compile(kFig3);
  IrPtr ir = IrFromPlan(*plan);
  ASSERT_TRUE(AnalyzeIr(ir.get(), {}, false).ok());
  // Root is tupleDestroy (document, no schema); its subtree sees both
  // sources, and without σ the join plan is merely browsable.
  EXPECT_TRUE(ir->schema.empty());
  EXPECT_EQ(ir->sources,
            (std::vector<std::string>{"homesSrc", "schoolsSrc"}));
  EXPECT_EQ(ir->cls, Browsability::kBrowsable);
  // Schema flows: the stream under the root binds the constructed answer.
  ASSERT_EQ(ir->children.size(), 1u);
  EXPECT_FALSE(ir->children[0]->schema.empty());
}

TEST(PlanIrTest, AnnotatedDumpRoundTripsThroughPlanText) {
  PlanPtr plan = Compile(kFig3);
  IrPtr ir = IrFromPlan(*plan);
  ASSERT_TRUE(AnalyzeIr(ir.get(), {}, false).ok());
  std::string annotated = DumpIr(*ir, /*annotate=*/true);
  ASSERT_NE(annotated.find('%'), std::string::npos);
  // plan_text strips the % annotations, so the dump stays machine-readable.
  auto parsed = ParsePlanText(annotated);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value()->ToString(), plan->ToString());
}

// ---------------------------------------------------------------------------
// Per-pass units
// ---------------------------------------------------------------------------

TEST(PassTest, FusionFusesSelectIntoGetDescendants) {
  PlanPtr plan = Compile(
      "CONSTRUCT <hits> $H {$H} </hits> {} "
      "WHERE homesSrc homes.home $H AND $H zip._ $Z AND $Z = '91220'");
  PlanPtr baseline = Compile(
      "CONSTRUCT <hits> $H {$H} </hits> {} "
      "WHERE homesSrc homes.home $H AND $H zip._ $Z AND $Z = '91220'");
  OptimizerOptions options;
  auto report = OptimizePlan(&plan, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report.value().applied("fusion"), 1);
  // The standalone select disappeared into the zip._ extraction's filter.
  EXPECT_EQ(CountKind(*plan, PlanNode::Kind::kSelect), 0);
  const PlanNode* gd = nullptr;
  for (const PlanNode* n = plan.get(); n != nullptr;) {
    if (n->kind == PlanNode::Kind::kGetDescendants &&
        n->predicate.has_value()) {
      gd = n;
      break;
    }
    n = n->children.empty() ? nullptr : n->children[0].get();
  }
  ASSERT_NE(gd, nullptr);
  EXPECT_EQ(gd->out_var, "Z");

  // Byte-equality against the unoptimized plan.
  auto homes = testing::Doc(kHomes);
  xml::DocNavigable nav1(homes.get()), nav2(homes.get());
  SourceRegistry s1, s2;
  s1.Register("homesSrc", &nav1);
  s2.Register("homesSrc", &nav2);
  auto opt = LazyMediator::Build(*plan, s1).ValueOrDie();
  auto raw = LazyMediator::Build(*baseline, s2).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(opt->document()),
            testing::MaterializeToTerm(raw->document()));
}

TEST(PassTest, DeadConstructorEliminated) {
  // B is constructed but never consumed; A reaches the document root.
  PlanPtr gd = PlanNode::GetDescendants(PlanNode::Source("homesSrc", "R"), "R",
                                        "homes.home", "H");
  PlanPtr c1 = PlanNode::CreateElement(std::move(gd), true, "a", "H", "A");
  PlanPtr c2 = PlanNode::CreateElement(std::move(c1), true, "b", "H", "B");
  PlanPtr plan = PlanNode::TupleDestroy(std::move(c2), "A");
  PlanPtr baseline = plan->Clone();

  OptimizerOptions options;
  auto report = OptimizePlan(&plan, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report.value().applied("fusion"), 1);
  EXPECT_EQ(CountKind(*plan, PlanNode::Kind::kCreateElement), 1);
  EXPECT_EQ(FindKind(*plan, PlanNode::Kind::kCreateElement)->out_var, "A");

  auto homes = testing::Doc(kHomes);
  xml::DocNavigable nav1(homes.get()), nav2(homes.get());
  SourceRegistry s1, s2;
  s1.Register("homesSrc", &nav1);
  s2.Register("homesSrc", &nav2);
  auto opt = LazyMediator::Build(*plan, s1).ValueOrDie();
  auto raw = LazyMediator::Build(*baseline, s2).ValueOrDie();
  EXPECT_EQ(testing::MaterializeToTerm(opt->document()),
            testing::MaterializeToTerm(raw->document()));
}

TEST(PassTest, LiveConstructorsAreKept) {
  // Every constructed element in Fig. 3 feeds the answer — nothing dies.
  PlanPtr plan = Compile(kFig3);
  OptimizerOptions options;
  auto report = OptimizePlan(&plan, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().applied("fusion"), 0);
}

TEST(PassTest, ProjectPruneDropsFullSchemaProject) {
  PlanPtr gd = PlanNode::GetDescendants(PlanNode::Source("s", "R"), "R",
                                        "a.b", "X");
  PlanPtr project = PlanNode::Project(std::move(gd), {"R", "X"});
  PlanPtr wrap = PlanNode::WrapList(std::move(project), "X", "L");
  PlanPtr plan = PlanNode::TupleDestroy(std::move(wrap), "L");
  OptimizerOptions options;
  auto report = OptimizePlan(&plan, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().applied("project_prune"), 1);
  EXPECT_EQ(CountKind(*plan, PlanNode::Kind::kProject), 0);
}

PlanPtr LabelChainPlan(const std::string& source_name) {
  PlanPtr gd = PlanNode::GetDescendants(PlanNode::Source(source_name, "R"),
                                        "R", "homes.home", "H");
  PlanPtr wrap = PlanNode::WrapList(std::move(gd), "H", "L");
  return PlanNode::TupleDestroy(std::move(wrap), "L");
}

TEST(PassTest, BrowsabilityPassUpgradesSigmaCapableSources) {
  PlanPtr plan = LabelChainPlan("homesSrc");
  OptimizerOptions options;
  options.sources["homesSrc"].sigma = true;
  auto report = OptimizePlan(&plan, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().applied("browsability"), 1);
  const PlanNode* gd = FindKind(*plan, PlanNode::Kind::kGetDescendants);
  ASSERT_NE(gd, nullptr);
  EXPECT_TRUE(gd->use_sigma);
  // The classifier sees σ through the capability map from the first
  // analysis on, so the report carries the bounded class throughout.
  EXPECT_EQ(report.value().after_cls, Browsability::kBoundedBrowsable);
}

TEST(PassTest, BrowsabilityPassRespectsPerSourceCapability) {
  // Same shape over a source with no σ capability: no rewrite.
  PlanPtr plan = LabelChainPlan("otherSrc");
  OptimizerOptions options;
  options.sources["homesSrc"].sigma = true;  // different source
  auto report = OptimizePlan(&plan, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().applied("browsability"), 0);
  // Without σ the sibling scans stay data-dependent: merely browsable.
  EXPECT_EQ(report.value().after_cls, Browsability::kBrowsable);
}

TEST(PassTest, JoinReorderRotatesByFanoutAndPreservesAnswer) {
  // join_p(join_q(A, B), C) where q is a non-equality pairing and p an
  // equality over B- and C-variables only: rotating p inward is legal and
  // its estimate is lower, so the reorder fires.
  auto build = [] {
    PlanPtr a = PlanNode::GetDescendants(
        PlanNode::GetDescendants(PlanNode::Source("homesSrc", "RA"), "RA",
                                 "homes.home", "HA"),
        "HA", "zip._", "A");
    PlanPtr b = PlanNode::GetDescendants(
        PlanNode::GetDescendants(PlanNode::Source("homesSrc2", "RB"), "RB",
                                 "homes.home", "HB"),
        "HB", "zip._", "B");
    PlanPtr c = PlanNode::GetDescendants(
        PlanNode::GetDescendants(PlanNode::Source("schoolsSrc", "RC"), "RC",
                                 "schools.school", "SC"),
        "SC", "zip._", "C");
    PlanPtr inner = PlanNode::Join(
        std::move(a), std::move(b),
        BindingPredicate::VarVar("A", CompareOp::kNe, "B"));
    PlanPtr outer = PlanNode::Join(
        std::move(inner), std::move(c),
        BindingPredicate::VarVar("B", CompareOp::kEq, "C"));
    PlanPtr wrap = PlanNode::WrapList(std::move(outer), "A", "L");
    return PlanNode::TupleDestroy(std::move(wrap), "L");
  };
  PlanPtr plan = build();
  PlanPtr baseline = build();

  OptimizerOptions options;
  auto report = OptimizePlan(&plan, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().applied("join_reorder"), 1);
  // The equality join moved inward: the root join is now the != pairing.
  const PlanNode* join = FindKind(*plan, PlanNode::Kind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->predicate->op(), CompareOp::kNe);

  auto homes = testing::Doc(kHomes);
  auto schools = testing::Doc(kSchools);
  auto run = [&](const PlanNode& p) {
    xml::DocNavigable h1(homes.get()), h2(homes.get()), s(schools.get());
    SourceRegistry reg;
    reg.Register("homesSrc", &h1);
    reg.Register("homesSrc2", &h2);
    reg.Register("schoolsSrc", &s);
    auto med = LazyMediator::Build(p, reg).ValueOrDie();
    return testing::MaterializeToTerm(med->document());
  };
  // Reassociation preserves leaf order, so the answer is byte-identical.
  EXPECT_EQ(run(*plan), run(*baseline));
}

// ---------------------------------------------------------------------------
// Wrapper predicate pushdown
// ---------------------------------------------------------------------------

const char* kZipQuery =
    "CONSTRUCT <hits> $R {$R} </hits> {} "
    "WHERE realty realty.homes.row $R AND $R zip._ $Z AND $Z = '91225'";

TEST(WrapperPushdownTest, IntEqualityCompilesIntoSqlView) {
  PlanPtr plan = Compile(kZipQuery);
  OptimizerOptions options;
  options.sources["realty"] = RealtyCapability();
  auto report = OptimizePlan(&plan, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().applied("wrapper_pushdown"), 1);

  const PlanNode* source = FindKind(*plan, PlanNode::Kind::kSource);
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->source_uri, "sql:SELECT * FROM homes WHERE zip = 91225");
  // The row extraction now walks the query view's document shape.
  EXPECT_EQ(CountKind(*plan, PlanNode::Kind::kSelect), 0);
  bool repointed = false;
  for (const PlanNode* n = plan.get(); n != nullptr;
       n = n->children.empty() ? nullptr : n->children[0].get()) {
    if (n->kind == PlanNode::Kind::kGetDescendants && n->path == "view.row") {
      repointed = true;
    }
  }
  EXPECT_TRUE(repointed);
}

TEST(WrapperPushdownTest, MultiplePredicatesShareOneView) {
  PlanPtr plan = Compile(
      "CONSTRUCT <hits> $R {$R} </hits> {} "
      "WHERE realty realty.homes.row $R AND $R zip._ $Z "
      "AND $Z >= '91225' AND $Z < '91230'");
  OptimizerOptions options;
  options.sources["realty"] = RealtyCapability();
  auto report = OptimizePlan(&plan, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().applied("wrapper_pushdown"), 2);
  const PlanNode* source = FindKind(*plan, PlanNode::Kind::kSource);
  ASSERT_NE(source, nullptr);
  // Predicates land in plan pre-order (outermost select first); AND is
  // commutative, so the order is cosmetic.
  EXPECT_EQ(source->source_uri,
            "sql:SELECT * FROM homes WHERE zip < 91230 AND zip >= 91225");
}

TEST(WrapperPushdownTest, TypeDisciplineRefusesUnsafeComparisons) {
  struct Case {
    const char* predicate;
    const char* why;
  };
  const Case cases[] = {
      // String column, numeric constant: XMAS compares numerically, rdb
      // lexicographically — they can disagree, so no pushdown.
      {"$R addr._ $A AND $A = '10'", "numeric constant on string column"},
      // Int column, non-integer constant: never equal numerically, but the
      // mismatch makes the SQL side reject or reinterpret — refuse.
      {"$R zip._ $Z AND $Z = 'abc'", "non-integer constant on int column"},
      // Double column: text round-tripping is not exact.
      {"$R price._ $P AND $P = '100.5'", "double column"},
  };
  for (const Case& c : cases) {
    PlanPtr plan = Compile(std::string("CONSTRUCT <hits> $R {$R} </hits> {} "
                                       "WHERE realty realty.homes.row $R AND ") +
                           c.predicate);
    OptimizerOptions options;
    options.sources["realty"] = RealtyCapability();
    auto report = OptimizePlan(&plan, options);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().applied("wrapper_pushdown"), 0) << c.why;
    const PlanNode* source = FindKind(*plan, PlanNode::Kind::kSource);
    ASSERT_NE(source, nullptr);
    EXPECT_TRUE(source->source_uri.empty()) << c.why;
  }
}

TEST(WrapperPushdownTest, QuoteInConstantNeverReachesSqlLexer) {
  // The XMAS surface cannot spell an embedded quote, but a hand-built (or
  // stacked-mediator-generated) plan can: the pushdown must refuse it.
  PlanPtr rows = PlanNode::GetDescendants(PlanNode::Source("realty", "R"),
                                          "R", "realty.homes.row", "T");
  PlanPtr cells =
      PlanNode::GetDescendants(std::move(rows), "T", "addr._", "A");
  PlanPtr filtered = PlanNode::Select(
      std::move(cells),
      BindingPredicate::VarConst("A", CompareOp::kEq, "o'brien"));
  PlanPtr wrap = PlanNode::WrapList(std::move(filtered), "T", "L");
  PlanPtr plan = PlanNode::TupleDestroy(std::move(wrap), "L");

  OptimizerOptions options;
  options.sources["realty"] = RealtyCapability();
  auto report = OptimizePlan(&plan, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().applied("wrapper_pushdown"), 0);
  const PlanNode* source = FindKind(*plan, PlanNode::Kind::kSource);
  ASSERT_NE(source, nullptr);
  EXPECT_TRUE(source->source_uri.empty());
}

TEST(WrapperPushdownTest, NoPushdownWithoutCapability) {
  PlanPtr plan = Compile(kZipQuery);
  OptimizerOptions options;  // no realty capability registered
  auto report = OptimizePlan(&plan, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().applied("wrapper_pushdown"), 0);
  const PlanNode* source = FindKind(*plan, PlanNode::Kind::kSource);
  EXPECT_TRUE(source->source_uri.empty());
}

TEST(WrapperPushdownTest, EndToEndFiltersServerSideAndMatchesBaseline) {
  rdb::Database db = MakeRealtyDb(200);

  auto run = [&db](int level, int64_t* fills) {
    wrappers::RelationalLxpWrapper wrapper(&db);
    PlanPtr plan = Compile(kZipQuery);
    if (level > 0) {
      OptimizerOptions options;
      options.sources["realty"] = RealtyCapability();
      auto report = OptimizePlan(&plan, options);
      EXPECT_TRUE(report.ok());
      EXPECT_GE(report.value().applied("wrapper_pushdown"), 1);
    }
    buffer::BufferComponent buffer(&wrapper, "db");
    SourceRegistry reg;
    reg.Register("realty", &buffer);
    reg.RegisterOpener("realty", [&wrapper](const std::string& uri)
                                     -> std::unique_ptr<Navigable> {
      return std::make_unique<buffer::BufferComponent>(&wrapper, uri);
    });
    auto med = LazyMediator::Build(*plan, reg).ValueOrDie();
    std::string answer = testing::MaterializeToTerm(med->document());
    *fills = wrapper.fills_served();
    return answer;
  };

  int64_t fills0 = 0, fills1 = 0;
  std::string baseline = run(0, &fills0);
  std::string optimized = run(1, &fills1);
  EXPECT_EQ(optimized, baseline);
  // 200 rows, 10 matches: the baseline ships every row across the LXP
  // boundary while the pushed-down view ships only matches — far fewer
  // exchanges (the E15 claim, pinned here at the unit level).
  EXPECT_LT(fills1, fills0);
  EXPECT_NE(baseline.find("91225"), std::string::npos);
  EXPECT_EQ(baseline.find("street 0]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pass-dump golden file (MIX_DUMP_PASSES surface)
// ---------------------------------------------------------------------------

TEST(DumpPassesTest, PerPassDumpsMatchGoldenFile) {
  PlanPtr plan = Compile(kZipQuery);
  OptimizerOptions options;
  options.sources["realty"] = RealtyCapability();
  std::string log;
  options.dump_hook = [&log](const std::string& pass, const std::string& dump) {
    log += "== " + pass + " ==\n" + dump;
  };
  auto report = OptimizePlan(&plan, options);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(log.empty());

  const std::string golden_path =
      std::string(MIX_FIXTURES_DIR) + "/plan_opt_passes.golden";
  if (std::getenv("MIX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    out << log;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (run with MIX_REGEN_GOLDEN=1 to create)";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(log, golden.str());
}

TEST(DumpPassesTest, EnvVarPathDumpsToStderrWithoutCrashing) {
  // No hook set + MIX_DUMP_PASSES=1: dumps go to stderr. Just exercise it.
  ::setenv("MIX_DUMP_PASSES", "1", 1);
  PlanPtr plan = Compile(kZipQuery);
  OptimizerOptions options;
  options.sources["realty"] = RealtyCapability();
  auto report = OptimizePlan(&plan, options);
  ::unsetenv("MIX_DUMP_PASSES");
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().total(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end equivalence: optimized vs. level-0 across the query family
// ---------------------------------------------------------------------------

struct EvalOutcome {
  std::string answer;
  NavStats stats;
};

EvalOutcome Evaluate(const PlanNode& plan, const xml::Document* homes,
                     const xml::Document* schools) {
  EvalOutcome out;
  xml::DocNavigable homes_nav(homes);
  xml::DocNavigable schools_nav(schools);
  CountingNavigable hc(&homes_nav, &out.stats);
  CountingNavigable sc(&schools_nav, &out.stats);
  SourceRegistry reg;
  reg.Register("homesSrc", &hc);
  reg.Register("schoolsSrc", &sc);
  auto med = LazyMediator::Build(plan, reg).ValueOrDie();
  out.answer = testing::MaterializeToTerm(med->document());
  return out;
}

TEST(EndToEndTest, OptimizedAnswersAreByteIdenticalAndNavigateNoMore) {
  const char* queries[] = {
      // Fig. 3 itself (join + group).
      kFig3,
      // Plain extraction.
      "CONSTRUCT <answer> $H {$H} </answer> {} WHERE homesSrc homes.home $H",
      // Constant selection (σ + fusion candidates).
      "CONSTRUCT <hits> $H {$H} </hits> {} "
      "WHERE homesSrc homes.home $H AND $H zip._ $Z AND $Z = '91002'",
      // Cross-source selection over the join.
      "CONSTRUCT <pairs> <pair> $H $S {$S} </pair> {$H} </pairs> {} "
      "WHERE homesSrc homes.home $H AND $H zip._ $V1 "
      "AND schoolsSrc schools.school $S AND $S zip._ $V2 "
      "AND $V1 = $V2 AND $V2 = '91003'",
      // Nested extraction below the match.
      "CONSTRUCT <dirs> $D {$D} </dirs> {} "
      "WHERE schoolsSrc schools.school $S AND $S dir._ $D",
  };
  auto homes = xml::MakeHomesDoc(25, 6);
  auto schools = xml::MakeSchoolsDoc(25, 6);
  for (const char* q : queries) {
    PlanPtr baseline = Compile(q);
    PlanPtr optimized = Compile(q);
    OptimizerOptions options;
    options.sources["homesSrc"].sigma = true;
    options.sources["schoolsSrc"].sigma = true;
    auto report = OptimizePlan(&optimized, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    EvalOutcome raw = Evaluate(*baseline, homes.get(), schools.get());
    EvalOutcome opt = Evaluate(*optimized, homes.get(), schools.get());
    EXPECT_EQ(opt.answer, raw.answer) << q;
    // The optimizer may never make navigation worse (σ counts once per
    // skip; the unoptimized loop pays r+f per skipped sibling).
    EXPECT_LE(opt.stats.total(), raw.stats.total()) << q;
  }
}

TEST(EndToEndTest, StackedMediatorsAgreeUnderOptimization) {
  PlanPtr view = Compile(kFig3);
  const char* upper_text =
      "CONSTRUCT <homes_found> $M {$M} </homes_found> {} "
      "WHERE theView answer.med_home $M";
  auto homes = xml::MakeHomesDoc(20, 5);
  auto schools = xml::MakeSchoolsDoc(20, 5);

  auto run = [&](bool optimize) {
    PlanPtr lower = Compile(kFig3);
    PlanPtr upper = Compile(upper_text);
    if (optimize) {
      OptimizerOptions options;
      options.sources["homesSrc"].sigma = true;
      options.sources["schoolsSrc"].sigma = true;
      EXPECT_TRUE(OptimizePlan(&lower, options).ok());
      // The upper mediator's source is the lower mediator's virtual
      // document — no declared capability, σ stays off there.
      EXPECT_TRUE(OptimizePlan(&upper, OptimizerOptions()).ok());
    }
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    SourceRegistry lower_reg;
    lower_reg.Register("homesSrc", &homes_nav);
    lower_reg.Register("schoolsSrc", &schools_nav);
    auto lower_med = LazyMediator::Build(*lower, lower_reg).ValueOrDie();
    SourceRegistry upper_reg;
    upper_reg.Register("theView", lower_med->document());
    auto upper_med = LazyMediator::Build(*upper, upper_reg).ValueOrDie();
    return testing::MaterializeToTerm(upper_med->document());
  };
  EXPECT_EQ(run(true), run(false));
}

// ---------------------------------------------------------------------------
// Service integration: A/B level, fault matrix, metrics
// ---------------------------------------------------------------------------

TEST(ServiceOptTest, AnswerByteIdenticalAcrossOptimizerLevels) {
  auto answer_at_level = [](int level) {
    auto homes = testing::Doc(kHomes);
    auto schools = testing::Doc(kSchools);
    service::SessionEnvironment env;
    env.RegisterWrapperFactory(
        "homesSrc",
        [&homes] {
          return std::make_unique<wrappers::XmlLxpWrapper>(homes.get());
        },
        "homes.xml");
    env.RegisterWrapperFactory(
        "schoolsSrc",
        [&schools] {
          return std::make_unique<wrappers::XmlLxpWrapper>(schools.get());
        },
        "schools.xml");
    service::MediatorService::Options options;
    options.optimizer_level = level;
    service::MediatorService svc(&env, options);
    auto doc = FramedDocument::Open(&svc, kFig3).ValueOrDie();
    return testing::MaterializeToTerm(doc.get());
  };
  EXPECT_EQ(answer_at_level(1), answer_at_level(0));
}

TEST(ServiceOptTest, FaultMatrixAnswersMatchAcrossLevels) {
  // The PR 4 fault matrix at both optimizer levels: retries absorb the
  // injected faults and the answers stay byte-identical level to level.
  for (double p : {0.05, 0.2}) {
    std::string answers[2];
    for (int level = 0; level <= 1; ++level) {
      auto homes = testing::Doc(kHomes);
      auto schools = testing::Doc(kSchools);
      service::SessionEnvironment env;
      service::SessionEnvironment::WrapperOptions wo;
      wo.fault.p_fail = p;
      wo.fault.p_truncate = p / 4;
      wo.fault.p_garble = p / 4;
      wo.fault.p_duplicate = p / 4;
      wo.fault.p_delay = p;
      wo.retry.max_attempts = 10;
      env.RegisterWrapperFactory(
          "homesSrc",
          [&homes] {
            return std::make_unique<wrappers::XmlLxpWrapper>(homes.get());
          },
          "homes.xml", wo);
      env.RegisterWrapperFactory(
          "schoolsSrc",
          [&schools] {
            return std::make_unique<wrappers::XmlLxpWrapper>(schools.get());
          },
          "schools.xml", wo);
      service::MediatorService::Options options;
      options.optimizer_level = level;
      service::MediatorService svc(&env, options);
      auto doc = FramedDocument::Open(&svc, kFig3).ValueOrDie();
      answers[level] = testing::MaterializeToTerm(doc.get());
      EXPECT_TRUE(doc->last_status().ok());
    }
    EXPECT_EQ(answers[1], answers[0]) << "p=" << p;
  }
}

TEST(ServiceOptTest, RelationalPushdownFiltersServerSide) {
  rdb::Database db = MakeRealtyDb(200);
  auto run = [&db](int level, int64_t* wrapper_fills) {
    std::vector<wrappers::RelationalLxpWrapper*> created;
    service::SessionEnvironment env;
    service::SessionEnvironment::WrapperOptions wo;
    wo.capability = wrappers::RelationalLxpWrapper(&db).Capability();
    env.RegisterWrapperFactory(
        "realty",
        [&db, &created]() -> std::unique_ptr<buffer::LxpWrapper> {
          auto w = std::make_unique<wrappers::RelationalLxpWrapper>(&db);
          created.push_back(w.get());
          return w;
        },
        "db", wo);
    service::MediatorService::Options options;
    options.optimizer_level = level;
    service::MediatorService svc(&env, options);
    auto doc = FramedDocument::Open(&svc, kZipQuery).ValueOrDie();
    std::string answer = testing::MaterializeToTerm(doc.get());
    *wrapper_fills = created.at(0)->fills_served();

    service::ServiceMetricsSnapshot snap = svc.Metrics();
    if (level > 0) {
      EXPECT_GE(snap.plans_optimized, 1);
      EXPECT_GT(snap.optimizer_rewrites, 0);
      EXPECT_NE(snap.ToString().find("wrapper_pushdown"), std::string::npos);
    } else {
      EXPECT_EQ(snap.plans_optimized, 0);
    }
    return answer;
  };
  int64_t fills0 = 0, fills1 = 0;
  std::string baseline = run(0, &fills0);
  std::string optimized = run(1, &fills1);
  EXPECT_EQ(optimized, baseline);
  EXPECT_LT(fills1, fills0);
}

TEST(ServiceOptTest, PlanCacheKeySeparatesOptimizerConfigs) {
  PlanCache::Options level0;
  level0.optimizer.level = 0;
  PlanCache::Options level1;
  level1.optimizer.level = 1;
  level1.optimizer.sources["realty"] = RealtyCapability();
  EXPECT_NE(passes::OptimizerFingerprint(level0.optimizer),
            passes::OptimizerFingerprint(level1.optimizer));

  PlanCache cache(level1);
  auto first = cache.GetOrCompileEntry(kZipQuery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first.value()->report.total(), 0);
  // A reformatted copy hits and carries the original report.
  auto second = cache.GetOrCompileEntry(std::string(kZipQuery) + "  % hi\n");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().get(), first.value().get());
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.optimized, 1);
  EXPECT_GE(stats.pass_applied.count("wrapper_pushdown"), 1u);
}

}  // namespace
}  // namespace mix::mediator
