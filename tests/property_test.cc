// Property / differential tests: the lazy mediator machinery must agree
// with the eager reference semantics on randomized inputs, and buffered
// LXP access must be invisible.
#include <gtest/gtest.h>

#include "buffer/buffer.h"
#include "mediator/instantiate.h"
#include "mediator/reference_eval.h"
#include "mediator/rewrite.h"
#include "mediator/translate.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/random_tree.h"

namespace mix::mediator {
namespace {

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

PlanPtr ParseAndTranslate(const std::string& text) {
  auto q = xmas::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto plan = TranslateQuery(q.value());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Lazy == eager for the running example across instance shapes.
// ---------------------------------------------------------------------------

class LazyVsEagerTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LazyVsEagerTest, Fig3Agrees) {
  auto [n_homes, n_schools, zips] = GetParam();
  auto homes = xml::MakeHomesDoc(n_homes, zips, /*seed=*/21);
  auto schools = xml::MakeSchoolsDoc(n_schools, zips, /*seed=*/22);

  PlanPtr plan = ParseAndTranslate(kFig3);

  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  SourceRegistry sources;
  sources.Register("homesSrc", &homes_nav);
  sources.Register("schoolsSrc", &schools_nav);
  auto mediator = LazyMediator::Build(*plan, sources).ValueOrDie();
  std::string lazy = testing::MaterializeToTerm(mediator->document());

  xml::Document scratch;
  ReferenceSources ref{{"homesSrc", homes->root()},
                       {"schoolsSrc", schools->root()}};
  const xml::Node* answer = EvaluateReference(*plan, ref, &scratch).ValueOrDie();
  EXPECT_EQ(lazy, xml::ToTerm(answer));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LazyVsEagerTest,
    ::testing::Values(std::make_tuple(0, 0, 1), std::make_tuple(1, 0, 1),
                      std::make_tuple(0, 1, 1), std::make_tuple(1, 1, 1),
                      std::make_tuple(5, 5, 1), std::make_tuple(10, 10, 3),
                      std::make_tuple(25, 30, 7),
                      std::make_tuple(40, 10, 2)));

// ---------------------------------------------------------------------------
// A family of single-source queries evaluated over random trees.
// ---------------------------------------------------------------------------

const char* kSingleSourceQueries[] = {
    // Flat re-grouping of matched elements.
    "CONSTRUCT <out> $X {$X} </out> {} WHERE src a0 $X",
    // Wildcard descent.
    "CONSTRUCT <out> $X {$X} </out> {} WHERE src _._ $X",
    // Deep recursive search.
    "CONSTRUCT <out> $X {$X} </out> {} WHERE src _*.a1 $X",
    // Extraction + comparison.
    "CONSTRUCT <out> $Y {$Y} </out> {} WHERE src _._ $X AND $X _ $Y "
    "AND $Y != 'nothing-matches-this'",
    // Nested construction with per-group lists.
    "CONSTRUCT <out> <g> $X $Y {$Y} </g> {$X} </out> {} "
    "WHERE src a0 $X AND $X _ $Y",
};

class RandomTreeQueryTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(RandomTreeQueryTest, LazyEqualsReference) {
  auto [query_index, seed] = GetParam();
  xml::RandomTreeOptions tree_options;
  tree_options.seed = seed;
  tree_options.max_depth = 4;
  tree_options.max_fanout = 4;
  tree_options.label_alphabet = 3;
  auto doc = xml::RandomTree(tree_options);

  PlanPtr plan =
      ParseAndTranslate(kSingleSourceQueries[static_cast<size_t>(query_index)]);

  xml::DocNavigable nav(doc.get());
  SourceRegistry sources;
  sources.Register("src", &nav);
  auto mediator = LazyMediator::Build(*plan, sources).ValueOrDie();
  std::string lazy = testing::MaterializeToTerm(mediator->document());

  xml::Document scratch;
  ReferenceSources ref{{"src", doc->root()}};
  const xml::Node* answer =
      EvaluateReference(*plan, ref, &scratch).ValueOrDie();
  EXPECT_EQ(lazy, xml::ToTerm(answer))
      << "query " << query_index << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTreeQueryTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values<uint64_t>(1, 2, 3, 5, 8, 13, 21,
                                                   34)));

// ---------------------------------------------------------------------------
// Rewriting must never change results (random trees, σ enabled).
// ---------------------------------------------------------------------------

class RewriteEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewriteEquivalenceTest, RewrittenPlanAgrees) {
  xml::RandomTreeOptions tree_options;
  tree_options.seed = GetParam();
  tree_options.max_depth = 4;
  tree_options.label_alphabet = 3;
  auto doc = xml::RandomTree(tree_options);

  for (const char* query : kSingleSourceQueries) {
    PlanPtr plan = ParseAndTranslate(query);
    PlanPtr rewritten = plan->Clone();
    RewriteOptions options;
    options.sigma_capable_sources = true;
    Rewrite(&rewritten, options);

    xml::DocNavigable nav1(doc.get());
    xml::DocNavigable nav2(doc.get());
    SourceRegistry s1, s2;
    s1.Register("src", &nav1);
    s2.Register("src", &nav2);
    auto m1 = LazyMediator::Build(*plan, s1).ValueOrDie();
    auto m2 = LazyMediator::Build(*rewritten, s2).ValueOrDie();
    EXPECT_EQ(testing::MaterializeToTerm(m1->document()),
              testing::MaterializeToTerm(m2->document()))
        << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEquivalenceTest,
                         ::testing::Values<uint64_t>(7, 11, 19, 23));

// ---------------------------------------------------------------------------
// Buffer transparency: running the mediator over buffered LXP wrappers
// gives byte-identical answers to direct in-memory access, for every
// granularity.
// ---------------------------------------------------------------------------

class BufferTransparencyTest : public ::testing::TestWithParam<int> {};

TEST_P(BufferTransparencyTest, MediatorOverBufferEqualsDirect) {
  int chunk = GetParam();
  auto homes = xml::MakeHomesDoc(12, 3);
  auto schools = xml::MakeSchoolsDoc(12, 3);
  PlanPtr plan = ParseAndTranslate(kFig3);

  xml::DocNavigable homes_direct(homes.get());
  xml::DocNavigable schools_direct(schools.get());
  SourceRegistry direct;
  direct.Register("homesSrc", &homes_direct);
  direct.Register("schoolsSrc", &schools_direct);
  auto m_direct = LazyMediator::Build(*plan, direct).ValueOrDie();

  wrappers::XmlLxpWrapper::Options wopts;
  wopts.chunk = chunk;
  wopts.inline_limit = 2;
  wrappers::XmlLxpWrapper hw(homes.get(), wopts);
  wrappers::XmlLxpWrapper sw(schools.get(), wopts);
  buffer::BufferComponent hb(&hw, "h");
  buffer::BufferComponent sb(&sw, "s");
  SourceRegistry buffered;
  buffered.Register("homesSrc", &hb);
  buffered.Register("schoolsSrc", &sb);
  auto m_buffered = LazyMediator::Build(*plan, buffered).ValueOrDie();

  EXPECT_EQ(testing::MaterializeToTerm(m_direct->document()),
            testing::MaterializeToTerm(m_buffered->document()));
}

INSTANTIATE_TEST_SUITE_P(Chunks, BufferTransparencyTest,
                         ::testing::Values(1, 2, 3, 8, 64));

// ---------------------------------------------------------------------------
// Random navigation sequences: a virtual answer and its materialized copy
// must answer identically, command by command.
// ---------------------------------------------------------------------------

class RandomWalkTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomWalkTest, VirtualAnswersLikeMaterialized) {
  uint64_t seed = GetParam();
  auto homes = xml::MakeHomesDoc(8, 2, seed);
  auto schools = xml::MakeSchoolsDoc(8, 2, seed + 1);
  PlanPtr plan = ParseAndTranslate(kFig3);

  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  SourceRegistry sources;
  sources.Register("homesSrc", &homes_nav);
  sources.Register("schoolsSrc", &schools_nav);
  auto mediator = LazyMediator::Build(*plan, sources).ValueOrDie();
  Navigable* virt = mediator->document();

  auto materialized = xml::Materialize(virt);
  xml::DocNavigable mat_nav(materialized.get());

  // Pool of live (virtual id, materialized id) pairs; random commands.
  std::vector<std::pair<NodeId, NodeId>> pool{{virt->Root(), mat_nav.Root()}};
  uint64_t state = seed * 2654435761ULL + 1;
  auto rng = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int step = 0; step < 300; ++step) {
    auto& [vid, mid] = pool[rng() % pool.size()];
    switch (rng() % 3) {
      case 0: {
        auto vd = virt->Down(vid);
        auto md = mat_nav.Down(mid);
        ASSERT_EQ(vd.has_value(), md.has_value());
        if (vd.has_value()) pool.emplace_back(*vd, *md);
        break;
      }
      case 1: {
        auto vr = virt->Right(vid);
        auto mr = mat_nav.Right(mid);
        ASSERT_EQ(vr.has_value(), mr.has_value());
        if (vr.has_value()) pool.emplace_back(*vr, *mr);
        break;
      }
      case 2:
        ASSERT_EQ(virt->Fetch(vid), mat_nav.Fetch(mid));
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWalkTest,
                         ::testing::Values<uint64_t>(3, 17, 99, 123, 777));

}  // namespace
}  // namespace mix::mediator
