// Vectored-navigation tests: the batch API (DownAll / NextSiblings /
// FetchSubtree, BindingStream::NextBindings, LxpWrapper::FillMany) must be
// byte-identical to the node-at-a-time loops it replaces, and must never
// issue more source navigations than those loops.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "buffer/buffer.h"
#include "buffer/lxp.h"
#include "client/client.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "net/sim_net.h"
#include "test_util.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace mix {
namespace {

// ---------------------------------------------------------------------------
// Default implementations vs native overrides.
// ---------------------------------------------------------------------------

/// Forwards only the three primitives, so the batch calls exercise the
/// Navigable *default* implementations (the d/r/f loops).
class LoopOnly : public Navigable {
 public:
  explicit LoopOnly(Navigable* inner) : inner_(inner) {}
  NodeId Root() override { return inner_->Root(); }
  std::optional<NodeId> Down(const NodeId& p) override {
    return inner_->Down(p);
  }
  std::optional<NodeId> Right(const NodeId& p) override {
    return inner_->Right(p);
  }
  Label Fetch(const NodeId& p) override { return inner_->Fetch(p); }

 private:
  Navigable* inner_;
};

std::string EntriesToString(const std::vector<SubtreeEntry>& entries) {
  std::string out;
  for (const SubtreeEntry& e : entries) {
    out += e.label.name();
    out += "@" + std::to_string(e.depth);
    if (e.truncated) out += "!";
    out += ";";
  }
  return out;
}

TEST(BatchDefaultsTest, DownAllMatchesNativeOverride) {
  auto doc = testing::Doc("r[a[x,y],b,c[z]]");
  xml::DocNavigable nav(doc.get());
  LoopOnly looped(&nav);

  NodeId root = nav.Root();
  std::vector<NodeId> native, defaulted;
  nav.DownAll(root, &native);
  looped.DownAll(root, &defaulted);
  EXPECT_EQ(native, defaulted);
  ASSERT_EQ(native.size(), 3u);
  EXPECT_EQ(nav.Fetch(native[0]), "a");
  EXPECT_EQ(nav.Fetch(native[2]), "c");
}

TEST(BatchDefaultsTest, NextSiblingsMatchesNativeOverride) {
  auto doc = testing::Doc("r[a,b,c,d,e]");
  xml::DocNavigable nav(doc.get());
  LoopOnly looped(&nav);
  NodeId a = *nav.Down(nav.Root());

  for (int64_t limit : {int64_t{0}, int64_t{1}, int64_t{3}, int64_t{99},
                        int64_t{-1}}) {
    std::vector<NodeId> native, defaulted;
    nav.NextSiblings(a, limit, &native);
    looped.NextSiblings(a, limit, &defaulted);
    EXPECT_EQ(native, defaulted) << "limit=" << limit;
  }
  std::vector<NodeId> two;
  nav.NextSiblings(a, 2, &two);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(nav.Fetch(two[1]), "c");
}

TEST(BatchDefaultsTest, FetchSubtreeMatchesNativeOverride) {
  auto doc = testing::Doc("r[a[x,y[q]],b,c[z]]");
  xml::DocNavigable nav(doc.get());
  LoopOnly looped(&nav);
  NodeId root = nav.Root();

  for (int64_t depth : {int64_t{-1}, int64_t{0}, int64_t{1}, int64_t{2}}) {
    std::vector<SubtreeEntry> native, defaulted;
    nav.FetchSubtree(root, depth, &native);
    looped.FetchSubtree(root, depth, &defaulted);
    EXPECT_EQ(EntriesToString(native), EntriesToString(defaulted))
        << "depth=" << depth;
  }

  std::vector<SubtreeEntry> full;
  nav.FetchSubtree(root, -1, &full);
  EXPECT_EQ(EntriesToString(full), "r@0;a@1;x@2;y@2;q@3;b@1;c@1;z@2;");
}

TEST(BatchDefaultsTest, TruncatedEntriesResumeCorrectly) {
  auto doc = testing::Doc("r[a[x,y[q]],b,c[z]]");
  xml::DocNavigable nav(doc.get());
  std::vector<SubtreeEntry> cut;
  nav.FetchSubtree(nav.Root(), 1, &cut);
  EXPECT_EQ(EntriesToString(cut), "r@0;a@1!;b@1;c@1!;");
  // Resume from each truncated frontier entry; together with the snapshot
  // this reconstructs the full tree.
  std::vector<SubtreeEntry> under_a;
  nav.FetchSubtree(cut[1].id, -1, &under_a);
  EXPECT_EQ(EntriesToString(under_a), "a@0;x@1;y@1;q@2;");
}

// ---------------------------------------------------------------------------
// Batched materialization: byte-identical, never more source navigations.
// ---------------------------------------------------------------------------

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

mediator::PlanPtr ParsePlan(const char* query) {
  auto q = xmas::ParseQuery(query);
  EXPECT_TRUE(q.ok());
  auto plan = mediator::TranslateQuery(q.value());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).ValueOrDie();
}

struct EvalRun {
  std::string term;
  NavStats stats;
};

/// Evaluates the Fig. 3 plan over counted sources, materializing either
/// node-at-a-time or through the vectored path.
EvalRun RunFig3(xml::Document* homes, xml::Document* schools, bool batched) {
  xml::DocNavigable homes_nav(homes);
  xml::DocNavigable schools_nav(schools);
  EvalRun run;
  CountingNavigable homes_counted(&homes_nav, &run.stats);
  CountingNavigable schools_counted(&schools_nav, &run.stats);
  mediator::SourceRegistry sources;
  sources.Register("homesSrc", &homes_counted);
  sources.Register("schoolsSrc", &schools_counted);
  auto m = mediator::LazyMediator::Build(*ParsePlan(kFig3), sources)
               .ValueOrDie();
  xml::Document out;
  xml::Node* root = batched
                        ? xml::MaterializeInto(m->document(), &out)
                        : xml::MaterializeIntoNodeAtATime(m->document(), &out);
  run.term = xml::ToTerm(root);
  return run;
}

TEST(BatchEquivalenceTest, Fig3PlanIdenticalAndNeverMoreNavigations) {
  auto homes = xml::MakeHomesDoc(40, 8);
  auto schools = xml::MakeSchoolsDoc(40, 8);
  EvalRun baseline = RunFig3(homes.get(), schools.get(), /*batched=*/false);
  EvalRun batched = RunFig3(homes.get(), schools.get(), /*batched=*/true);
  EXPECT_EQ(batched.term, baseline.term);
  EXPECT_LE(batched.stats.total(), baseline.stats.total());
}

TEST(BatchEquivalenceTest, StackedMediatorsIdenticalAndNeverMore) {
  // Fig. 1 stacking: a second mediator browsing the first's virtual answer.
  const char* upper_q =
      "CONSTRUCT <schools_found> $S {$S} </schools_found> {} "
      "WHERE lower answer.med_home.school $S";
  auto homes = xml::MakeHomesDoc(25, 5);
  auto schools = xml::MakeSchoolsDoc(25, 5);

  auto run = [&](bool batched) {
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    EvalRun r;
    CountingNavigable hc(&homes_nav, &r.stats);
    CountingNavigable sc(&schools_nav, &r.stats);
    mediator::SourceRegistry lower_sources;
    lower_sources.Register("homesSrc", &hc);
    lower_sources.Register("schoolsSrc", &sc);
    auto lower =
        mediator::LazyMediator::Build(*ParsePlan(kFig3), lower_sources)
            .ValueOrDie();
    mediator::SourceRegistry upper_sources;
    upper_sources.Register("lower", lower->document());
    auto upper =
        mediator::LazyMediator::Build(*ParsePlan(upper_q), upper_sources)
            .ValueOrDie();
    xml::Document out;
    xml::Node* root =
        batched ? xml::MaterializeInto(upper->document(), &out)
                : xml::MaterializeIntoNodeAtATime(upper->document(), &out);
    r.term = xml::ToTerm(root);
    return r;
  };

  EvalRun baseline = run(false);
  EvalRun batched = run(true);
  EXPECT_EQ(batched.term, baseline.term);
  EXPECT_LE(batched.stats.total(), baseline.stats.total());
}

TEST(BatchEquivalenceTest, CountingChargesExactBaselineForFullFetch) {
  // CountingNavigable charges FetchSubtree at the node-at-a-time walk rate:
  // for a full fetch of an n-node tree, n fetches, n downs, n-1 rights.
  auto doc = testing::Doc("r[a[x,y[q]],b,c[z]]");  // 8 nodes
  xml::DocNavigable nav(doc.get());
  NavStats stats;
  CountingNavigable counted(&nav, &stats);
  std::vector<SubtreeEntry> entries;
  counted.FetchSubtree(counted.Root(), -1, &entries);
  EXPECT_EQ(entries.size(), 8u);
  EXPECT_EQ(stats.fetches, 8);
  EXPECT_EQ(stats.downs, 8);
  EXPECT_EQ(stats.rights, 7);

  // ...which is exactly what the d/r/f materialization loop costs.
  NavStats loop_stats;
  CountingNavigable loop_counted(&nav, &loop_stats);
  xml::Document out;
  xml::MaterializeIntoNodeAtATime(&loop_counted, &out);
  EXPECT_EQ(loop_stats.fetches, stats.fetches);
  EXPECT_EQ(loop_stats.downs, stats.downs);
  EXPECT_EQ(loop_stats.rights, stats.rights);
}

// ---------------------------------------------------------------------------
// Buffer: coalesced hole fills.
// ---------------------------------------------------------------------------

std::string WideDocTerm(int n) {
  std::string term = "r[";
  for (int i = 0; i < n; ++i) {
    if (i > 0) term += ",";
    term += "c" + std::to_string(i);
  }
  term += "]";
  return term;
}

TEST(BufferBatchTest, DownAllCollapsesDemandMessages) {
  const int kChildren = 32;
  auto doc = testing::Doc(WideDocTerm(kChildren));
  wrappers::XmlLxpWrapper::Options wopts;
  wopts.chunk = 1;  // worst case: one hole round-trip per child
  wopts.inline_limit = 0;

  // Node-at-a-time paging.
  wrappers::XmlLxpWrapper loop_wrapper(doc.get(), wopts);
  net::Channel loop_channel(nullptr, net::ChannelOptions{});
  buffer::BufferComponent::Options loop_opts;
  loop_opts.channel = &loop_channel;
  buffer::BufferComponent loop_buffer(&loop_wrapper, "u", loop_opts);
  {
    int count = 0;
    for (auto c = loop_buffer.Down(loop_buffer.Root()); c.has_value();
         c = loop_buffer.Right(*c)) {
      ++count;
    }
    EXPECT_EQ(count, kChildren);
  }

  // Vectored: one coalesced request/response pair after the root fill.
  wrappers::XmlLxpWrapper batch_wrapper(doc.get(), wopts);
  net::Channel batch_channel(nullptr, net::ChannelOptions{});
  buffer::BufferComponent::Options batch_opts;
  batch_opts.channel = &batch_channel;
  buffer::BufferComponent batch_buffer(&batch_wrapper, "u", batch_opts);
  NodeId root = batch_buffer.Root();
  int64_t messages_after_root = batch_channel.stats().messages;
  std::vector<NodeId> children;
  batch_buffer.DownAll(root, &children);
  EXPECT_EQ(static_cast<int>(children.size()), kChildren);
  // The whole child list costs one request + one response.
  EXPECT_EQ(batch_channel.stats().messages - messages_after_root, 2);
  EXPECT_GT(batch_channel.stats().batched_parts,
            batch_channel.stats().batches);
  // Radically fewer messages — and, with adaptive fill sizing, the chased
  // batch needs FEWER fills than the node-at-a-time loop (the wrapper
  // doubles its chunk on consecutive continued fills), never more.
  EXPECT_LE(batch_buffer.fill_count(), loop_buffer.fill_count());
  EXPECT_LT(batch_channel.stats().messages, loop_channel.stats().messages);

  // And the buffered tree is the same.
  EXPECT_EQ(testing::MaterializeToTerm(&batch_buffer),
            testing::MaterializeToTerm(&loop_buffer));
}

TEST(BufferBatchTest, NextSiblingsPagesWithoutOverFetch) {
  const int kChildren = 16;
  auto doc = testing::Doc(WideDocTerm(kChildren));
  wrappers::XmlLxpWrapper::Options wopts;
  wopts.chunk = 2;
  wopts.inline_limit = 0;

  auto fills_for_page = [&](int64_t limit, bool batched) {
    wrappers::XmlLxpWrapper wrapper(doc.get(), wopts);
    buffer::BufferComponent buffer(&wrapper, "u");
    NodeId first = *buffer.Down(buffer.Root());
    if (batched) {
      std::vector<NodeId> page;
      buffer.NextSiblings(first, limit, &page);
      EXPECT_EQ(static_cast<int64_t>(page.size()), limit);
    } else {
      NodeId cur = first;
      for (int64_t i = 0; i < limit; ++i) {
        auto next = buffer.Right(cur);
        EXPECT_TRUE(next.has_value());
        cur = *next;
      }
    }
    return buffer.fill_count();
  };

  for (int64_t limit : {int64_t{1}, int64_t{5}, int64_t{9}}) {
    // No over-fetch: the element budget caps the adaptive chunk growth, so
    // the batched page ships the same elements; it may need fewer fills
    // than the node-at-a-time walk (growing chunks), never more.
    EXPECT_LE(fills_for_page(limit, true), fills_for_page(limit, false))
        << "limit=" << limit;
  }
}

// ---------------------------------------------------------------------------
// FillMany budgets and guards.
// ---------------------------------------------------------------------------

TEST(FillManyTest, DefaultImplementationLoopsWithoutChasing) {
  std::map<std::string, buffer::FragmentList> fills;
  fills["h1"] = {buffer::Fragment::Element("a"), buffer::Fragment::Hole("h2")};
  fills["h3"] = {buffer::Fragment::Element("b")};
  buffer::ScriptedLxpWrapper wrapper("h0", std::move(fills));

  buffer::HoleFillList result =
      wrapper.FillMany({"h1", "h3"}, buffer::FillBudget{});
  // One entry per requested hole, in request order; the continuation hole
  // h2 is NOT chased (the scripted wrapper inherits the safe default).
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].hole_id, "h1");
  EXPECT_EQ(result[1].hole_id, "h3");
  EXPECT_EQ(wrapper.fill_log(),
            (std::vector<std::string>{"h1", "h3"}));
}

TEST(FillManyTest, ChaseCompletesSiblingListWithEmptyBudget) {
  auto doc = testing::Doc(WideDocTerm(8));
  wrappers::XmlLxpWrapper::Options wopts;
  wopts.chunk = 2;
  wopts.inline_limit = 0;
  wrappers::XmlLxpWrapper wrapper(doc.get(), wopts);

  std::string root_hole = wrapper.GetRoot("u");
  buffer::FragmentList root_fill = wrapper.Fill(root_hole);
  ASSERT_EQ(root_fill.size(), 1u);
  ASSERT_EQ(root_fill[0].children.size(), 1u);
  ASSERT_TRUE(root_fill[0].children[0].is_hole);
  std::string child_hole = root_fill[0].children[0].hole_id;

  // {} = complete refinement: every continuation hole is chased, so the
  // child list arrives hole-free in one exchange.
  buffer::HoleFillList fills =
      wrapper.FillMany({child_hole}, buffer::FillBudget{});
  int elements = 0;
  bool trailing_hole = false;
  for (const buffer::HoleFill& f : fills) {
    for (const buffer::Fragment& frag : f.fragments) {
      if (frag.is_hole) {
        trailing_hole = true;
      } else {
        ++elements;
      }
    }
  }
  EXPECT_EQ(elements, 8);
  // Every hole introduced was itself refined within the same batch. With
  // adaptive fill sizing the chunks grow geometrically (2 + 4 + 2 children)
  // instead of costing 8/chunk = 4 fixed-size fills.
  EXPECT_EQ(static_cast<int>(fills.size()), 3);
  EXPECT_TRUE(trailing_hole);  // intermediate responses contain the chased holes
}

TEST(FillManyTest, ElementBudgetStopsChase) {
  auto doc = testing::Doc(WideDocTerm(8));
  wrappers::XmlLxpWrapper::Options wopts;
  wopts.chunk = 2;
  wopts.inline_limit = 0;
  wrappers::XmlLxpWrapper wrapper(doc.get(), wopts);
  std::string root_hole = wrapper.GetRoot("u");
  std::string child_hole = wrapper.Fill(root_hole)[0].children[0].hole_id;

  buffer::FillBudget budget;
  budget.elements = 3;
  buffer::HoleFillList fills = wrapper.FillMany({child_hole}, budget);
  // chunk=2: first fill ships 2 elements (< 3), one chase ships 2 more
  // (>= 3) — then the budget stops the chase.
  EXPECT_EQ(static_cast<int>(fills.size()), 2);
}

TEST(FillManyTest, FillCountBudgetBoundsSpeculation) {
  auto doc = testing::Doc(WideDocTerm(8));
  wrappers::XmlLxpWrapper::Options wopts;
  wopts.chunk = 2;
  wopts.inline_limit = 0;
  wrappers::XmlLxpWrapper wrapper(doc.get(), wopts);
  std::string root_hole = wrapper.GetRoot("u");
  std::string child_hole = wrapper.Fill(root_hole)[0].children[0].hole_id;

  buffer::FillBudget budget;
  budget.fills = 1;
  buffer::HoleFillList fills = wrapper.FillMany({child_hole}, budget);
  // The requested hole is always served; the budget forbids any chase.
  EXPECT_EQ(static_cast<int>(fills.size()), 1);
  EXPECT_EQ(fills[0].hole_id, child_hole);
}

/// A wrapper violating the FillMany contract (fewer entries than requested
/// holes) — the buffer must reject the response as a typed error, degrade
/// the unanswered hole, and never abort.
class ShortFillWrapper : public buffer::LxpWrapper {
 public:
  std::string GetRoot(const std::string&) override { return "root"; }
  buffer::FragmentList Fill(const std::string&) override {
    return {buffer::Fragment::Element("r", {buffer::Fragment::Hole("x")})};
  }
  buffer::HoleFillList FillMany(const std::vector<std::string>&,
                                const buffer::FillBudget&) override {
    return {};  // contract violation
  }
};

TEST(FillManyContractTest, BufferRejectsShortBatchResponse) {
  ShortFillWrapper wrapper;
  buffer::BufferComponent buffer(&wrapper, "u");
  // Root() rides the single-hole Fill path and succeeds; the batched child
  // enumeration goes through FillMany and must trip the contract check.
  NodeId r = buffer.Root();
  std::vector<NodeId> kids;
  buffer.DownAll(r, &kids);
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(buffer.Fetch(kids[0]), "#unavailable");
  Status s = buffer.TakeStatus();
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(s.message().find("not answered"), std::string::npos);
  EXPECT_EQ(buffer.degraded_holes(), 1);
}

// ---------------------------------------------------------------------------
// Client paging rides the batch path.
// ---------------------------------------------------------------------------

TEST(ClientBatchTest, ChildrenAndPagingMatchSingleStep) {
  auto doc = testing::Doc("r[a[x],b,c,d,e]");
  xml::DocNavigable nav(doc.get());
  client::VirtualXmlDocument vdoc(&nav);
  client::XmlElement root = vdoc.Root();

  std::vector<client::XmlElement> children = root.Children();
  ASSERT_EQ(children.size(), 5u);
  EXPECT_EQ(children[0].Name(), "a");
  EXPECT_EQ(children[4].Name(), "e");

  std::vector<client::XmlElement> page = children[0].FollowingSiblings(2);
  ASSERT_EQ(page.size(), 2u);
  EXPECT_EQ(page[0].Name(), "b");
  EXPECT_EQ(page[1].Name(), "c");
  EXPECT_EQ(children[0].FollowingSiblings(-1).size(), 4u);
}

}  // namespace
}  // namespace mix
