// Direct unit tests for the eager reference evaluator against the paper's
// §3 worked examples — keeping the differential-testing oracle itself
// honest, independent of the lazy machinery.
#include <gtest/gtest.h>

#include "algebra/reference.h"
#include "pathexpr/path_expr.h"
#include "test_util.h"

namespace mix::algebra::reference {
namespace {

using mix::algebra::BindingPredicate;
using mix::algebra::CompareOp;

std::string RowTerms(const Table& t) {
  std::string out;
  for (const auto& row : t.rows) {
    out += "b[";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      out += t.schema[i] + "[" + xml::ToTerm(row[i]) + "]";
    }
    out += "]";
  }
  return out;
}

TEST(ReferenceTest, GetDescendantsPaperExample) {
  // §3: getDescendants_{$H, zip._ -> $V1} on the two-home binding list.
  auto doc = testing::Doc(
      "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]]]");
  xml::Document scratch;
  Evaluator eval(&scratch);
  Table src = eval.Source(doc->root(), "R");
  Table homes = eval.GetDescendants(
      src, "R", pathexpr::PathExpr::Parse("home").ValueOrDie(), "H");
  Table zips = eval.GetDescendants(
      homes, "H", pathexpr::PathExpr::Parse("zip._").ValueOrDie(), "V1");
  Table projected = eval.Project(zips, {"H", "V1"});
  EXPECT_EQ(RowTerms(projected),
            "b[H[home[addr[La Jolla],zip[91220]]],V1[91220]]"
            "b[H[home[addr[El Cajon],zip[91223]]],V1[91223]]");
}

TEST(ReferenceTest, GroupByPaperExample) {
  // §3's groupBy_{{$H},$S -> $LSs} input/output pair.
  auto doc = testing::Doc(
      "d[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]],"
      "school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],"
      "school[dir[Hart],zip[91223]]]");
  const xml::Node* home1 = doc->root()->children[0];
  const xml::Node* home2 = doc->root()->children[1];
  const xml::Node* s1 = doc->root()->children[2];
  const xml::Node* s2 = doc->root()->children[3];
  const xml::Node* s3 = doc->root()->children[4];

  Table in;
  in.schema = {"H", "S"};
  in.rows = {{home1, s1}, {home1, s2}, {home2, s3}};

  xml::Document scratch;
  Evaluator eval(&scratch);
  Table out = eval.GroupBy(in, {"H"}, "S", "LSs");
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(xml::ToTerm(out.rows[0][1]),
            "list[school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]]]");
  EXPECT_EQ(xml::ToTerm(out.rows[1][1]),
            "list[school[dir[Hart],zip[91223]]]");
}

TEST(ReferenceTest, ConcatenateFourCases) {
  auto doc = testing::Doc("d[list[a,b],list[c],v,w]");
  const xml::Node* lx = doc->root()->children[0];
  const xml::Node* ly = doc->root()->children[1];
  const xml::Node* v = doc->root()->children[2];
  const xml::Node* w = doc->root()->children[3];

  xml::Document scratch;
  Evaluator eval(&scratch);
  auto run = [&](const xml::Node* x, const xml::Node* y) {
    Table in;
    in.schema = {"X", "Y"};
    in.rows = {{x, y}};
    Table out = eval.Concatenate(in, "X", "Y", "Z");
    return xml::ToTerm(out.rows[0][2]);
  };
  EXPECT_EQ(run(lx, ly), "list[a,b,c]");
  EXPECT_EQ(run(lx, v), "list[a,b,v]");
  EXPECT_EQ(run(v, ly), "list[v,c]");
  EXPECT_EQ(run(v, w), "list[v,w]");
}

TEST(ReferenceTest, CreateElementTakesSubtreesOfCh) {
  auto doc = testing::Doc("d[list[p[1],q[2]]]");
  Table in;
  in.schema = {"Ch"};
  in.rows = {{doc->root()->children[0]}};
  xml::Document scratch;
  Evaluator eval(&scratch);
  Table out = eval.CreateElement(in, true, "med_home", "Ch", "E");
  EXPECT_EQ(xml::ToTerm(out.rows[0][1]), "med_home[p[1],q[2]]");
}

TEST(ReferenceTest, JoinSelectOrderBy) {
  auto doc = testing::Doc("d[k1[5],k2[3],k3[5]]");
  // Bind the *leaf* values (atoms compare leaf labels; elements compare as
  // full terms, so k1[5] would never equal k3[5]).
  const xml::Node* v1 = doc->root()->children[0]->children[0];
  const xml::Node* v2 = doc->root()->children[1]->children[0];
  const xml::Node* v3 = doc->root()->children[2]->children[0];

  Table left;
  left.schema = {"A"};
  left.rows = {{v1}, {v2}};
  Table right;
  right.schema = {"B"};
  right.rows = {{v3}};

  xml::Document scratch;
  Evaluator eval(&scratch);
  Table joined = eval.Join(left, right,
                           BindingPredicate::VarVar("A", CompareOp::kEq, "B"));
  ASSERT_EQ(joined.rows.size(), 1u);
  EXPECT_EQ(joined.rows[0][0], v1);

  Table selected = eval.Select(
      left, BindingPredicate::VarConst("A", CompareOp::kLt, "4"));
  ASSERT_EQ(selected.rows.size(), 1u);
  EXPECT_EQ(selected.rows[0][0], v2);

  Table ordered = eval.OrderBy(left, {"A"});
  EXPECT_EQ(ordered.rows[0][0], v2);  // 3 < 5
  EXPECT_EQ(ordered.rows[1][0], v1);
}

TEST(ReferenceTest, SetOperations) {
  auto doc = testing::Doc("d[x[1],x[2],x[1]]");
  const xml::Node* a = doc->root()->children[0];
  const xml::Node* b = doc->root()->children[1];
  const xml::Node* c = doc->root()->children[2];

  Table t;
  t.schema = {"V"};
  t.rows = {{a}, {b}, {c}};

  xml::Document scratch;
  Evaluator eval(&scratch);
  // Distinct is by deep value: x[1] appears once.
  Table d = eval.Distinct(t);
  EXPECT_EQ(d.rows.size(), 2u);

  Table only_b;
  only_b.schema = {"V"};
  only_b.rows = {{b}};
  Table diff = eval.Difference(t, only_b);
  EXPECT_EQ(diff.rows.size(), 2u);  // both x[1] copies survive

  Table u = eval.Union(t, only_b);
  EXPECT_EQ(u.rows.size(), 4u);
}

TEST(ReferenceTest, TupleDestroySingleton) {
  auto doc = testing::Doc("d[answer[x]]");
  Table t;
  t.schema = {"A"};
  t.rows = {{doc->root()->children[0]}};
  xml::Document scratch;
  Evaluator eval(&scratch);
  EXPECT_EQ(xml::ToTerm(eval.TupleDestroy(t)), "answer[x]");
}

TEST(ReferenceTest, AtomOfNodeMatchesLazyAtomSemantics) {
  auto doc = testing::Doc("d[zip[91220],home[a[1]]]");
  EXPECT_EQ(AtomOfNode(doc->root()->children[0]->children[0]), "91220");
  EXPECT_EQ(AtomOfNode(doc->root()->children[1]), "home[a[1]]");
}

}  // namespace
}  // namespace mix::algebra::reference
