// Experiment E4 (DESIGN.md): the generic buffer component (Section 4,
// Figs. 7-8).
//
//   * overhead of buffered navigation vs. direct in-memory access;
//   * fill counts under the restrictive (left-to-right) vs. liberal
//     (Ex. 7-style) fill policies — the buffer's chase handles both;
//   * re-navigation hits: explored regions answer from the buffer with
//     zero wrapper traffic;
//   * inline-limit effect: shipping small subtrees whole vs. label+hole.
#include <benchmark/benchmark.h>

#include "buffer/buffer.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;

std::unique_ptr<xml::Document> BigTree(uint64_t seed) {
  xml::RandomTreeOptions options;
  options.seed = seed;
  options.max_depth = 6;
  options.max_fanout = 6;
  options.element_percent = 70;
  return xml::RandomTree(options);
}

void BM_DirectMaterialize(benchmark::State& state) {
  auto doc = BigTree(5);
  for (auto _ : state) {
    xml::DocNavigable nav(doc.get());
    auto copy = xml::Materialize(&nav);
    benchmark::DoNotOptimize(copy->node_count());
    state.counters["nodes"] = static_cast<double>(copy->node_count());
  }
}
BENCHMARK(BM_DirectMaterialize);

void BM_BufferedMaterialize(benchmark::State& state) {
  int chunk = static_cast<int>(state.range(0));
  bool liberal = state.range(1) != 0;
  auto doc = BigTree(5);
  for (auto _ : state) {
    wrappers::XmlLxpWrapper::Options options;
    options.chunk = chunk;
    options.inline_limit = 4;
    options.policy = liberal ? wrappers::XmlLxpWrapper::FillPolicy::kRightToLeft
                             : wrappers::XmlLxpWrapper::FillPolicy::kLeftToRight;
    wrappers::XmlLxpWrapper wrapper(doc.get(), options);
    buffer::BufferComponent buffer(&wrapper, "u");
    auto copy = xml::Materialize(&buffer);
    benchmark::DoNotOptimize(copy->node_count());
    state.counters["fills"] = static_cast<double>(buffer.fill_count());
    state.counters["nodes_buffered"] =
        static_cast<double>(buffer.nodes_buffered());
  }
}
BENCHMARK(BM_BufferedMaterialize)
    ->ArgNames({"chunk", "liberal"})
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({64, 1});

// Re-navigation: the second pass over an explored tree must cost zero
// fills — the buffer answers everything.
void BM_BufferReNavigation(benchmark::State& state) {
  auto doc = BigTree(7);
  wrappers::XmlLxpWrapper::Options options;
  options.chunk = 8;
  wrappers::XmlLxpWrapper wrapper(doc.get(), options);
  buffer::BufferComponent buffer(&wrapper, "u");
  // Warm: explore fully once.
  xml::Materialize(&buffer);
  int64_t fills_after_warm = buffer.fill_count();
  for (auto _ : state) {
    auto copy = xml::Materialize(&buffer);
    benchmark::DoNotOptimize(copy->node_count());
  }
  state.counters["extra_fills"] =
      static_cast<double>(buffer.fill_count() - fills_after_warm);
}
BENCHMARK(BM_BufferReNavigation);

// Inline limit: with a generous limit the wrapper ships complete subtrees
// (few fills, more speculative bytes); with limit 0 every element costs a
// fill on descent.
void BM_InlineLimitSweep(benchmark::State& state) {
  int64_t inline_limit = state.range(0);
  auto doc = BigTree(9);
  for (auto _ : state) {
    wrappers::XmlLxpWrapper::Options options;
    options.chunk = 8;
    options.inline_limit = inline_limit;
    wrappers::XmlLxpWrapper wrapper(doc.get(), options);
    net::Channel channel(nullptr, net::ChannelOptions{});
    buffer::BufferComponent::Options buf_options;
    buf_options.channel = &channel;
    buffer::BufferComponent buffer(&wrapper, "u", buf_options);
    auto copy = xml::Materialize(&buffer);
    benchmark::DoNotOptimize(copy->node_count());
    state.counters["fills"] = static_cast<double>(buffer.fill_count());
    state.counters["bytes"] = static_cast<double>(channel.stats().bytes);
  }
}
BENCHMARK(BM_InlineLimitSweep)
    ->ArgNames({"inline_limit"})
    ->Args({0})
    ->Args({4})
    ->Args({64})
    ->Args({100000});

// Partial exploration: walking one root-to-leaf path of a wide tree; the
// buffer should fill O(depth) times, not O(tree).
std::unique_ptr<xml::Document> DeepWideTree(int depth, int fanout) {
  auto doc = std::make_unique<xml::Document>();
  xml::Node* node = doc->NewElement("spine0");
  doc->set_root(node);
  for (int d = 1; d <= depth; ++d) {
    xml::Node* next = doc->NewElement("spine" + std::to_string(d));
    doc->AppendChild(node, next);
    for (int i = 1; i < fanout; ++i) {
      xml::Node* filler = doc->NewElement("filler");
      doc->AppendChild(filler, doc->NewText("x"));
      doc->AppendChild(node, filler);
    }
    node = next;
  }
  return doc;
}

void BM_BufferSpinePeek(benchmark::State& state) {
  auto doc = DeepWideTree(/*depth=*/40, /*fanout=*/30);
  for (auto _ : state) {
    wrappers::XmlLxpWrapper::Options options;
    options.chunk = 4;
    options.inline_limit = 0;
    wrappers::XmlLxpWrapper wrapper(doc.get(), options);
    buffer::BufferComponent buffer(&wrapper, "u");
    NodeId p = buffer.Root();
    int depth = 0;
    for (auto child = buffer.Down(p); child.has_value();
         child = buffer.Down(p)) {
      p = *child;
      ++depth;
    }
    state.counters["fills"] = static_cast<double>(buffer.fill_count());
    state.counters["depth"] = depth;
  }
}
BENCHMARK(BM_BufferSpinePeek);

}  // namespace
