// Experiment E16 (EXPERIMENTS.md): the cross-session answer-view cache
// under concurrent warm session load.
//
//   * BM_AnswerViewSessions — a cold phase donates each distinct view once,
//     then 64 warm sessions over 8 client threads re-open the same queries
//     (including a predicate-narrowed variant served by subsumption)
//     against a shared remote source whose wrapper exchanges cost 250 µs
//     each. Acceptance: with the cache on (views_kb=1024) the warm phase
//     performs ZERO wrapper exchanges and session throughput rises >= 2x
//     over views_kb=0 at byte-identical answers (`mismatches` = 0).
//   * BM_ViewMatchCost — raw TryMatch cost on the session-open path: a
//     subsumption probe against a populated cache.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/framed_document.h"
#include "mediator/answer_view_cache.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "service/service.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;
using service::MediatorService;
using service::SessionEnvironment;

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

/// Single-source base view plus a predicate-narrowed variant: the variant
/// never donates a snapshot of its own — it is served from the base view
/// through the subsumption rewrite (σ over the snapshot's children).
const char* kZipsBase = R"(
CONSTRUCT <answer> $V {$V} </answer> {}
WHERE homesSrc homes.home.zip._ $V
)";
const char* kZipsNarrow = R"(
CONSTRUCT <answer> $V {$V} </answer> {}
WHERE homesSrc homes.home.zip._ $V AND $V < '91005'
)";

/// Decorator modeling a remote source: every LXP exchange sleeps `delay`
/// and bumps a shared exchange counter.
class CountedDelayWrapper : public buffer::LxpWrapper {
 public:
  CountedDelayWrapper(std::unique_ptr<buffer::LxpWrapper> inner,
                      std::chrono::microseconds delay,
                      std::atomic<int64_t>* exchanges)
      : inner_(std::move(inner)), delay_(delay), exchanges_(exchanges) {}

  std::string GetRoot(const std::string& uri) override {
    Charge();
    return inner_->GetRoot(uri);
  }
  buffer::FragmentList Fill(const std::string& hole_id) override {
    Charge();
    return inner_->Fill(hole_id);
  }
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override {
    Charge();
    return inner_->FillMany(holes, budget);
  }

 private:
  void Charge() {
    exchanges_->fetch_add(1, std::memory_order_relaxed);
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
  }

  std::unique_ptr<buffer::LxpWrapper> inner_;
  std::chrono::microseconds delay_;
  std::atomic<int64_t>* exchanges_;
};

struct Workload {
  std::unique_ptr<xml::Document> homes;
  std::unique_ptr<xml::Document> schools;
  /// In-process (cache-free) evaluation per query — the fidelity oracle.
  std::vector<std::string> reference;

  explicit Workload(int n) {
    homes = xml::MakeHomesDoc(n, 10);
    schools = xml::MakeSchoolsDoc(n, 10);
    for (const char* q : Queries()) {
      xml::DocNavigable homes_nav(homes.get());
      xml::DocNavigable schools_nav(schools.get());
      mediator::SourceRegistry sources;
      sources.Register("homesSrc", &homes_nav);
      sources.Register("schoolsSrc", &schools_nav);
      auto plan = mediator::CompileXmas(q).ValueOrDie();
      auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
      xml::Document out;
      reference.push_back(
          xml::ToTerm(xml::MaterializeInto(med->document(), &out)));
    }
  }

  static const std::vector<const char*>& Queries() {
    static const std::vector<const char*> qs = {kFig3, kZipsBase, kZipsNarrow};
    return qs;
  }

  /// Donor queries: the distinct views the cold phase materializes once.
  /// kZipsNarrow is deliberately absent — warm opens of it must be served
  /// by subsumption from the kZipsBase snapshot.
  static const std::vector<const char*>& Donors() {
    static const std::vector<const char*> qs = {kFig3, kZipsBase};
    return qs;
  }

  void Populate(SessionEnvironment* env, std::chrono::microseconds delay,
                std::atomic<int64_t>* exchanges) const {
    auto factory = [delay, exchanges](const xml::Document* doc) {
      return [doc, delay, exchanges]() -> std::unique_ptr<buffer::LxpWrapper> {
        return std::make_unique<CountedDelayWrapper>(
            std::make_unique<wrappers::XmlLxpWrapper>(doc), delay, exchanges);
      };
    };
    env->RegisterWrapperFactory("homesSrc", factory(homes.get()), "homes.xml");
    env->RegisterWrapperFactory("schoolsSrc", factory(schools.get()),
                                "schools.xml");
  }
};

std::string MaterializeFramed(client::FramedDocument* doc) {
  xml::Document out;
  return xml::ToTerm(xml::MaterializeInto(doc, &out));
}

struct RunTally {
  int64_t warm_sessions = 0;
  int64_t mismatches = 0;
  int64_t warm_exchanges = 0;
  int64_t view_hits = 0;
  int64_t view_publishes = 0;
};

/// One full run: a cold donor phase (opens + full materialization, which
/// publishes each view), then 64 warm sessions over 8 client threads
/// cycling through all queries. `view_bytes` <= 0 runs the A/B baseline.
RunTally RunSessions(const Workload& workload, int64_t view_bytes,
                     std::chrono::microseconds delay) {
  constexpr int kWarmSessions = 64;
  constexpr int kClientThreads = 8;

  std::atomic<int64_t> exchanges{0};
  SessionEnvironment env;
  workload.Populate(&env, delay, &exchanges);
  MediatorService::Options options;
  options.workers = 8;
  options.queue_capacity = 4096;
  options.answer_view_cache_bytes = view_bytes;
  MediatorService service(&env, options);

  std::atomic<int64_t> bad{0};
  for (const char* q : Workload::Donors()) {
    auto doc = client::FramedDocument::Open(&service, q);
    if (!doc.ok()) {
      ++bad;
      continue;
    }
    (void)MaterializeFramed(doc.value().get());
    (void)doc.value()->Close();
  }
  const int64_t cold_exchanges = exchanges.load();

  const auto& queries = Workload::Queries();
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int s = 0; s < kWarmSessions / kClientThreads; ++s) {
        size_t qi = static_cast<size_t>(t + s) % queries.size();
        auto doc = client::FramedDocument::Open(&service, queries[qi]);
        if (!doc.ok()) {
          ++bad;
          continue;
        }
        if (MaterializeFramed(doc.value().get()) != workload.reference[qi]) {
          ++bad;
        }
        (void)doc.value()->Close();
      }
    });
  }
  for (auto& t : clients) t.join();

  service::ServiceMetricsSnapshot snap = service.Metrics();
  RunTally tally;
  tally.warm_sessions = kWarmSessions;
  tally.mismatches = bad.load();
  tally.warm_exchanges = exchanges.load() - cold_exchanges;
  tally.view_hits = snap.view_hits;
  tally.view_publishes = snap.view_publishes;
  return tally;
}

/// E16 headline: views_kb=0 (off) vs views_kb=1024 (on). items_per_second
/// is warm-session throughput; `warm_wrapper_exchanges` must be 0 with the
/// cache on (every warm open is snapshot-served).
void BM_AnswerViewSessions(benchmark::State& state) {
  const int64_t view_bytes = state.range(0) * int64_t{1024};
  constexpr std::chrono::microseconds kDelay{250};
  static const Workload* workload = new Workload(24);

  RunTally total;
  for (auto _ : state) {
    RunTally run = RunSessions(*workload, view_bytes, kDelay);
    total.warm_sessions += run.warm_sessions;
    total.mismatches += run.mismatches;
    total.warm_exchanges += run.warm_exchanges;
    total.view_hits += run.view_hits;
    total.view_publishes += run.view_publishes;
  }
  state.SetItemsProcessed(total.warm_sessions);
  state.counters["views_kb"] = static_cast<double>(state.range(0));
  state.counters["mismatches"] = static_cast<double>(total.mismatches);
  state.counters["warm_wrapper_exchanges"] =
      static_cast<double>(total.warm_exchanges);
  state.counters["view_hits"] = static_cast<double>(total.view_hits);
  state.counters["view_publishes"] = static_cast<double>(total.view_publishes);
}
BENCHMARK(BM_AnswerViewSessions)
    ->ArgName("views_kb")
    ->Arg(0)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Raw subsumption-probe cost on the open path: TryMatch against a cache
/// holding one matching descriptor — the per-open overhead a view-enabled
/// service adds before falling back to a live build.
void BM_ViewMatchCost(benchmark::State& state) {
  auto plan = mediator::CompileXmas(kZipsBase).ValueOrDie();
  mediator::ViewShape shape = mediator::ComputeViewShape(*plan);
  auto narrow_plan = mediator::CompileXmas(kZipsNarrow).ValueOrDie();
  mediator::ViewShape narrow = mediator::ComputeViewShape(*narrow_plan);

  mediator::AnswerViewCache cache(
      mediator::AnswerViewCache::Options{int64_t{1} << 20});
  // Donate the real base answer: evaluate kZipsBase in-process and export
  // its materialized document (a factored publish must carry the view's
  // root label).
  auto homes = xml::MakeHomesDoc(24, 10);
  auto schools = xml::MakeSchoolsDoc(24, 10);
  xml::DocNavigable homes_nav(homes.get());
  xml::DocNavigable schools_nav(schools.get());
  mediator::SourceRegistry sources;
  sources.Register("homesSrc", &homes_nav);
  sources.Register("schoolsSrc", &schools_nav);
  auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
  xml::Document answer;
  xml::Node* answer_root = xml::MaterializeInto(med->document(), &answer);
  answer.set_root(answer_root);
  xml::DocNavigable answer_nav(&answer);
  std::vector<SubtreeEntry> entries;
  answer_nav.FetchSubtree(answer_nav.Root(), -1, &entries);
  cache.Publish(shape, entries, cache.PinGenerations(shape.sources));

  int64_t hits = 0;
  for (auto _ : state) {
    mediator::AnswerViewCache::Match m = cache.TryMatch(narrow);
    if (m.snapshot != nullptr) ++hits;
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hit_rate"] = benchmark::Counter(
      static_cast<double>(hits), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ViewMatchCost);

}  // namespace
