// Experiment E5 (DESIGN.md): per-operator cost of lazy-mediator
// navigation translation (Figs. 5, 9, 10) — the administrative overhead
// of answering one output navigation through structured node-ids, versus
// a direct walk of the underlying tree.
#include <benchmark/benchmark.h>

#include "algebra/concatenate_op.h"
#include "algebra/create_element_op.h"
#include "algebra/get_descendants_op.h"
#include "algebra/group_by_op.h"
#include "algebra/join_op.h"
#include "algebra/select_op.h"
#include "algebra/source_op.h"
#include "xml/doc_navigable.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;
using algebra::BindingPredicate;
using algebra::CompareOp;

// Baseline: iterate the home elements by walking the document directly.
void BM_DirectChildWalk(benchmark::State& state) {
  auto doc = xml::MakeHomesDoc(1000, 100);
  xml::DocNavigable nav(doc.get());
  for (auto _ : state) {
    int64_t count = 0;
    for (auto child = nav.Down(nav.Root()); child.has_value();
         child = nav.Right(*child)) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DirectChildWalk);

// getDescendants with a label chain: same iteration through the lazy
// mediator (cursor snapshots, id minting).
void BM_GetDescendantsIteration(benchmark::State& state) {
  auto doc = xml::MakeHomesDoc(1000, 100);
  for (auto _ : state) {
    xml::DocNavigable nav(doc.get());
    algebra::SourceOp source(&nav, "R");
    algebra::GetDescendantsOp gd(
        &source, "R", pathexpr::PathExpr::Parse("home").ValueOrDie(), "H");
    int64_t count = 0;
    for (auto b = gd.FirstBinding(); b.has_value(); b = gd.NextBinding(*b)) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_GetDescendantsIteration);

// Recursive path expression over a deep random tree.
void BM_GetDescendantsRecursive(benchmark::State& state) {
  xml::RandomTreeOptions options;
  options.seed = 3;
  options.max_depth = 7;
  options.max_fanout = 4;
  auto doc = xml::RandomTree(options);
  for (auto _ : state) {
    xml::DocNavigable nav(doc.get());
    algebra::SourceOp source(&nav, "R");
    algebra::GetDescendantsOp gd(
        &source, "R", pathexpr::PathExpr::Parse("_*.a1").ValueOrDie(), "X");
    int64_t count = 0;
    for (auto b = gd.FirstBinding(); b.has_value(); b = gd.NextBinding(*b)) {
      ++count;
    }
    state.counters["matches"] = static_cast<double>(count);
  }
}
BENCHMARK(BM_GetDescendantsRecursive);

// Selection: scan-and-filter through the mediator.
void BM_SelectIteration(benchmark::State& state) {
  auto doc = xml::MakeHomesDoc(1000, 100);
  for (auto _ : state) {
    xml::DocNavigable nav(doc.get());
    algebra::SourceOp source(&nav, "R");
    algebra::GetDescendantsOp homes(
        &source, "R", pathexpr::PathExpr::Parse("home").ValueOrDie(), "H");
    algebra::GetDescendantsOp zips(
        &homes, "H", pathexpr::PathExpr::Parse("zip._").ValueOrDie(), "Z");
    algebra::SelectOp select(
        &zips, BindingPredicate::VarConst("Z", CompareOp::kEq, "91042"));
    int64_t count = 0;
    for (auto b = select.FirstBinding(); b.has_value();
         b = select.NextBinding(*b)) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SelectIteration);

// Join strategies: cache-less nested loops (0), the paper's cached nested
// loops (1), and the hash-indexed "intermediate eager step" (2).
void BM_JoinIteration(benchmark::State& state) {
  int strategy = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  auto homes = xml::MakeHomesDoc(n, n / 4);
  auto schools = xml::MakeSchoolsDoc(n, n / 4);
  for (auto _ : state) {
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    NavStats inner_stats;
    CountingNavigable schools_counted(&schools_nav, &inner_stats);
    algebra::SourceOp hs(&homes_nav, "RH");
    algebra::SourceOp ss(&schools_counted, "RS");
    algebra::GetDescendantsOp gh(
        &hs, "RH", pathexpr::PathExpr::Parse("home").ValueOrDie(), "H");
    algebra::GetDescendantsOp gs(
        &ss, "RS", pathexpr::PathExpr::Parse("school").ValueOrDie(), "S");
    algebra::GetDescendantsOp vh(
        &gh, "H", pathexpr::PathExpr::Parse("zip._").ValueOrDie(), "V1");
    algebra::GetDescendantsOp vs(
        &gs, "S", pathexpr::PathExpr::Parse("zip._").ValueOrDie(), "V2");
    algebra::JoinOp::Options options;
    options.cache_inner = strategy >= 1;
    options.index_inner = strategy == 2;
    algebra::JoinOp join(&vh, &vs,
                         BindingPredicate::VarVar("V1", CompareOp::kEq, "V2"),
                         options);
    int64_t count = 0;
    for (auto b = join.FirstBinding(); b.has_value();
         b = join.NextBinding(*b)) {
      ++count;
    }
    state.counters["pairs"] = static_cast<double>(count);
    state.counters["inner_src_navs"] =
        static_cast<double>(inner_stats.total());
  }
}
BENCHMARK(BM_JoinIteration)
    ->ArgNames({"strategy", "n"})
    ->Args({0, 100})
    ->Args({1, 100})
    ->Args({2, 100})
    ->Args({0, 300})
    ->Args({1, 300})
    ->Args({2, 300});

// First-result latency by join strategy: the eager index pays the full
// inner drain before the first answer; nested loops stop at the first
// match — the lazy/eager trade-off of Section 6 in one number.
void BM_JoinFirstResultByStrategy(benchmark::State& state) {
  int strategy = static_cast<int>(state.range(0));
  int n = 2000;
  auto homes = xml::MakeHomesDoc(n, n / 4);
  auto schools = xml::MakeSchoolsDoc(n, n / 4);
  for (auto _ : state) {
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    NavStats stats;
    CountingNavigable hc(&homes_nav, &stats);
    CountingNavigable sc(&schools_nav, &stats);
    algebra::SourceOp hs(&hc, "RH");
    algebra::SourceOp ss(&sc, "RS");
    algebra::GetDescendantsOp gh(
        &hs, "RH", pathexpr::PathExpr::Parse("home").ValueOrDie(), "H");
    algebra::GetDescendantsOp gs(
        &ss, "RS", pathexpr::PathExpr::Parse("school").ValueOrDie(), "S");
    algebra::GetDescendantsOp vh(
        &gh, "H", pathexpr::PathExpr::Parse("zip._").ValueOrDie(), "V1");
    algebra::GetDescendantsOp vs(
        &gs, "S", pathexpr::PathExpr::Parse("zip._").ValueOrDie(), "V2");
    algebra::JoinOp::Options options;
    options.cache_inner = strategy >= 1;
    options.index_inner = strategy == 2;
    algebra::JoinOp join(&vh, &vs,
                         BindingPredicate::VarVar("V1", CompareOp::kEq, "V2"),
                         options);
    benchmark::DoNotOptimize(join.FirstBinding());
    state.counters["src_navs_first_result"] =
        static_cast<double>(stats.total());
  }
}
BENCHMARK(BM_JoinFirstResultByStrategy)
    ->ArgNames({"strategy"})
    ->Args({0})
    ->Args({1})
    ->Args({2});

// groupBy: iterating groups plus each group's items (Fig. 10's next_gb and
// next scans). Grouping is by node identity (footnote 7), so the group key
// must be a *shared* node: homes nest under region elements, and bindings
// (R, H) share R within a region.
std::unique_ptr<xml::Document> RegionsDoc(int regions, int homes_per_region) {
  auto doc = std::make_unique<xml::Document>();
  xml::Node* root = doc->NewElement("regions");
  for (int r = 0; r < regions; ++r) {
    xml::Node* region = doc->NewElement("region");
    for (int h = 0; h < homes_per_region; ++h) {
      xml::Node* home = doc->NewElement("home");
      doc->AppendChild(home, doc->NewText("h" + std::to_string(h)));
      doc->AppendChild(region, home);
    }
    doc->AppendChild(root, region);
  }
  doc->set_root(root);
  return doc;
}

void BM_GroupByIteration(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto doc = RegionsDoc(/*regions=*/10, /*homes_per_region=*/n / 10);
  for (auto _ : state) {
    xml::DocNavigable nav(doc.get());
    algebra::SourceOp source(&nav, "R");
    algebra::GetDescendantsOp regions(
        &source, "R", pathexpr::PathExpr::Parse("region").ValueOrDie(), "G");
    algebra::GetDescendantsOp homes(
        &regions, "G", pathexpr::PathExpr::Parse("home").ValueOrDie(), "H");
    algebra::GroupByOp gb(&homes, {"G"}, "H", "Hs");
    int64_t groups = 0;
    int64_t items = 0;
    for (auto b = gb.FirstBinding(); b.has_value(); b = gb.NextBinding(*b)) {
      ++groups;
      algebra::ValueRef list = gb.Attr(*b, "Hs");
      for (auto item = list.nav->Down(list.id); item.has_value();
           item = list.nav->Right(*item)) {
        ++items;
      }
    }
    state.counters["groups"] = static_cast<double>(groups);
    state.counters["items"] = static_cast<double>(items);
  }
}
BENCHMARK(BM_GroupByIteration)->ArgNames({"n"})->Args({100})->Args({1000})->Args({10000});

// createElement + concatenate: navigating synthesized structure (Fig. 9's
// pass-through rows).
void BM_ConstructedValueNavigation(benchmark::State& state) {
  auto doc = xml::MakeHomesDoc(500, 50);
  for (auto _ : state) {
    xml::DocNavigable nav(doc.get());
    algebra::SourceOp source(&nav, "R");
    algebra::GetDescendantsOp homes(
        &source, "R", pathexpr::PathExpr::Parse("home").ValueOrDie(), "H");
    algebra::GetDescendantsOp addrs(
        &homes, "H", pathexpr::PathExpr::Parse("addr").ValueOrDie(), "A");
    algebra::ConcatenateOp cc(&addrs, "A", "H", "Both");
    algebra::CreateElementOp ce(
        &cc, algebra::CreateElementOp::LabelSpec::Constant("card"), "Both",
        "Card");
    int64_t nodes = 0;
    for (auto b = ce.FirstBinding(); b.has_value(); b = ce.NextBinding(*b)) {
      algebra::ValueRef card = ce.Attr(*b, "Card");
      // Walk the synthesized card element completely.
      std::vector<NodeId> stack{card.id};
      while (!stack.empty()) {
        NodeId p = stack.back();
        stack.pop_back();
        benchmark::DoNotOptimize(card.nav->Fetch(p));
        ++nodes;
        for (auto c = card.nav->Down(p); c.has_value();
             c = card.nav->Right(*c)) {
          stack.push_back(*c);
        }
      }
    }
    state.counters["nodes_navigated"] = static_cast<double>(nodes);
  }
}
BENCHMARK(BM_ConstructedValueNavigation);

}  // namespace
