// Experiment E1 (DESIGN.md): navigational complexity of the three view
// classes of Example 1 / Def. 2.
//
// For each view we drive the same client workload — browse the first
// `results` answers of a source with `n` first-level children — and report
// the *source navigations per client navigation command*:
//
//   * q_conc (bounded browsable):   constant, independent of n;
//   * selection view (browsable):   grows with the data-dependent gap
//                                   between matches;
//   * selection + σ (bounded):      constant again — the Section 2 upgrade;
//   * orderBy view (unbrowsable):   the first client command costs Θ(n).
//
// The workload source is flat: r[x,...,x,hit,x,...] with one `hit` every
// `gap` children.
#include <benchmark/benchmark.h>

#include "algebra/get_descendants_op.h"
#include "algebra/order_by_op.h"
#include "algebra/source_op.h"
#include "xml/doc_navigable.h"
#include "xml/tree.h"

namespace {

using namespace mix;

std::unique_ptr<xml::Document> FlatSource(int n, int gap) {
  auto doc = std::make_unique<xml::Document>();
  xml::Node* root = doc->NewElement("r");
  for (int i = 0; i < n; ++i) {
    xml::Node* child =
        doc->NewElement(i % gap == gap - 1 ? "hit" : "x");
    doc->AppendChild(child, doc->NewText(std::to_string(n - i)));
    doc->AppendChild(root, child);
  }
  doc->set_root(root);
  return doc;
}

/// Drives `results` NextBinding steps; returns client command count
/// (1 per First/NextBinding in this abstraction).
template <typename Stream>
int64_t Drive(Stream* stream, int results) {
  int64_t client_commands = 0;
  auto b = stream->FirstBinding();
  ++client_commands;
  for (int i = 1; i < results && b.has_value(); ++i) {
    b = stream->NextBinding(*b);
    ++client_commands;
  }
  return client_commands;
}

// q_conc-like view: every first-level child is an answer (wildcard step).
void BM_BoundedConcatView(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int results = static_cast<int>(state.range(1));
  auto doc = FlatSource(n, /*gap=*/1);
  for (auto _ : state) {
    xml::DocNavigable nav(doc.get());
    NavStats stats;
    CountingNavigable counted(&nav, &stats);
    algebra::SourceOp source(&counted, "R");
    algebra::GetDescendantsOp view(
        &source, "R", pathexpr::PathExpr::Parse("_").ValueOrDie(), "X");
    int64_t client = Drive(&view, results);
    state.counters["src_navs"] = static_cast<double>(stats.total());
    state.counters["navs_per_client_cmd"] =
        static_cast<double>(stats.total()) / static_cast<double>(client);
  }
}
BENCHMARK(BM_BoundedConcatView)
    ->ArgNames({"n", "results"})
    ->Args({1000, 10})
    ->Args({10000, 10})
    ->Args({100000, 10});

// Selection view without σ: r/f scan between matches.
void BM_BrowsableSelectionView(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int gap = static_cast<int>(state.range(1));
  auto doc = FlatSource(n, gap);
  for (auto _ : state) {
    xml::DocNavigable nav(doc.get());
    NavStats stats;
    CountingNavigable counted(&nav, &stats);
    algebra::SourceOp source(&counted, "R");
    algebra::GetDescendantsOp view(
        &source, "R", pathexpr::PathExpr::Parse("hit").ValueOrDie(), "X");
    int64_t client = Drive(&view, 10);
    state.counters["src_navs"] = static_cast<double>(stats.total());
    state.counters["navs_per_client_cmd"] =
        static_cast<double>(stats.total()) / static_cast<double>(client);
  }
}
BENCHMARK(BM_BrowsableSelectionView)
    ->ArgNames({"n", "gap"})
    ->Args({10000, 2})
    ->Args({10000, 10})
    ->Args({10000, 100})
    ->Args({10000, 1000});

// Selection view with σ: one select command replaces the scan.
void BM_BoundedSelectionViewWithSigma(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int gap = static_cast<int>(state.range(1));
  auto doc = FlatSource(n, gap);
  for (auto _ : state) {
    xml::DocNavigable nav(doc.get());
    NavStats stats;
    CountingNavigable counted(&nav, &stats);
    algebra::SourceOp source(&counted, "R");
    algebra::GetDescendantsOp::Options options;
    options.use_select_sibling = true;
    algebra::GetDescendantsOp view(
        &source, "R", pathexpr::PathExpr::Parse("hit").ValueOrDie(), "X",
        options);
    int64_t client = Drive(&view, 10);
    state.counters["src_navs"] = static_cast<double>(stats.total());
    state.counters["navs_per_client_cmd"] =
        static_cast<double>(stats.total()) / static_cast<double>(client);
  }
}
BENCHMARK(BM_BoundedSelectionViewWithSigma)
    ->ArgNames({"n", "gap"})
    ->Args({10000, 2})
    ->Args({10000, 10})
    ->Args({10000, 100})
    ->Args({10000, 1000});

// orderBy view: the first client command drains the entire input.
void BM_UnbrowsableOrderByView(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto doc = FlatSource(n, /*gap=*/1);
  for (auto _ : state) {
    xml::DocNavigable nav(doc.get());
    NavStats stats;
    CountingNavigable counted(&nav, &stats);
    algebra::SourceOp source(&counted, "R");
    algebra::GetDescendantsOp elems(
        &source, "R", pathexpr::PathExpr::Parse("_._").ValueOrDie(), "A");
    algebra::OrderByOp view(&elems, {"A"});
    // ONE client command.
    benchmark::DoNotOptimize(view.FirstBinding());
    state.counters["src_navs_first_result"] =
        static_cast<double>(stats.total());
  }
}
BENCHMARK(BM_UnbrowsableOrderByView)
    ->ArgNames({"n"})
    ->Args({1000})
    ->Args({10000})
    ->Args({100000});

}  // namespace
