// Experiment E6 (DESIGN.md): the full Fig. 4 plan, end-to-end, as a tree
// of lazy mediators (Figs. 1-2).
//
//   * join selectivity sweep: source navigations for the first result as
//     the zip-code density varies (sparser joins scan further — the
//     unbounded-browsable behavior at plan scale);
//   * plan depth: stacking an extra mediator level on top (query over a
//     view, Fig. 1) — navigations at the bottom boundary stay put, per-hop
//     administration grows;
//   * rewriting ablation: σ-enabled vs. plain plans over σ-capable sources.
#include <benchmark/benchmark.h>

#include "mediator/instantiate.h"
#include "mediator/rewrite.h"
#include "mediator/translate.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

mediator::PlanPtr Fig3Plan(bool sigma) {
  auto q = xmas::ParseQuery(kFig3).ValueOrDie();
  auto plan = mediator::TranslateQuery(q).ValueOrDie();
  if (sigma) {
    mediator::RewriteOptions options;
    options.sigma_capable_sources = true;
    mediator::Rewrite(&plan, options);
  }
  return plan;
}

/// First-result latency vs. join selectivity (zips count).
void BM_JoinSelectivitySweep(benchmark::State& state) {
  int n = 2000;
  int zips = static_cast<int>(state.range(0));
  auto homes = xml::MakeHomesDoc(n, zips);
  auto schools = xml::MakeSchoolsDoc(n, zips);
  auto plan = Fig3Plan(false);
  for (auto _ : state) {
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    NavStats stats;
    CountingNavigable hc(&homes_nav, &stats);
    CountingNavigable sc(&schools_nav, &stats);
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &hc);
    sources.Register("schoolsSrc", &sc);
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    Navigable* doc = med->document();
    auto mh = doc->Down(doc->Root());
    benchmark::DoNotOptimize(mh);
    state.counters["src_navs_first_result"] =
        static_cast<double>(stats.total());
  }
}
BENCHMARK(BM_JoinSelectivitySweep)
    ->ArgNames({"zips"})
    ->Args({10})
    ->Args({100})
    ->Args({1000})
    ->Args({10000});

/// Homes interleaved with non-matching noise elements (ads, banners...) —
/// the realistic Web page where label selection actually skips content.
/// One home every `noise + 1` children.
std::unique_ptr<xml::Document> NoisyHomes(int n, int zips, int noise) {
  auto doc = std::make_unique<xml::Document>();
  xml::Node* root = doc->NewElement("homes");
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < noise; ++j) {
      xml::Node* ad = doc->NewElement("ad");
      doc->AppendChild(ad, doc->NewText("buy now"));
      doc->AppendChild(root, ad);
    }
    xml::Node* home = doc->NewElement("home");
    xml::Node* zip = doc->NewElement("zip");
    doc->AppendChild(zip, doc->NewText(xml::ZipFor(i, zips, 7)));
    doc->AppendChild(home, zip);
    doc->AppendChild(root, home);
  }
  doc->set_root(root);
  return doc;
}

/// σ-rewriting ablation: a label-selection view over a noisy source
/// (`noise` non-matching siblings per home) — the Section 2 example whose
/// browsability σ upgrades. Skims the first 20 homes.
void BM_SigmaRewriteAblation(benchmark::State& state) {
  bool sigma = state.range(0) != 0;
  int noise = static_cast<int>(state.range(1));
  auto homes = NoisyHomes(2000, 60, noise);
  auto q = xmas::ParseQuery(
      "CONSTRUCT <out> $H {$H} </out> {} WHERE homesSrc homes.home $H");
  auto plan = mediator::TranslateQuery(q.value()).ValueOrDie();
  if (sigma) {
    mediator::RewriteOptions options;
    options.sigma_capable_sources = true;
    mediator::Rewrite(&plan, options);
  }
  for (auto _ : state) {
    xml::DocNavigable homes_nav(homes.get());
    NavStats stats;
    CountingNavigable hc(&homes_nav, &stats);
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &hc);
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    Navigable* doc = med->document();
    auto h = doc->Down(doc->Root());
    for (int i = 0; i < 19 && h.has_value(); ++i) h = doc->Right(*h);
    // σ folds r/f sibling scans into single select commands at the source.
    state.counters["src_cmds"] = static_cast<double>(stats.total());
    state.counters["src_selects"] = static_cast<double>(stats.selects);
  }
}
BENCHMARK(BM_SigmaRewriteAblation)
    ->ArgNames({"sigma", "noise"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 9})
    ->Args({1, 9})
    ->Args({0, 99})
    ->Args({1, 99});

/// Mediator-tree depth: the same client workload through 0..3 extra
/// identity-view mediators stacked on the Fig. 3 answer.
void BM_MediatorStackDepth(benchmark::State& state) {
  int extra_levels = static_cast<int>(state.range(0));
  auto homes = xml::MakeHomesDoc(500, 60);
  auto schools = xml::MakeSchoolsDoc(500, 60);
  auto base_plan = Fig3Plan(false);
  // Identity view: re-group all med_homes under a fresh answer element.
  auto identity_q = xmas::ParseQuery(
      "CONSTRUCT <answer> $M {$M} </answer> {} "
      "WHERE below answer.med_home $M");
  auto identity_plan =
      mediator::TranslateQuery(identity_q.value()).ValueOrDie();

  for (auto _ : state) {
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    NavStats stats;
    CountingNavigable hc(&homes_nav, &stats);
    CountingNavigable sc(&schools_nav, &stats);
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &hc);
    sources.Register("schoolsSrc", &sc);
    std::vector<std::unique_ptr<mediator::LazyMediator>> stack;
    stack.push_back(
        mediator::LazyMediator::Build(*base_plan, sources).ValueOrDie());
    for (int i = 0; i < extra_levels; ++i) {
      mediator::SourceRegistry upper;
      upper.Register("below", stack.back()->document());
      stack.push_back(
          mediator::LazyMediator::Build(*identity_plan, upper).ValueOrDie());
    }
    Navigable* doc = stack.back()->document();
    auto mh = doc->Down(doc->Root());
    for (int i = 0; i < 2 && mh.has_value(); ++i) mh = doc->Right(*mh);
    state.counters["src_navs"] = static_cast<double>(stats.total());
  }
}
BENCHMARK(BM_MediatorStackDepth)
    ->ArgNames({"extra_levels"})
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->Args({3});

}  // namespace
