// Experiment E14 (EXPERIMENTS.md): the cross-session shared source-fragment
// cache + compiled-plan cache under concurrent session load.
//
//   * BM_SharedCacheSessions — 64 sessions over 8 client threads against a
//     shared hot source whose wrapper exchanges cost 250 µs each (the
//     remote-source deployment model), with the cache off (cache_kb=0) vs
//     on. Acceptance: with the cache warm, wrapper navigations drop >= 50%
//     and session throughput rises >= 2x at byte-identical answers
//     (`mismatches` = 0, `answer_bytes` equal across runs).
//   * BM_CacheBudgetPressure — the same load against an UNDERSIZED byte
//     budget: `peak_bytes` must never exceed the budget and `evictions`
//     must be > 0 — the reserve-then-insert accounting under churn.
//   * BM_CacheOps — raw publish/lookup cost of the sharded cache itself.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "buffer/source_cache.h"
#include "client/framed_document.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "service/service.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;
using service::MediatorService;
using service::SessionEnvironment;

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

/// Decorator modeling a remote source: every LXP exchange sleeps `delay`
/// and bumps a shared exchange counter — the "wrapper navigations" E14
/// compares cache-on vs cache-off.
class CountedDelayWrapper : public buffer::LxpWrapper {
 public:
  CountedDelayWrapper(std::unique_ptr<buffer::LxpWrapper> inner,
                      std::chrono::microseconds delay,
                      std::atomic<int64_t>* exchanges)
      : inner_(std::move(inner)), delay_(delay), exchanges_(exchanges) {}

  std::string GetRoot(const std::string& uri) override {
    Charge();
    return inner_->GetRoot(uri);
  }
  buffer::FragmentList Fill(const std::string& hole_id) override {
    Charge();
    return inner_->Fill(hole_id);
  }
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override {
    Charge();
    return inner_->FillMany(holes, budget);
  }

 private:
  void Charge() {
    exchanges_->fetch_add(1, std::memory_order_relaxed);
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
  }

  std::unique_ptr<buffer::LxpWrapper> inner_;
  std::chrono::microseconds delay_;
  std::atomic<int64_t>* exchanges_;
};

struct Workload {
  std::unique_ptr<xml::Document> homes;
  std::unique_ptr<xml::Document> schools;
  std::string reference_term;  ///< in-process (cache-free) evaluation

  explicit Workload(int n) {
    homes = xml::MakeHomesDoc(n, 10);
    schools = xml::MakeSchoolsDoc(n, 10);
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &homes_nav);
    sources.Register("schoolsSrc", &schools_nav);
    auto plan = mediator::CompileXmas(kFig3).ValueOrDie();
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    xml::Document out;
    reference_term = xml::ToTerm(xml::MaterializeInto(med->document(), &out));
  }

  void Populate(SessionEnvironment* env, std::chrono::microseconds delay,
                std::atomic<int64_t>* exchanges) const {
    auto factory = [delay, exchanges](const xml::Document* doc) {
      return [doc, delay, exchanges]() -> std::unique_ptr<buffer::LxpWrapper> {
        return std::make_unique<CountedDelayWrapper>(
            std::make_unique<wrappers::XmlLxpWrapper>(doc), delay, exchanges);
      };
    };
    env->RegisterWrapperFactory("homesSrc", factory(homes.get()), "homes.xml");
    env->RegisterWrapperFactory("schoolsSrc", factory(schools.get()),
                                "schools.xml");
  }
};

std::string MaterializeFramed(client::FramedDocument* doc) {
  xml::Document out;
  return xml::ToTerm(xml::MaterializeInto(doc, &out));
}

struct RunTally {
  int64_t sessions = 0;
  int64_t mismatches = 0;
  int64_t exchanges = 0;
  int64_t answer_bytes = 0;
  int64_t cache_hits = 0;
  int64_t evictions = 0;
  int64_t peak_bytes = 0;
  int64_t plan_hits = 0;
};

/// One full load run: 64 sessions over 8 client threads, each open ->
/// framed materialization -> fidelity check -> close. `cache_bytes` <= 0
/// runs cache-off.
RunTally RunSessions(const Workload& workload, int64_t cache_bytes,
                     std::chrono::microseconds delay) {
  constexpr int kSessions = 64;
  constexpr int kClientThreads = 8;

  std::atomic<int64_t> exchanges{0};
  SessionEnvironment env;
  workload.Populate(&env, delay, &exchanges);
  MediatorService::Options options;
  options.workers = 8;
  options.queue_capacity = 4096;
  options.source_cache_bytes = cache_bytes;
  MediatorService service(&env, options);

  std::atomic<int64_t> bad{0};
  std::atomic<int64_t> bytes_out{0};
  std::atomic<int64_t> peak{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&] {
      for (int s = 0; s < kSessions / kClientThreads; ++s) {
        auto doc = client::FramedDocument::Open(&service, kFig3);
        if (!doc.ok()) {
          ++bad;
          continue;
        }
        std::string term = MaterializeFramed(doc.value().get());
        if (term != workload.reference_term) ++bad;
        bytes_out += static_cast<int64_t>(term.size());
        (void)doc.value()->Close();
        // Sample the byte account mid-load: the reserve-then-insert scheme
        // promises it NEVER exceeds the budget, not just at quiescence.
        int64_t now = service.source_cache().bytes();
        int64_t seen = peak.load(std::memory_order_relaxed);
        while (now > seen &&
               !peak.compare_exchange_weak(seen, now,
                                           std::memory_order_relaxed)) {
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  service::ServiceMetricsSnapshot snap = service.Metrics();
  RunTally tally;
  tally.sessions = kSessions;
  tally.mismatches = bad.load();
  tally.exchanges = exchanges.load();
  tally.answer_bytes = bytes_out.load();
  tally.cache_hits = snap.cache_hits;
  tally.evictions = snap.cache_evictions;
  tally.peak_bytes = std::max(peak.load(), snap.cache_bytes);
  tally.plan_hits = snap.plan_cache_hits;
  return tally;
}

/// E14 headline: cache_kb=0 (off) vs cache_kb=4096 (on, amply sized).
/// items_per_second is session throughput; `wrapper_exchanges` is the
/// navigation count the >= 50% reduction acceptance reads.
void BM_SharedCacheSessions(benchmark::State& state) {
  const int64_t cache_bytes = state.range(0) * int64_t{1024};
  constexpr std::chrono::microseconds kDelay{250};
  static const Workload* workload = new Workload(24);

  RunTally total;
  for (auto _ : state) {
    RunTally run = RunSessions(*workload, cache_bytes, kDelay);
    total.sessions += run.sessions;
    total.mismatches += run.mismatches;
    total.exchanges += run.exchanges;
    total.answer_bytes += run.answer_bytes;
    total.cache_hits += run.cache_hits;
    total.plan_hits += run.plan_hits;
    total.peak_bytes = std::max(total.peak_bytes, run.peak_bytes);
  }
  state.SetItemsProcessed(total.sessions);
  state.counters["cache_kb"] = static_cast<double>(state.range(0));
  state.counters["mismatches"] = static_cast<double>(total.mismatches);
  state.counters["wrapper_exchanges"] = static_cast<double>(total.exchanges);
  state.counters["answer_bytes"] = static_cast<double>(total.answer_bytes);
  state.counters["cache_hits"] = static_cast<double>(total.cache_hits);
  state.counters["plan_cache_hits"] = static_cast<double>(total.plan_hits);
  state.counters["peak_cache_bytes"] = static_cast<double>(total.peak_bytes);
}
BENCHMARK(BM_SharedCacheSessions)
    ->ArgName("cache_kb")
    ->Arg(0)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Undersized budget: the cache churns (evictions > 0) but the byte account
/// never crosses the budget and every answer stays byte-identical. No fill
/// delay — this measures the accounting under maximum insert pressure.
void BM_CacheBudgetPressure(benchmark::State& state) {
  const int64_t budget = state.range(0);
  static const Workload* workload = new Workload(24);

  RunTally total;
  for (auto _ : state) {
    RunTally run =
        RunSessions(*workload, budget, std::chrono::microseconds(0));
    total.sessions += run.sessions;
    total.mismatches += run.mismatches;
    total.evictions += run.evictions;
    total.peak_bytes = std::max(total.peak_bytes, run.peak_bytes);
  }
  state.SetItemsProcessed(total.sessions);
  state.counters["budget_bytes"] = static_cast<double>(budget);
  state.counters["mismatches"] = static_cast<double>(total.mismatches);
  state.counters["evictions"] = static_cast<double>(total.evictions);
  state.counters["peak_cache_bytes"] = static_cast<double>(total.peak_bytes);
  state.counters["over_budget"] =
      static_cast<double>(total.peak_bytes > budget ? 1 : 0);
}
BENCHMARK(BM_CacheBudgetPressure)
    ->ArgName("budget")
    ->Arg(2048)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Raw cache ops: publish-then-lookup over a rotating key set — the
/// per-exchange overhead a cache-enabled buffer adds to a hit path.
void BM_CacheOps(benchmark::State& state) {
  buffer::SourceCache cache(
      buffer::SourceCache::Options{int64_t{8} << 20, 8});
  buffer::FragmentList fragments;
  for (int i = 0; i < 10; ++i) {
    fragments.push_back(buffer::Fragment::Element("row"));
  }
  int64_t i = 0;
  int64_t hits = 0;
  for (auto _ : state) {
    std::string hole = "t:homes:" + std::to_string(i % 512);
    cache.PublishFill("homes", 0, hole, fragments);
    auto hit = cache.LookupFill("homes", 0, hole);
    if (hit != nullptr) ++hits;
    benchmark::DoNotOptimize(hit);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hit_rate"] = benchmark::Counter(
      static_cast<double>(hits), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CacheOps);

}  // namespace
