// Experiment E7 (DESIGN.md): asynchronous prefetching (Section 4: "a
// buffer can be used to decouple the client-driven view navigation ...
// and the production of results by the wrapped source ... based on an
// asynchronous prefetching strategy"; Section 6 lists it as planned).
//
// Model: while the user thinks between navigations, the buffer fills up
// to `prefetch` outstanding holes in the background. Background traffic is
// charged to a separate channel (it overlaps think time); the *demand*
// channel only pays for fills the user actually has to wait for.
//
// Since the async fill engine landed (E19, bench_async_fill), this
// dual-channel setup is purely the *deterministic-sim knob*: a separate
// `prefetch_channel` models overlap on virtual SimClock time with exact,
// reproducible message counts. Real concurrency — wrapper exchanges in
// flight on background threads — is the readahead window
// (`max_in_flight`) plus the service's BackgroundPrefetcher, measured on
// wall clock in bench_async_fill. Both views are kept: this one for
// byte/message accounting, E19 for elapsed time.
//
// Workload: page through the first 600 books of a 10k-book store (25
// books per page). Expected shape: client-visible (demand) latency drops
// toward zero as prefetch depth covers the page rate; total bytes rise
// slightly (speculation past the stop point).
#include <benchmark/benchmark.h>

#include "buffer/buffer.h"
#include "net/sim_net.h"
#include "wrappers/bookstore.h"

namespace {

using namespace mix;

void BM_PrefetchDepthSweep(benchmark::State& state) {
  int prefetch = static_cast<int>(state.range(0));
  bool on_miss_only = state.range(1) != 0;
  wrappers::BookstoreSite site("store",
                               wrappers::MakeCatalog({10000, 42, 0}), 25);
  for (auto _ : state) {
    wrappers::BookstoreLxpWrapper wrapper(&site);
    net::SimClock demand_clock;
    net::Channel demand(&demand_clock, net::ChannelOptions{});
    net::Channel background(nullptr, net::ChannelOptions{});
    buffer::BufferComponent::Options options;
    options.channel = &demand;
    options.prefetch_per_command = prefetch;
    options.prefetch_channel = &background;
    options.prefetch_on_miss_only = on_miss_only;
    buffer::BufferComponent buffer(&wrapper, "http://store", options);

    std::optional<NodeId> book = buffer.Down(buffer.Root());
    for (int i = 1; i < 600 && book.has_value(); ++i) {
      benchmark::DoNotOptimize(buffer.Fetch(*book));
      book = buffer.Right(*book);
    }
    state.counters["demand_wait_ms"] = demand_clock.now_ns() / 1e6;
    state.counters["demand_msgs"] =
        static_cast<double>(demand.stats().messages);
    state.counters["background_msgs"] =
        static_cast<double>(background.stats().messages);
    // FillMany coalescing: how many fills rode inside batch messages.
    state.counters["background_batched_parts"] =
        static_cast<double>(background.stats().batched_parts);
    state.counters["total_bytes"] = static_cast<double>(
        demand.stats().bytes + background.stats().bytes);
    state.counters["pages_fetched"] =
        static_cast<double>(wrapper.pages_fetched());
  }
}
BENCHMARK(BM_PrefetchDepthSweep)
    ->ArgNames({"prefetch", "on_miss_only"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({1, 0})
    ->Args({4, 0});

}  // namespace
