// Experiment E3 (DESIGN.md): Section 4's granularity claim — chunked LXP
// fills ("a relational source may return chunks of 100 tuples at a time")
// cut communication overhead relative to node-at-a-time navigation, while
// oversized chunks waste bandwidth on unread tuples.
//
// Workload: browse the first `rows_read` rows of a 10k-row relational
// query view through the buffer, sweeping the wrapper chunk size n.
// Reported: messages, bytes, simulated network time (0.5 ms/message +
// 10 ns/byte), and RDB rows scanned.
#include <benchmark/benchmark.h>

#include "buffer/buffer.h"
#include "net/sim_net.h"
#include "rdb/database.h"
#include "wrappers/relational_wrapper.h"

namespace {

using namespace mix;

rdb::Database MakeDb(int rows) {
  rdb::Database db("realty");
  rdb::Schema schema({{"addr", rdb::Type::kString},
                      {"zip", rdb::Type::kInt},
                      {"price", rdb::Type::kInt}});
  rdb::Table* t = db.CreateTable("homes", schema).ValueOrDie();
  for (int i = 0; i < rows; ++i) {
    t->Insert({rdb::Value("street " + std::to_string(i)),
               rdb::Value(int64_t{91200 + i % 40}),
               rdb::Value(int64_t{100000 + (i * 7919) % 900000})});
  }
  return db;
}

void BrowseRows(Navigable* view, int rows_read) {
  std::optional<NodeId> row = view->Down(view->Root());
  for (int i = 1; i < rows_read && row.has_value(); ++i) {
    // Read the full tuple (the wrapper shipped it whole anyway).
    for (auto att = view->Down(*row); att.has_value();
         att = view->Right(*att)) {
      benchmark::DoNotOptimize(view->Fetch(*att));
    }
    row = view->Right(*row);
  }
}

/// Vectored twin of BrowseRows: one NextSiblings call pages the row list
/// (coalescing the frontier holes via FillMany), one DownAll per row reads
/// the tuple. Same rows touched, same bytes on the wire — fewer messages.
void BrowseRowsBatched(Navigable* view, int rows_read) {
  std::optional<NodeId> first = view->Down(view->Root());
  if (!first.has_value()) return;
  std::vector<NodeId> rows;
  rows.push_back(*first);
  view->NextSiblings(*first, rows_read - 1, &rows);
  for (const NodeId& row : rows) {
    std::vector<NodeId> atts;
    view->DownAll(row, &atts);
    for (const NodeId& att : atts) {
      benchmark::DoNotOptimize(view->Fetch(att));
    }
  }
}

void BM_ChunkSweepPartialBrowse(benchmark::State& state) {
  int chunk = static_cast<int>(state.range(0));
  int rows_read = static_cast<int>(state.range(1));
  bool batched = state.range(2) != 0;
  rdb::Database db = MakeDb(10000);
  for (auto _ : state) {
    wrappers::RelationalLxpWrapper::Options options;
    options.chunk = chunk;
    wrappers::RelationalLxpWrapper wrapper(&db, options);
    net::SimClock clock;
    net::Channel channel(&clock, net::ChannelOptions{});
    buffer::BufferComponent::Options buf_options;
    buf_options.channel = &channel;
    buffer::BufferComponent buffer(&wrapper, "sql:SELECT * FROM homes",
                                   buf_options);
    if (batched) {
      BrowseRowsBatched(&buffer, rows_read);
    } else {
      BrowseRows(&buffer, rows_read);
    }
    state.counters["messages"] =
        static_cast<double>(channel.stats().messages);
    state.counters["bytes"] = static_cast<double>(channel.stats().bytes);
    state.counters["sim_ms"] = clock.now_ns() / 1e6;
    state.counters["rows_scanned"] =
        static_cast<double>(wrapper.rows_scanned());
  }
}
BENCHMARK(BM_ChunkSweepPartialBrowse)
    ->ArgNames({"chunk", "rows_read", "batched"})
    ->Args({1, 100, 0})
    ->Args({1, 100, 1})
    ->Args({5, 100, 0})
    ->Args({5, 100, 1})
    ->Args({10, 100, 0})
    ->Args({10, 100, 1})
    ->Args({25, 100, 0})
    ->Args({25, 100, 1})
    ->Args({100, 100, 0})
    ->Args({100, 100, 1})
    ->Args({1000, 100, 0})
    ->Args({10000, 100, 0});

// Full-scan variant: with everything read, bigger chunks win monotonically
// on messages, and bytes stay ~flat — the crossover of the partial case
// disappears.
void BM_ChunkSweepFullScan(benchmark::State& state) {
  int chunk = static_cast<int>(state.range(0));
  bool batched = state.range(1) != 0;
  rdb::Database db = MakeDb(10000);
  for (auto _ : state) {
    wrappers::RelationalLxpWrapper::Options options;
    options.chunk = chunk;
    wrappers::RelationalLxpWrapper wrapper(&db, options);
    net::SimClock clock;
    net::Channel channel(&clock, net::ChannelOptions{});
    buffer::BufferComponent::Options buf_options;
    buf_options.channel = &channel;
    buffer::BufferComponent buffer(&wrapper, "sql:SELECT * FROM homes",
                                   buf_options);
    if (batched) {
      BrowseRowsBatched(&buffer, 10000);
    } else {
      BrowseRows(&buffer, 10000);
    }
    state.counters["messages"] =
        static_cast<double>(channel.stats().messages);
    state.counters["bytes"] = static_cast<double>(channel.stats().bytes);
    state.counters["sim_ms"] = clock.now_ns() / 1e6;
  }
}
BENCHMARK(BM_ChunkSweepFullScan)
    ->ArgNames({"chunk", "batched"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});

// Selective query views: predicate pushdown into the wrapper means hole
// ids skip over non-matching rows; chunking interacts with selectivity.
void BM_SelectiveQueryView(benchmark::State& state) {
  int chunk = static_cast<int>(state.range(0));
  rdb::Database db = MakeDb(10000);
  for (auto _ : state) {
    wrappers::RelationalLxpWrapper::Options options;
    options.chunk = chunk;
    wrappers::RelationalLxpWrapper wrapper(&db, options);
    net::SimClock clock;
    net::Channel channel(&clock, net::ChannelOptions{});
    buffer::BufferComponent::Options buf_options;
    buf_options.channel = &channel;
    buffer::BufferComponent buffer(
        &wrapper, "sql:SELECT addr FROM homes WHERE zip = 91205",
        buf_options);
    BrowseRows(&buffer, 50);  // 250 matching rows exist (1 in 40)
    state.counters["messages"] =
        static_cast<double>(channel.stats().messages);
    state.counters["bytes"] = static_cast<double>(channel.stats().bytes);
    state.counters["rows_scanned"] =
        static_cast<double>(wrapper.rows_scanned());
    state.counters["sim_ms"] = clock.now_ns() / 1e6;
  }
}
BENCHMARK(BM_SelectiveQueryView)
    ->ArgNames({"chunk"})
    ->Args({1})
    ->Args({10})
    ->Args({50})
    ->Args({250});

}  // namespace
