// Experiment E18 (DESIGN.md §4 "Fleet tier"): the session router over a
// fleet of real TCP mixd backends.
//
//   * BM_FleetPlacement — a thousand concurrent sessions opened through the
//     router across 3 loopback backends: sessions/sec (items_per_second),
//     open-latency p50/p99, bounded-load spills and sheds. Every session's
//     materialized answer is byte-checked against an in-process evaluation
//     of the same plan (`mismatches` must stay 0): placement must never
//     change answers.
//   * BM_FleetFailover — sessions mid-navigation when their backend's
//     server is stopped: the router ejects it, re-opens the survivors'
//     sessions on ring successors, and re-derives the clients' node handles
//     by path replay. `mismatches` must stay 0 — failover is correct, not
//     merely available; `failovers`/`replays` show it actually happened.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/framed_document.h"
#include "fleet/router.h"
#include "mediator/instantiate.h"
#include "mediator/plan_cache.h"
#include "mediator/translate.h"
#include "net/tcp/tcp_server.h"
#include "net/tcp/tcp_transport.h"
#include "service/service.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;
using fleet::SessionRouter;
using net::tcp::TcpFrameTransport;
using net::tcp::TcpServer;
using net::tcp::TcpServerOptions;
using net::tcp::TcpTransportOptions;
using service::MediatorService;
using service::SessionEnvironment;

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

struct Workload {
  std::unique_ptr<xml::Document> homes;
  std::unique_ptr<xml::Document> schools;
  std::string reference_term;

  explicit Workload(int n) {
    homes = xml::MakeHomesDoc(n, 10);
    schools = xml::MakeSchoolsDoc(n, 10);
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &homes_nav);
    sources.Register("schoolsSrc", &schools_nav);
    auto plan = mediator::CompileXmas(kFig3).ValueOrDie();
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    xml::Document out;
    reference_term = xml::ToTerm(xml::MaterializeInto(med->document(), &out));
  }

  void Populate(SessionEnvironment* env) const {
    env->RegisterWrapperFactory(
        "homesSrc",
        [doc = homes.get()] {
          return std::make_unique<wrappers::XmlLxpWrapper>(doc);
        },
        "homes.xml");
    env->RegisterWrapperFactory(
        "schoolsSrc",
        [doc = schools.get()] {
          return std::make_unique<wrappers::XmlLxpWrapper>(doc);
        },
        "schools.xml");
  }
};

/// N backends, each a full mixd behind a real TcpServer on loopback.
struct Fleet {
  std::vector<std::unique_ptr<SessionEnvironment>> envs;
  std::vector<std::unique_ptr<MediatorService>> services;
  std::vector<std::unique_ptr<TcpServer>> servers;

  Fleet(const Workload& workload, int n) {
    for (int i = 0; i < n; ++i) {
      auto env = std::make_unique<SessionEnvironment>();
      workload.Populate(env.get());
      MediatorService::Options opts;
      opts.backend_id = "b" + std::to_string(i);
      opts.workers = 4;
      opts.queue_capacity = 4096;
      opts.max_sessions = 4096;
      auto service = std::make_unique<MediatorService>(env.get(), opts);
      auto server = std::make_unique<TcpServer>(service.get(),
                                                TcpServerOptions{});
      if (!server->Start().ok()) continue;
      envs.push_back(std::move(env));
      services.push_back(std::move(service));
      servers.push_back(std::move(server));
    }
  }

  ~Fleet() {
    for (auto& s : servers) s->Stop();
  }

  std::vector<SessionRouter::Backend> Backends() const {
    std::vector<SessionRouter::Backend> backends;
    for (size_t i = 0; i < servers.size(); ++i) {
      uint16_t port = servers[i]->port();
      backends.push_back(SessionRouter::Backend{
          "b" + std::to_string(i), [port] {
            TcpTransportOptions copts;
            copts.port = port;
            copts.op_timeout_ns = 5'000'000'000;
            copts.connect_timeout_ns = 1'000'000'000;
            return std::make_unique<TcpFrameTransport>(copts);
          }});
    }
    return backends;
  }
};

int64_t PercentileUs(std::vector<int64_t>* ns, double p) {
  if (ns->empty()) return 0;
  std::sort(ns->begin(), ns->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(ns->size() - 1));
  return (*ns)[idx] / 1000;
}

/// `conns` client threads x `sessions-per-thread` concurrent sessions, all
/// placed by the router over 3 TCP backends and held open together.
void BM_FleetPlacement(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  const int per_thread = static_cast<int>(state.range(1));
  static const Workload* workload = new Workload(12);

  int64_t sessions_done = 0;
  int64_t mismatches = 0;
  int64_t spills = 0;
  int64_t sheds = 0;
  std::vector<int64_t> open_ns;
  for (auto _ : state) {
    Fleet fleet(*workload, 3);
    if (fleet.servers.size() != 3) {
      state.SkipWithError("fleet failed to start");
      return;
    }
    SessionRouter router(fleet.Backends(), {});

    std::atomic<int64_t> bad{0};
    std::mutex lat_mu;
    std::vector<std::thread> clients;
    clients.reserve(conns);
    for (int c = 0; c < conns; ++c) {
      clients.emplace_back([&router, &bad, &lat_mu, &open_ns, per_thread] {
        std::vector<std::unique_ptr<client::FramedDocument>> docs;
        std::vector<int64_t> lat;
        lat.reserve(per_thread);
        for (int s = 0; s < per_thread; ++s) {
          auto t0 = std::chrono::steady_clock::now();
          auto doc = router.OpenDocument(kFig3);
          auto t1 = std::chrono::steady_clock::now();
          lat.push_back(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            t1 - t0)
                            .count());
          if (!doc.ok()) {
            ++bad;
            continue;
          }
          docs.push_back(std::move(doc.value()));
        }
        // All sessions live concurrently; materialize and close them all.
        for (auto& doc : docs) {
          xml::Document out;
          if (xml::ToTerm(xml::MaterializeInto(doc.get(), &out)) !=
              workload->reference_term) {
            ++bad;
          }
          (void)doc->Close();
        }
        std::lock_guard<std::mutex> lock(lat_mu);
        open_ns.insert(open_ns.end(), lat.begin(), lat.end());
      });
    }
    for (auto& t : clients) t.join();
    sessions_done += int64_t{conns} * per_thread;
    mismatches += bad.load();
    fleet::FleetStats stats = router.stats();
    spills += stats.open_spills;
    sheds += stats.sheds;
  }
  state.SetItemsProcessed(sessions_done);
  state.counters["conns"] = static_cast<double>(conns);
  state.counters["sessions"] = static_cast<double>(conns * per_thread);
  state.counters["mismatches"] = static_cast<double>(mismatches);
  state.counters["open_spills"] = static_cast<double>(spills);
  state.counters["sheds"] = static_cast<double>(sheds);
  state.counters["open_p50_us"] =
      static_cast<double>(PercentileUs(&open_ns, 0.50));
  state.counters["open_p99_us"] =
      static_cast<double>(PercentileUs(&open_ns, 0.99));
}
BENCHMARK(BM_FleetPlacement)
    ->ArgNames({"conns", "per_thread"})
    ->Args({4, 16})
    ->Args({8, 32})
    ->Args({16, 64})  // 1024 concurrent sessions over 3 backends
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Sessions caught mid-navigation by a backend death: every one must finish
/// byte-identically on a surviving backend.
void BM_FleetFailover(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  static const Workload* workload = new Workload(12);

  int64_t sessions_done = 0;
  int64_t mismatches = 0;
  int64_t failovers = 0;
  int64_t replays = 0;
  for (auto _ : state) {
    Fleet fleet(*workload, 3);
    if (fleet.servers.size() != 3) {
      state.SkipWithError("fleet failed to start");
      return;
    }
    SessionRouter::Options opts;
    opts.health.failure_threshold = 1;
    opts.health.probe_interval_ns = int64_t{3600} * 1'000'000'000;
    SessionRouter router(fleet.Backends(), opts);

    std::vector<std::unique_ptr<client::FramedDocument>> docs;
    std::vector<NodeId> resume_from;
    int64_t bad = 0;
    for (int s = 0; s < sessions; ++s) {
      auto doc = router.OpenDocument(kFig3);
      if (!doc.ok()) {
        ++bad;
        continue;
      }
      // Partial navigation: latch a mid-document handle to resume from.
      std::optional<NodeId> child = doc.value()->Down(doc.value()->Root());
      if (!child.has_value()) {
        ++bad;
        continue;
      }
      resume_from.push_back(*child);
      docs.push_back(std::move(doc.value()));
    }

    // Kill the query's home backend under every session bound to it.
    size_t home =
        router.ring().PreferenceFor(mediator::CanonicalXmasKey(kFig3))[0];
    fleet.servers[home]->Stop();

    for (size_t i = 0; i < docs.size(); ++i) {
      if (docs[i]->Fetch(resume_from[i]).empty()) ++bad;
      xml::Document out;
      if (xml::ToTerm(xml::MaterializeInto(docs[i].get(), &out)) !=
          workload->reference_term) {
        ++bad;
      }
      (void)docs[i]->Close();
    }
    sessions_done += sessions;
    mismatches += bad;
    fleet::FleetStats stats = router.stats();
    failovers += stats.failovers;
    replays += stats.path_replays;
  }
  state.SetItemsProcessed(sessions_done);
  state.counters["sessions"] = static_cast<double>(sessions);
  state.counters["mismatches"] = static_cast<double>(mismatches);
  state.counters["failovers"] = static_cast<double>(failovers);
  state.counters["replays"] = static_cast<double>(replays);
}
BENCHMARK(BM_FleetFailover)
    ->ArgName("sessions")
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
