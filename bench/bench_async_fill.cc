// Experiment E19 (DESIGN.md): the async fill engine.
//
//   * BM_AsyncFillJoinOverTcp — the Fig. 3 two-source join where both
//     sources are served remotely (real TCP loopback) by wrappers with a
//     fixed per-exchange latency (250 µs — a fast LAN database). window=0
//     is the serialized baseline: every exchange is a demand fill, paid in
//     full on the navigation thread. window>0 turns on the concurrent
//     readahead window: independent holes go in flight through
//     TcpFrameTransport's dispatch thread (coalescing into pipelined
//     batches), so wrapper latency overlaps navigation and the *other*
//     source's exchanges. Every materialized answer is checked against the
//     in-process evaluation of the same plan (`mismatches` must stay 0);
//     the wall-clock ratio window=0 / window=8 is the tracked speedup.
//
//   * BM_BackgroundPrefetchWarm — a full scan of a wide source with
//     prefetch_per_command candidates per command. workers=0 is the
//     pre-async engine: run-ahead fills happen synchronously between
//     commands, paying the wrapper latency inline. workers=2 hands the
//     same candidates to the service's background pool: fills land in the
//     shared SourceCache and the session mailbox while navigation
//     proceeds, so the demand path finds warm holes instead of sleeping
//     wrappers. Budgeted: one FillMany exchange per job, chase bounded by
//     prefetch_fills_per_job.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer.h"
#include "buffer/lxp.h"
#include "client/framed_document.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "net/tcp/tcp_server.h"
#include "net/tcp/tcp_transport.h"
#include "service/service.h"
#include "service/wire.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;
using net::tcp::TcpFrameTransport;
using net::tcp::TcpServer;
using net::tcp::TcpServerOptions;
using net::tcp::TcpTransportOptions;
using service::MediatorService;
using service::SessionEnvironment;

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

const char* kScanQuery = R"(
CONSTRUCT <all> $H {$H} </all> {}
WHERE homesSrc homes.home $H
)";

constexpr auto kWrapperLatency = std::chrono::microseconds(250);

/// XmlLxpWrapper with a fixed per-exchange latency — a remote source whose
/// answers cost wire+execution time no matter how small the fill is. The
/// sleep happens OUTSIDE the lock and the cheap document walk inside it, so
/// concurrent exchanges overlap their latency but never race on the inner
/// wrapper — the shape a real remote database has, and what the service's
/// concurrent-export mode (`ExportWrapper(..., concurrent = true)`)
/// requires of a wrapper.
class SleepyXmlWrapper : public buffer::LxpWrapper {
 public:
  explicit SleepyXmlWrapper(const xml::Document* doc) : inner_(doc) {}

  std::string GetRoot(const std::string& uri) override {
    std::this_thread::sleep_for(kWrapperLatency);
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.GetRoot(uri);
  }
  buffer::FragmentList Fill(const std::string& hole_id) override {
    std::this_thread::sleep_for(kWrapperLatency);
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.Fill(hole_id);
  }
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override {
    std::this_thread::sleep_for(kWrapperLatency);
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.FillMany(holes, budget);
  }

 private:
  std::mutex mu_;
  wrappers::XmlLxpWrapper inner_;
};

struct JoinWorkload {
  std::unique_ptr<xml::Document> homes;
  std::unique_ptr<xml::Document> schools;
  mediator::PlanPtr plan;
  std::string reference_term;

  explicit JoinWorkload(int n) {
    homes = xml::MakeHomesDoc(n, 10);
    schools = xml::MakeSchoolsDoc(n, 10);
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &homes_nav);
    sources.Register("schoolsSrc", &schools_nav);
    plan = mediator::CompileXmas(kFig3).ValueOrDie();
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    xml::Document out;
    reference_term = xml::ToTerm(xml::MaterializeInto(med->document(), &out));
  }
};

/// Client-side join over two remote LXP sources: each source is a
/// FramedLxpWrapper over its own TCP connection, demand-paged by a
/// BufferComponent with the given readahead window.
void BM_AsyncFillJoinOverTcp(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  static const JoinWorkload* workload = new JoinWorkload(16);

  SessionEnvironment env;
  SleepyXmlWrapper homes_wrapper(workload->homes.get());
  SleepyXmlWrapper schools_wrapper(workload->schools.get());
  env.ExportWrapper("homes.xml", &homes_wrapper, /*concurrent=*/true);
  env.ExportWrapper("schools.xml", &schools_wrapper, /*concurrent=*/true);
  MediatorService::Options options;
  options.workers = 8;
  options.queue_capacity = 4096;
  MediatorService service(&env, options);
  TcpServer server(&service, TcpServerOptions{});
  if (!server.Start().ok()) {
    state.SkipWithError("TcpServer failed to start");
    return;
  }

  int64_t joins_done = 0;
  int64_t mismatches = 0;
  int64_t async_ops = 0;
  int64_t async_batches = 0;
  int64_t readahead_hits = 0;
  for (auto _ : state) {
    TcpTransportOptions copts;
    copts.port = server.port();
    TcpFrameTransport homes_transport(copts);
    TcpFrameTransport schools_transport(copts);
    service::wire::FramedLxpWrapper homes_remote(&homes_transport,
                                                 "homes.xml");
    service::wire::FramedLxpWrapper schools_remote(&schools_transport,
                                                   "schools.xml");
    buffer::BufferComponent::Options bopts;
    bopts.max_in_flight = window;
    buffer::BufferComponent homes_buf(&homes_remote, "homes.xml", bopts);
    buffer::BufferComponent schools_buf(&schools_remote, "schools.xml",
                                        bopts);
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &homes_buf);
    sources.Register("schoolsSrc", &schools_buf);
    auto med =
        mediator::LazyMediator::Build(*workload->plan, sources).ValueOrDie();
    xml::Document out;
    if (xml::ToTerm(xml::MaterializeInto(med->document(), &out)) !=
        workload->reference_term) {
      ++mismatches;
    }
    ++joins_done;
    async_ops += homes_transport.async_ops() + schools_transport.async_ops();
    async_batches +=
        homes_transport.async_batches() + schools_transport.async_batches();
    readahead_hits +=
        homes_buf.stats().readahead_hits + schools_buf.stats().readahead_hits;
  }
  server.Stop();
  state.SetItemsProcessed(joins_done);
  state.counters["window"] = static_cast<double>(window);
  state.counters["mismatches"] = static_cast<double>(mismatches);
  state.counters["async_ops"] = benchmark::Counter(
      static_cast<double>(async_ops), benchmark::Counter::kAvgIterations);
  state.counters["async_batches"] = benchmark::Counter(
      static_cast<double>(async_batches), benchmark::Counter::kAvgIterations);
  state.counters["readahead_hits"] = benchmark::Counter(
      static_cast<double>(readahead_hits), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_AsyncFillJoinOverTcp)
    ->ArgName("window")
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Full scan of a wide source: synchronous between-command prefetch
/// (workers=0, the E7 model made real-time) vs. the background pool.
void BM_BackgroundPrefetchWarm(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  static const std::unique_ptr<xml::Document>* homes =
      new std::unique_ptr<xml::Document>(xml::MakeHomesDoc(64, 10));

  std::string reference;
  {
    SessionEnvironment ref_env;
    ref_env.RegisterWrapperFactory(
        "homesSrc",
        [doc = homes->get()] {
          return std::make_unique<wrappers::XmlLxpWrapper>(doc);
        },
        "homes.xml");
    MediatorService ref_service(&ref_env, {});
    auto doc = client::FramedDocument::Open(&ref_service, kScanQuery)
                   .ValueOrDie();
    xml::Document out;
    reference = xml::ToTerm(xml::MaterializeInto(doc.get(), &out));
  }

  int64_t sessions_done = 0;
  int64_t mismatches = 0;
  int64_t prefetch_fills = 0;
  int64_t pushed_or_cached = 0;
  for (auto _ : state) {
    SessionEnvironment env;
    SessionEnvironment::WrapperOptions wo;
    wo.prefetch_per_command = 8;
    wo.background_prefetch = true;
    env.RegisterWrapperFactory(
        "homesSrc",
        [doc = homes->get()] {
          return std::make_unique<SleepyXmlWrapper>(doc);
        },
        "homes.xml", wo);
    MediatorService::Options options;
    options.workers = 2;
    options.source_cache_bytes = 16 << 20;
    options.prefetch_workers = workers;
    options.prefetch_fills_per_job = 8;
    MediatorService service(&env, options);

    auto doc =
        client::FramedDocument::Open(&service, kScanQuery).ValueOrDie();
    xml::Document out;
    if (xml::ToTerm(xml::MaterializeInto(doc.get(), &out)) != reference) {
      ++mismatches;
    }
    ++sessions_done;
    service::ServiceMetricsSnapshot snap = service.Metrics();
    prefetch_fills += snap.prefetch_fills;
    auto session = service.registry().Find(doc->session_id());
    if (session != nullptr) {
      session->RefreshSourceMetrics();
      pushed_or_cached += session->metrics().pushed_applied +
                          session->metrics().cache_hits;
    }
  }
  state.SetItemsProcessed(sessions_done);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["mismatches"] = static_cast<double>(mismatches);
  state.counters["prefetch_fills"] = benchmark::Counter(
      static_cast<double>(prefetch_fills), benchmark::Counter::kAvgIterations);
  state.counters["pushed_or_cached"] = benchmark::Counter(
      static_cast<double>(pushed_or_cached),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BackgroundPrefetchWarm)
    ->ArgName("workers")
    ->Arg(0)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
