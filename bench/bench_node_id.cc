// Microbenchmarks for the node-id hot path: minting Skolem-style ids,
// structural equality/hashing, container lookups, and the pass-through
// forwarding (`fw(...)`) ids of ValueSpace (Figs. 9/10's <id,p> rows).
//
// Every DOM-VXD command that crosses an operator boundary mints ids, so
// ns/op here multiplies through the whole plan. These benchmarks use only
// the stable public API (string-tag construction, ValueSpace, DocNavigable)
// so the same binary shape runs against any revision — the JSON emitted by
// scripts/run_bench.sh is the perf trajectory across PRs.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "algebra/value_space.h"
#include "xml/doc_navigable.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;

// Minting a binding-level id b(inst, i) over a small cycling range of i —
// the repeated re-mint pattern of operators re-serving navigations from
// already-issued bindings.
void BM_MintBindingIdCycling(benchmark::State& state) {
  int64_t instance = 7;
  int64_t i = 0;
  for (auto _ : state) {
    NodeId id("gd_b", {instance, i & 63});
    benchmark::DoNotOptimize(id);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MintBindingIdCycling);

// Minting always-fresh binding ids — the forward-iteration pattern
// (every NextBinding hands out a new handle).
void BM_MintBindingIdFresh(benchmark::State& state) {
  int64_t instance = 7;
  int64_t i = 0;
  for (auto _ : state) {
    NodeId id("gd_b", {instance, i});
    benchmark::DoNotOptimize(id);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MintBindingIdFresh);

// Nested mint: jn_b(inst, lb, ri) embedding an input binding id — the join
// shape, one level of structural nesting.
void BM_MintNestedId(benchmark::State& state) {
  int64_t instance = 9;
  NodeId inner("src", {int64_t{3}, int64_t{41}});
  int64_t i = 0;
  for (auto _ : state) {
    NodeId id("jn_b", {instance, inner, i & 63});
    benchmark::DoNotOptimize(id);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MintNestedId);

// Structural equality between ids built independently (not shared reps) —
// the comparison done by every unordered container probe.
void BM_StructuralEquality(benchmark::State& state) {
  NodeId inner_a("src", {int64_t{1}, int64_t{17}});
  NodeId inner_b("src", {int64_t{1}, int64_t{17}});
  NodeId a("jn_b", {int64_t{5}, inner_a, int64_t{12}});
  NodeId b("jn_b", {int64_t{5}, inner_b, int64_t{12}});
  for (auto _ : state) {
    bool eq = a == b;
    benchmark::DoNotOptimize(eq);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StructuralEquality);

// unordered_map keyed by NodeId — groupBy's seq_index_, ValueSpace's
// handle table, client-side pointer maps.
void BM_UnorderedMapLookup(benchmark::State& state) {
  std::unordered_map<NodeId, int64_t, NodeIdHash> map;
  std::vector<NodeId> keys;
  for (int64_t i = 0; i < 256; ++i) {
    NodeId id("gb_b", {int64_t{4}, i});
    map[id] = i;
    // Re-mint (not copy) so lookups measure structural equality unless
    // reps are shared by interning.
    keys.emplace_back("gb_b", std::vector<NodeIdComponent>{int64_t{4}, i});
  }
  size_t k = 0;
  for (auto _ : state) {
    auto it = map.find(keys[k & 255]);
    benchmark::DoNotOptimize(it);
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnorderedMapLookup);

// The pass-through path: wrap a source ref into fw(owner, handle, inner),
// navigate down, rewrap the result — one operator level of Fig. 9's
// <id, p_i> forwarding, repeated over the same subtree as a client
// revisiting issued handles does.
void BM_ValueSpacePassThrough(benchmark::State& state) {
  auto doc = xml::MakeHomesDoc(64, 8);
  xml::DocNavigable nav(doc.get());
  algebra::ValueSpace space(algebra::NextOperatorInstance());
  std::vector<NodeId> homes;
  for (auto child = nav.Down(nav.Root()); child.has_value();
       child = nav.Right(*child)) {
    homes.push_back(*child);
  }
  size_t k = 0;
  int64_t ops = 0;
  for (auto _ : state) {
    NodeId wrapped = space.Wrap(algebra::ValueRef{&nav, homes[k % homes.size()]});
    // Descend two levels through the forwarding space.
    std::optional<NodeId> down = space.Down(wrapped);
    if (down.has_value()) {
      benchmark::DoNotOptimize(space.Fetch(*down));
      std::optional<NodeId> right = space.Right(*down);
      benchmark::DoNotOptimize(right);
    }
    ops += 4;
    ++k;
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_ValueSpacePassThrough);

// Deep nesting: mint a chain id(id(id(...))) — stacked-mediator ids grow
// structurally with plan depth; hashing/equality must stay cheap.
void BM_MintDeeplyNested(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    NodeId id("src", {int64_t{1}, int64_t{0}});
    for (int d = 0; d < depth; ++d) {
      id = NodeId("fw", {int64_t{d}, int64_t{0}, id});
    }
    benchmark::DoNotOptimize(id);
  }
  state.SetItemsProcessed(state.iterations() * (depth + 1));
}
BENCHMARK(BM_MintDeeplyNested)->Arg(4)->Arg(16);

// Hash of an already-built id (precomputed — should be a load).
void BM_HashPrecomputed(benchmark::State& state) {
  NodeId id("jn_b", {int64_t{5}, NodeId("src", {int64_t{1}, int64_t{17}}),
                     int64_t{12}});
  for (auto _ : state) {
    size_t h = id.Hash();
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashPrecomputed);

}  // namespace
