// Experiment E17 (DESIGN.md): the real TCP transport on loopback.
//
//   * BM_TcpPipeline — framed command round-trips over a real socket at
//     connections x pipelining-depth: depth 1 is the classic
//     request/response lockstep (one wire RTT + one dispatch per command),
//     deeper pipelines amortize both. frames/sec (items_per_second) is the
//     tracked number; `mismatches` asserts every response decoded to the
//     expected label.
//   * BM_TcpSessionThroughput — whole sessions (open -> full framed
//     materialization of the Fig. 3 answer -> close) over concurrent real
//     connections, checked byte-for-byte against an in-process evaluation
//     of the same plan (`mismatches` must stay 0) — the BM_ServiceThroughput
//     fidelity bar, crossed with a real wire.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/framed_document.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "net/tcp/tcp_server.h"
#include "net/tcp/tcp_transport.h"
#include "service/service.h"
#include "service/wire.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;
using net::tcp::TcpFrameTransport;
using net::tcp::TcpServer;
using net::tcp::TcpServerOptions;
using net::tcp::TcpTransportOptions;
using service::MediatorService;
using service::SessionEnvironment;
using service::wire::Frame;
using service::wire::MsgType;

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

struct Workload {
  std::unique_ptr<xml::Document> homes;
  std::unique_ptr<xml::Document> schools;
  std::string reference_term;

  explicit Workload(int n) {
    homes = xml::MakeHomesDoc(n, 10);
    schools = xml::MakeSchoolsDoc(n, 10);
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &homes_nav);
    sources.Register("schoolsSrc", &schools_nav);
    auto plan = mediator::CompileXmas(kFig3).ValueOrDie();
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    xml::Document out;
    reference_term = xml::ToTerm(xml::MaterializeInto(med->document(), &out));
  }

  void Populate(SessionEnvironment* env) const {
    env->RegisterWrapperFactory(
        "homesSrc",
        [doc = homes.get()] {
          return std::make_unique<wrappers::XmlLxpWrapper>(doc);
        },
        "homes.xml");
    env->RegisterWrapperFactory(
        "schoolsSrc",
        [doc = schools.get()] {
          return std::make_unique<wrappers::XmlLxpWrapper>(doc);
        },
        "schools.xml");
  }
};

/// connections x pipelining depth over loopback. Each connection opens its
/// own session once, then round-trips batches of `depth` kFetch commands;
/// one item = one framed command answered over the real wire.
void BM_TcpPipeline(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  constexpr int kBatchesPerConn = 64;
  static const Workload* workload = new Workload(24);

  int64_t frames_done = 0;
  int64_t mismatches = 0;
  int64_t stalls = 0;
  for (auto _ : state) {
    SessionEnvironment env;
    workload->Populate(&env);
    MediatorService::Options options;
    options.workers = 4;
    options.queue_capacity = 4096;
    MediatorService service(&env, options);
    TcpServer server(&service, TcpServerOptions{});
    if (!server.Start().ok()) {
      state.SkipWithError("TcpServer failed to start");
      return;
    }

    std::atomic<int64_t> bad{0};
    std::vector<std::thread> clients;
    clients.reserve(conns);
    for (int c = 0; c < conns; ++c) {
      clients.emplace_back([&server, &bad, depth] {
        TcpTransportOptions copts;
        copts.port = server.port();
        TcpFrameTransport transport(copts);
        auto doc = client::FramedDocument::Open(&transport, kFig3);
        if (!doc.ok()) {
          bad += kBatchesPerConn * depth;
          return;
        }
        Frame fetch;
        fetch.type = MsgType::kFetch;
        fetch.session = doc.value()->session_id();
        fetch.node = doc.value()->Root();
        std::vector<std::string> batch(
            depth, service::wire::EncodeFrame(fetch));
        for (int b = 0; b < kBatchesPerConn; ++b) {
          auto responses = transport.RoundTripMany(batch);
          if (!responses.ok()) {
            bad += depth;
            continue;
          }
          for (const std::string& bytes : responses.value()) {
            auto decoded = service::wire::DecodeFrame(bytes);
            if (!decoded.ok() || decoded.value().type != MsgType::kLabel ||
                decoded.value().text != "answer") {
              ++bad;
            }
          }
        }
        (void)doc.value()->Close();
      });
    }
    for (auto& t : clients) t.join();
    frames_done += int64_t{conns} * kBatchesPerConn * depth;
    mismatches += bad.load();
    stalls += server.stats().backpressure_stalls;
    server.Stop();
  }
  state.SetItemsProcessed(frames_done);
  state.counters["conns"] = static_cast<double>(conns);
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["mismatches"] = static_cast<double>(mismatches);
  state.counters["backpressure_stalls"] = static_cast<double>(stalls);
}
BENCHMARK(BM_TcpPipeline)
    ->ArgNames({"conns", "depth"})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({1, 16})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({4, 16})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Whole sessions over concurrent real connections; every materialized
/// answer is compared against the in-process evaluation of the same plan.
void BM_TcpSessionThroughput(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  constexpr int kSessionsPerConn = 4;
  static const Workload* workload = new Workload(24);

  int64_t sessions_done = 0;
  int64_t mismatches = 0;
  for (auto _ : state) {
    SessionEnvironment env;
    workload->Populate(&env);
    MediatorService::Options options;
    options.workers = 4;
    options.queue_capacity = 4096;
    MediatorService service(&env, options);
    TcpServer server(&service, TcpServerOptions{});
    if (!server.Start().ok()) {
      state.SkipWithError("TcpServer failed to start");
      return;
    }

    std::atomic<int64_t> bad{0};
    std::vector<std::thread> clients;
    clients.reserve(conns);
    for (int c = 0; c < conns; ++c) {
      clients.emplace_back([&server, &bad] {
        TcpTransportOptions copts;
        copts.port = server.port();
        for (int s = 0; s < kSessionsPerConn; ++s) {
          TcpFrameTransport transport(copts);
          auto doc = client::FramedDocument::Open(&transport, kFig3);
          if (!doc.ok()) {
            ++bad;
            continue;
          }
          xml::Document out;
          if (xml::ToTerm(xml::MaterializeInto(doc.value().get(), &out)) !=
              workload->reference_term) {
            ++bad;
          }
          (void)doc.value()->Close();
        }
      });
    }
    for (auto& t : clients) t.join();
    sessions_done += int64_t{conns} * kSessionsPerConn;
    mismatches += bad.load();
    server.Stop();
  }
  state.SetItemsProcessed(sessions_done);
  state.counters["conns"] = static_cast<double>(conns);
  state.counters["mismatches"] = static_cast<double>(mismatches);
}
BENCHMARK(BM_TcpSessionThroughput)
    ->ArgName("conns")
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
