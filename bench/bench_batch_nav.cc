// Experiment E8 (DESIGN.md): the vectored navigation fast path — batched
// DownAll / NextSiblings / FetchSubtree against the node-at-a-time d/r/f
// loops they replace (Section 4's amortization argument, applied above the
// wrapper edge: one batch request per operator layer instead of N
// single-step translations).
//
//   * full-tree materialization through the Fig. 3/4 plan (tupleDestroy ·
//     createElement · join · select · source — 5 operator layers): wall
//     time batched vs. node-at-a-time;
//   * the same materialization over demand-paged LXP sources: simulated
//     messages and bytes, where FillMany coalesces sibling holes;
//   * paged child browsing on a buffered source: the client-visible
//     round-trip collapse (k hole fills -> one request/response pair).
#include <benchmark/benchmark.h>

#include "buffer/buffer.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "net/sim_net.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

mediator::PlanPtr Fig3Plan() {
  auto q = xmas::ParseQuery(kFig3).ValueOrDie();
  return mediator::TranslateQuery(q).ValueOrDie();
}

/// Full-tree materialization of the Fig. 3 answer over in-memory sources:
/// the pure CPU cost of the plan's navigation machinery (node-id minting,
/// memo lookups, virtual dispatch), with the network out of the picture.
void BM_MaterializeFig3(benchmark::State& state) {
  bool batched = state.range(0) != 0;
  int n = static_cast<int>(state.range(1));
  auto homes = xml::MakeHomesDoc(n, 40);
  auto schools = xml::MakeSchoolsDoc(n, 40);
  auto plan = Fig3Plan();
  for (auto _ : state) {
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &homes_nav);
    sources.Register("schoolsSrc", &schools_nav);
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    xml::Document out;
    xml::Node* root =
        batched ? xml::MaterializeInto(med->document(), &out)
                : xml::MaterializeIntoNodeAtATime(med->document(), &out);
    benchmark::DoNotOptimize(root);
  }
}
BENCHMARK(BM_MaterializeFig3)
    ->ArgNames({"batched", "homes"})
    ->Args({0, 200})
    ->Args({1, 200})
    ->Args({0, 1000})
    ->Args({1, 1000});

/// The same materialization with both sources demand-paged through
/// LXP wrappers and buffers sharing one simulated channel: the message
/// count is what FillMany coalescing is for.
void BM_MaterializeFig3Buffered(benchmark::State& state) {
  bool batched = state.range(0) != 0;
  int n = static_cast<int>(state.range(1));
  auto homes = xml::MakeHomesDoc(n, 40);
  auto schools = xml::MakeSchoolsDoc(n, 40);
  auto plan = Fig3Plan();
  for (auto _ : state) {
    wrappers::XmlLxpWrapper::Options wopts;
    wopts.chunk = 8;
    wopts.inline_limit = 0;
    wrappers::XmlLxpWrapper homes_wrapper(homes.get(), wopts);
    wrappers::XmlLxpWrapper schools_wrapper(schools.get(), wopts);
    net::SimClock clock;
    net::Channel demand(&clock, net::ChannelOptions{});
    buffer::BufferComponent::Options buf_options;
    buf_options.channel = &demand;
    buffer::BufferComponent homes_buf(&homes_wrapper, "homes", buf_options);
    buffer::BufferComponent schools_buf(&schools_wrapper, "schools",
                                        buf_options);
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &homes_buf);
    sources.Register("schoolsSrc", &schools_buf);
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    xml::Document out;
    xml::Node* root =
        batched ? xml::MaterializeInto(med->document(), &out)
                : xml::MaterializeIntoNodeAtATime(med->document(), &out);
    benchmark::DoNotOptimize(root);
    state.counters["messages"] = static_cast<double>(demand.stats().messages);
    state.counters["bytes"] = static_cast<double>(demand.stats().bytes);
    state.counters["batched_parts"] =
        static_cast<double>(demand.stats().batched_parts);
    state.counters["sim_ms"] = clock.now_ns() / 1e6;
  }
}
BENCHMARK(BM_MaterializeFig3Buffered)
    ->ArgNames({"batched", "homes"})
    ->Args({0, 200})
    ->Args({1, 200});

/// Paged child browsing on a buffered source — the client::Children /
/// FollowingSiblings workload. Node-at-a-time pays one fill round trip per
/// frontier hole; DownAll coalesces them into one FillMany exchange.
void BM_BufferedChildPaging(benchmark::State& state) {
  bool batched = state.range(0) != 0;
  int children = static_cast<int>(state.range(1));
  xml::Document doc;
  xml::Node* root = doc.NewElement("r");
  for (int i = 0; i < children; ++i) {
    xml::Node* c = doc.NewElement("c" + std::to_string(i));
    doc.AppendChild(c, doc.NewText("v"));
    doc.AppendChild(root, c);
  }
  doc.set_root(root);
  for (auto _ : state) {
    wrappers::XmlLxpWrapper::Options wopts;
    wopts.chunk = 1;  // worst case: one frontier hole per child
    wopts.inline_limit = 0;
    wrappers::XmlLxpWrapper wrapper(&doc, wopts);
    net::SimClock clock;
    net::Channel demand(&clock, net::ChannelOptions{});
    buffer::BufferComponent::Options buf_options;
    buf_options.channel = &demand;
    buffer::BufferComponent buffer(&wrapper, "u", buf_options);
    NodeId r = buffer.Root();
    if (batched) {
      std::vector<NodeId> kids;
      buffer.DownAll(r, &kids);
      for (const NodeId& k : kids) benchmark::DoNotOptimize(buffer.Fetch(k));
    } else {
      for (auto c = buffer.Down(r); c.has_value(); c = buffer.Right(*c)) {
        benchmark::DoNotOptimize(buffer.Fetch(*c));
      }
    }
    state.counters["messages"] = static_cast<double>(demand.stats().messages);
    state.counters["bytes"] = static_cast<double>(demand.stats().bytes);
    state.counters["sim_ms"] = clock.now_ns() / 1e6;
  }
}
BENCHMARK(BM_BufferedChildPaging)
    ->ArgNames({"batched", "children"})
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 512})
    ->Args({1, 512});

}  // namespace
