// Experiment E2 (DESIGN.md): the paper's central claim (Section 1) —
// demand-driven evaluation beats result materialization when users browse
// only the first few results of a broad query.
//
// Workload: the Fig. 3 homes/schools view over synthetic sources of `n`
// homes and `n` schools. The client behaves like the paper's Web user: it
// opens the first `k` med_home elements and skims each one (the home's
// address and the first school), then stops.
//
//   * lazy:  navigate the virtual answer directly;
//   * eager: materialize the complete answer first ("current mediator
//            systems ... materialize the result of the user query"), then
//            skim the first k from the copy.
//
// Reported: wall time per interaction and source navigations. Expected
// shape: lazy cost scales with k; eager cost scales with the full answer
// (which here grows superlinearly in n: groupBy over an unsorted join
// needs end-of-group scans — exactly the "unbounded" scans of Section 2).
#include <benchmark/benchmark.h>

#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

mediator::PlanPtr Fig3Plan() {
  auto q = xmas::ParseQuery(kFig3).ValueOrDie();
  return mediator::TranslateQuery(q).ValueOrDie();
}

struct Instance {
  std::unique_ptr<xml::Document> homes;
  std::unique_ptr<xml::Document> schools;
};

Instance MakeInstance(int n) {
  // ~8 homes/schools per zip keeps school lists short but non-trivial.
  int zips = std::max(1, n / 8);
  return Instance{xml::MakeHomesDoc(n, zips), xml::MakeSchoolsDoc(n, zips)};
}

/// Skims the first k med_homes: home subtree + first school's label.
int64_t SkimFirstK(Navigable* doc, int k) {
  int64_t reads = 0;
  std::optional<NodeId> mh = doc->Down(doc->Root());
  for (int i = 0; i < k && mh.has_value(); ++i) {
    std::optional<NodeId> home = doc->Down(*mh);
    if (home.has_value()) {
      // Read the home record (addr + zip leaves).
      for (auto field = doc->Down(*home); field.has_value();
           field = doc->Right(*field)) {
        if (auto leaf = doc->Down(*field); leaf.has_value()) {
          benchmark::DoNotOptimize(doc->Fetch(*leaf));
          ++reads;
        }
      }
      // Peek at the first school only.
      if (auto school = doc->Right(*home); school.has_value()) {
        benchmark::DoNotOptimize(doc->Fetch(*school));
        ++reads;
      }
    }
    mh = doc->Right(*mh);
  }
  return reads;
}

void RunLazy(benchmark::State& state, int n, int k) {
  Instance inst = MakeInstance(n);
  auto plan = Fig3Plan();
  for (auto _ : state) {
    xml::DocNavigable homes_nav(inst.homes.get());
    xml::DocNavigable schools_nav(inst.schools.get());
    NavStats stats;
    CountingNavigable homes_counted(&homes_nav, &stats);
    CountingNavigable schools_counted(&schools_nav, &stats);
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &homes_counted);
    sources.Register("schoolsSrc", &schools_counted);
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    int64_t reads = SkimFirstK(med->document(), k);
    state.counters["src_navs"] = static_cast<double>(stats.total());
    state.counters["fields_read"] = static_cast<double>(reads);
  }
}

void RunEager(benchmark::State& state, int n, int k) {
  Instance inst = MakeInstance(n);
  auto plan = Fig3Plan();
  for (auto _ : state) {
    xml::DocNavigable homes_nav(inst.homes.get());
    xml::DocNavigable schools_nav(inst.schools.get());
    NavStats stats;
    CountingNavigable homes_counted(&homes_nav, &stats);
    CountingNavigable schools_counted(&schools_nav, &stats);
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &homes_counted);
    sources.Register("schoolsSrc", &schools_counted);
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    // Materialize the complete answer, then skim the first k from the copy.
    auto full = xml::Materialize(med->document());
    xml::DocNavigable answer(full.get());
    int64_t reads = SkimFirstK(&answer, k);
    state.counters["src_navs"] = static_cast<double>(stats.total());
    state.counters["fields_read"] = static_cast<double>(reads);
    state.counters["answer_nodes_total"] =
        static_cast<double>(full->node_count());
  }
}

void BM_LazyFirstK(benchmark::State& state) {
  RunLazy(state, static_cast<int>(state.range(0)),
          static_cast<int>(state.range(1)));
}
BENCHMARK(BM_LazyFirstK)
    ->ArgNames({"n", "k"})
    ->Args({100, 3})
    ->Args({200, 3})
    ->Args({400, 3})
    ->Args({2000, 3})
    ->Args({10000, 3})
    ->Args({400, 1})
    ->Args({400, 10})
    ->Args({400, 50});

void BM_EagerFirstK(benchmark::State& state) {
  RunEager(state, static_cast<int>(state.range(0)),
           static_cast<int>(state.range(1)));
}
BENCHMARK(BM_EagerFirstK)
    ->ArgNames({"n", "k"})
    ->Args({100, 3})
    ->Args({200, 3})
    ->Args({400, 3})
    ->Args({400, 1})
    ->Args({400, 10})
    ->Args({400, 50})
    ->Unit(benchmark::kMillisecond);

// Break-even: when the client reads the WHOLE answer, lazy evaluation
// pays the same end-of-group scans that eager materialization does.
void BM_LazyFullRead(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Instance inst = MakeInstance(n);
  auto plan = Fig3Plan();
  for (auto _ : state) {
    xml::DocNavigable homes_nav(inst.homes.get());
    xml::DocNavigable schools_nav(inst.schools.get());
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &homes_nav);
    sources.Register("schoolsSrc", &schools_nav);
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    auto full = xml::Materialize(med->document());
    benchmark::DoNotOptimize(full->node_count());
  }
}
BENCHMARK(BM_LazyFullRead)
    ->ArgNames({"n"})
    ->Args({100})
    ->Args({200})
    ->Unit(benchmark::kMillisecond);

}  // namespace
