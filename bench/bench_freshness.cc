// Experiment E9 (DESIGN.md): warehousing vs. the virtual approach under
// source churn (Section 1's motivation for demand-driven evaluation).
//
// Model: a bookstore source of `n` books whose stock changes continuously.
// A user session = skim the first 5 in-stock titles. Between sessions the
// source changes (freshness matters, so the warehouse must reload before
// each session; the virtual mediator just navigates).
//
//   * warehouse: full view materialization per session + cheap local reads;
//   * virtual:   per-session source navigations proportional to what the
//                user reads.
//
// Expected shape: warehouse cost scales with n (the whole catalog per
// refresh); virtual cost is ~flat in n.
#include <benchmark/benchmark.h>

#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"

namespace {

using namespace mix;

std::unique_ptr<xml::Document> MakeStore(int n, int epoch) {
  auto doc = std::make_unique<xml::Document>();
  xml::Node* books = doc->NewElement("books");
  for (int i = 0; i < n; ++i) {
    xml::Node* book = doc->NewElement("book");
    xml::Node* t = doc->NewElement("title");
    doc->AppendChild(t, doc->NewText("title " + std::to_string(i)));
    xml::Node* k = doc->NewElement("stock");
    // Stock churns with the epoch: ~half the catalog in stock at any time.
    doc->AppendChild(
        k, doc->NewText(std::to_string((i * 7 + epoch * 13) % 9 - 4)));
    doc->AppendChild(book, t);
    doc->AppendChild(book, k);
    doc->AppendChild(books, book);
  }
  doc->set_root(books);
  return doc;
}

mediator::PlanPtr StockView() {
  auto q = xmas::ParseQuery(
      "CONSTRUCT <instock> $T {$T} </instock> {} "
      "WHERE store books.book $B AND $B stock._ $K AND $K > 0 "
      "AND $B title._ $T");
  return mediator::TranslateQuery(q.value()).ValueOrDie();
}

/// Skims the first 5 titles of the answer document.
void Skim(Navigable* doc) {
  auto t = doc->Down(doc->Root());
  for (int i = 0; i < 5 && t.has_value(); ++i) {
    benchmark::DoNotOptimize(doc->Fetch(*t));
    t = doc->Right(*t);
  }
}

void BM_VirtualUnderChurn(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto plan = StockView();
  int epoch = 0;
  for (auto _ : state) {
    // The source changed since the last session.
    auto store = MakeStore(n, epoch++);
    state.PauseTiming();  // building the instance is not the system's cost
    state.ResumeTiming();
    xml::DocNavigable nav(store.get());
    NavStats stats;
    CountingNavigable counted(&nav, &stats);
    mediator::SourceRegistry sources;
    sources.Register("store", &counted);
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    Skim(med->document());
    state.counters["src_navs_per_session"] =
        static_cast<double>(stats.total());
  }
}
BENCHMARK(BM_VirtualUnderChurn)
    ->ArgNames({"n"})
    ->Args({100})
    ->Args({1000})
    ->Args({10000});

void BM_WarehouseUnderChurn(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto plan = StockView();
  int epoch = 0;
  for (auto _ : state) {
    auto store = MakeStore(n, epoch++);
    xml::DocNavigable nav(store.get());
    NavStats stats;
    CountingNavigable counted(&nav, &stats);
    mediator::SourceRegistry sources;
    sources.Register("store", &counted);
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    // Freshness forces a reload: materialize the whole view, then read.
    auto warehouse = xml::Materialize(med->document());
    xml::DocNavigable local(warehouse.get());
    Skim(&local);
    state.counters["src_navs_per_session"] =
        static_cast<double>(stats.total());
  }
}
BENCHMARK(BM_WarehouseUnderChurn)
    ->ArgNames({"n"})
    ->Args({100})
    ->Args({1000})
    ->Args({10000});

}  // namespace
