// Experiment E13 (DESIGN.md "Fault handling & degradation"): recovery cost
// under injected source faults.
//
//   * BM_FaultRecovery — the full service stack (open -> framed
//     materialization of the Fig. 3 answer -> fidelity check -> close) with
//     per-session wrapper fault injection at 0/50/200 permille and a
//     16-attempt retry budget. items_per_second is goodput (correct
//     sessions per second); the counters report what recovery cost:
//     faults seen, retries issued, virtual backoff charged, holes degraded,
//     and the service p99. `mismatches` is expected to stay 0 — under
//     these rates a retried run is byte-identical to a fault-free one.
//   * BM_ClientRetry — the same workload with a healthy server but a faulty
//     wire (FaultyFrameTransport): client-side re-issues absorb transport
//     faults; `injected` and `client_retries` report the exchange tax.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "client/framed_document.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "net/fault.h"
#include "service/fault_transport.h"
#include "service/service.h"
#include "service/session.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;
using service::MediatorService;
using service::SessionEnvironment;

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

struct Workload {
  std::unique_ptr<xml::Document> homes;
  std::unique_ptr<xml::Document> schools;
  std::string reference_term;  ///< in-process evaluation of the same plan

  explicit Workload(int n) {
    homes = xml::MakeHomesDoc(n, 10);
    schools = xml::MakeSchoolsDoc(n, 10);
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &homes_nav);
    sources.Register("schoolsSrc", &schools_nav);
    auto plan = mediator::CompileXmas(kFig3).ValueOrDie();
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    xml::Document out;
    reference_term = xml::ToTerm(xml::MaterializeInto(med->document(), &out));
  }

  /// Registers both sources with `wo` (fault injection + retry discipline).
  void Populate(SessionEnvironment* env,
                const SessionEnvironment::WrapperOptions& wo) const {
    env->RegisterWrapperFactory(
        "homesSrc",
        [doc = homes.get()] {
          return std::make_unique<wrappers::XmlLxpWrapper>(doc);
        },
        "homes.xml", wo);
    env->RegisterWrapperFactory(
        "schoolsSrc",
        [doc = schools.get()] {
          return std::make_unique<wrappers::XmlLxpWrapper>(doc);
        },
        "schools.xml", wo);
  }
};

std::string MaterializeFramed(client::FramedDocument* doc) {
  xml::Document out;
  return xml::ToTerm(xml::MaterializeInto(doc, &out));
}

SessionEnvironment::WrapperOptions FaultOptions(int permille) {
  SessionEnvironment::WrapperOptions wo;
  const double p = permille / 1000.0;
  wo.fault.p_fail = p;
  wo.fault.p_truncate = p / 4;
  wo.fault.p_garble = p / 4;
  wo.fault.p_duplicate = p / 4;
  wo.fault.p_delay = p;
  wo.retry.max_attempts = 16;
  return wo;
}

/// One "item" = one correct session (open -> materialize -> fidelity check
/// -> close) against sources injecting faults at `permille`/1000 per
/// exchange. Goodput is items_per_second; the fault counters report the
/// recovery tax that buys the unchanged answers.
void BM_FaultRecovery(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  static const Workload* workload = new Workload(24);

  int64_t sessions = 0;
  int64_t mismatches = 0;
  int64_t faults = 0, retries = 0, backoff_ns = 0, degraded = 0;
  int64_t p99_ns = 0;
  for (auto _ : state) {
    SessionEnvironment env;
    workload->Populate(&env, FaultOptions(permille));
    MediatorService service(&env, {});

    auto opened = client::FramedDocument::Open(&service, kFig3);
    if (opened.ok()) {
      auto doc = std::move(opened).ValueOrDie();
      if (MaterializeFramed(doc.get()) != workload->reference_term) {
        ++mismatches;
      }
      (void)doc->Close();
    } else {
      ++mismatches;
    }
    ++sessions;

    service::ServiceMetricsSnapshot snap = service.Metrics();
    faults += snap.source_faults;
    retries += snap.source_retries;
    backoff_ns += snap.source_backoff_ns;
    degraded += snap.degraded_holes;
    p99_ns = std::max(p99_ns, snap.p99_ns);
  }
  state.SetItemsProcessed(sessions - mismatches);
  state.counters["fault_permille"] = static_cast<double>(permille);
  state.counters["mismatches"] = static_cast<double>(mismatches);
  state.counters["faults"] = static_cast<double>(faults);
  state.counters["retries"] = static_cast<double>(retries);
  state.counters["backoff_ms"] = static_cast<double>(backoff_ns) / 1e6;
  state.counters["degraded_holes"] = static_cast<double>(degraded);
  state.counters["p99_ms"] = static_cast<double>(p99_ns) / 1e6;
}
BENCHMARK(BM_FaultRecovery)
    ->ArgName("permille")
    ->Arg(0)
    ->Arg(50)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Healthy server, faulty wire: every round trip is refused/corrupted at
/// `permille`/1000 and re-issued by the client stub's retry policy.
void BM_ClientRetry(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  static const Workload* workload = new Workload(24);

  int64_t sessions = 0;
  int64_t mismatches = 0;
  int64_t injected = 0;
  int64_t client_retries = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    SessionEnvironment env;
    workload->Populate(&env, SessionEnvironment::WrapperOptions{});
    MediatorService service(&env, {});

    const double p = permille / 1000.0;
    net::FaultSpec spec;
    spec.p_fail = p;
    spec.p_truncate = p / 2;
    spec.p_garble = p / 2;
    spec.p_duplicate = p / 2;
    service::FaultyFrameTransport flaky(&service, spec, seed++);

    net::RetryOptions retry;
    retry.max_attempts = 16;
    auto opened =
        client::FramedDocument::Open(&flaky, kFig3, /*deadline_ns=*/0, retry);
    if (opened.ok()) {
      auto doc = std::move(opened).ValueOrDie();
      if (MaterializeFramed(doc.get()) != workload->reference_term) {
        ++mismatches;
      }
      client_retries += doc->retries();
      (void)doc->Close();
    } else {
      ++mismatches;
    }
    ++sessions;
    injected += flaky.policy().counters().injected();
  }
  state.SetItemsProcessed(sessions - mismatches);
  state.counters["fault_permille"] = static_cast<double>(permille);
  state.counters["mismatches"] = static_cast<double>(mismatches);
  state.counters["injected"] = static_cast<double>(injected);
  state.counters["client_retries"] = static_cast<double>(client_retries);
}
BENCHMARK(BM_ClientRetry)
    ->ArgName("permille")
    ->Arg(0)
    ->Arg(50)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
