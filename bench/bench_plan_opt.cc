// Experiment E15 (EXPERIMENTS.md): the plan-IR optimizer's effect on
// wrapper traffic, at byte-identical answers, across optimizer levels.
//
//   * BM_RelationalScanPushdown — a zip-equality scan over a 512-row
//     relational source, optimizer off (level=0) vs on (level=1). With the
//     predicate compiled into the wrapper's mini-SQL view only matching
//     rows cross the LXP boundary. Acceptance: `wrapper_exchanges` drops
//     >= 25% level 0 -> 1 and `mismatches` = 0.
//   * BM_RelationalJoinPushdown — the Fig. 3 join shape over two
//     relational sources (homes x schools on zip) with a constant zip
//     filter on each leg; both legs push their predicate. Same acceptance.
//   * BM_XmlFig3Levels — the original XML Fig. 3 workload. The optimizer
//     has no pushdown target here and the exchange pattern is unchanged:
//     expect `wrapper_exchanges` parity (the honest non-win; see
//     DESIGN.md §6).
//   * BM_OptimizeCost — CompileXmas + OptimizePlan latency, the one-time
//     per-plan-cache-miss cost the savings above are bought with.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "buffer/lxp.h"
#include "client/framed_document.h"
#include "mediator/passes/pass.h"
#include "mediator/translate.h"
#include "rdb/database.h"
#include "service/service.h"
#include "wrappers/relational_wrapper.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;
using service::MediatorService;
using service::SessionEnvironment;

const char* kScanQuery =
    "CONSTRUCT <hits> $R {$R} </hits> {} "
    "WHERE realty realty.homes.row $R AND $R zip._ $Z AND $Z = '91207'";

const char* kJoinQuery =
    "CONSTRUCT <pairs> <pair> $R $S {$S} </pair> {$R} </pairs> {} "
    "WHERE realty realty.homes.row $R AND $R zip._ $Z1 "
    "AND edu edu.schools.row $S AND $S zip._ $Z2 "
    "AND $Z1 = $Z2 AND $Z1 = '91207' AND $Z2 = '91207'";

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

/// Counts every LXP exchange (root fetch / fill) crossing to the wrapped
/// wrapper — the unit E15's >= 25% reduction is measured in.
class CountedWrapper : public buffer::LxpWrapper {
 public:
  CountedWrapper(std::unique_ptr<buffer::LxpWrapper> inner,
                 std::atomic<int64_t>* exchanges)
      : inner_(std::move(inner)), exchanges_(exchanges) {}

  std::string GetRoot(const std::string& uri) override {
    exchanges_->fetch_add(1, std::memory_order_relaxed);
    return inner_->GetRoot(uri);
  }
  buffer::FragmentList Fill(const std::string& hole_id) override {
    exchanges_->fetch_add(1, std::memory_order_relaxed);
    return inner_->Fill(hole_id);
  }
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override {
    exchanges_->fetch_add(1, std::memory_order_relaxed);
    return inner_->FillMany(holes, budget);
  }

 private:
  std::unique_ptr<buffer::LxpWrapper> inner_;
  std::atomic<int64_t>* exchanges_;
};

rdb::Database MakeHomesDb(int rows) {
  rdb::Database db("realty");
  rdb::Schema schema(
      {{"addr", rdb::Type::kString}, {"zip", rdb::Type::kInt}});
  rdb::Table* t = db.CreateTable("homes", schema).ValueOrDie();
  for (int i = 0; i < rows; ++i) {
    (void)t->Insert({rdb::Value("street " + std::to_string(i)),
                     rdb::Value(int64_t{91200 + i % 64})});
  }
  return db;
}

rdb::Database MakeSchoolsDb(int rows) {
  rdb::Database db("edu");
  rdb::Schema schema(
      {{"dir", rdb::Type::kString}, {"zip", rdb::Type::kInt}});
  rdb::Table* t = db.CreateTable("schools", schema).ValueOrDie();
  for (int i = 0; i < rows; ++i) {
    (void)t->Insert({rdb::Value("dir " + std::to_string(i)),
                     rdb::Value(int64_t{91200 + i % 64})});
  }
  return db;
}

void RegisterDb(SessionEnvironment* env, const std::string& name,
                const rdb::Database* db, std::atomic<int64_t>* exchanges) {
  SessionEnvironment::WrapperOptions wo;
  wo.capability = wrappers::RelationalLxpWrapper(db).Capability();
  env->RegisterWrapperFactory(
      name,
      [db, exchanges]() -> std::unique_ptr<buffer::LxpWrapper> {
        return std::make_unique<CountedWrapper>(
            std::make_unique<wrappers::RelationalLxpWrapper>(db), exchanges);
      },
      "db", wo);
}

std::string MaterializeFramed(client::FramedDocument* doc) {
  xml::Document out;
  return xml::ToTerm(xml::MaterializeInto(doc, &out));
}

struct RunTally {
  int64_t sessions = 0;
  int64_t mismatches = 0;
  int64_t exchanges = 0;
  int64_t answer_bytes = 0;
};

/// One session at the given optimizer level: open, materialize through the
/// framed client, compare to `reference` (empty = establish it).
RunTally RunOnce(SessionEnvironment* env, std::atomic<int64_t>* exchanges,
                 const std::string& query, int level,
                 std::string* reference) {
  MediatorService::Options options;
  options.workers = 2;
  options.optimizer_level = level;
  MediatorService service(env, options);

  RunTally tally;
  exchanges->store(0, std::memory_order_relaxed);
  auto doc = client::FramedDocument::Open(&service, query);
  if (!doc.ok()) {
    tally.mismatches = 1;
    return tally;
  }
  std::string term = MaterializeFramed(doc.value().get());
  (void)doc.value()->Close();
  tally.sessions = 1;
  tally.exchanges = exchanges->load(std::memory_order_relaxed);
  tally.answer_bytes = static_cast<int64_t>(term.size());
  if (reference->empty()) {
    *reference = term;
  } else if (term != *reference) {
    tally.mismatches = 1;
  }
  return tally;
}

void Report(benchmark::State& state, const RunTally& total) {
  state.SetItemsProcessed(total.sessions);
  state.counters["level"] = static_cast<double>(state.range(0));
  state.counters["mismatches"] = static_cast<double>(total.mismatches);
  state.counters["wrapper_exchanges"] = static_cast<double>(
      total.sessions > 0 ? total.exchanges / total.sessions : 0);
  state.counters["answer_bytes"] = static_cast<double>(
      total.sessions > 0 ? total.answer_bytes / total.sessions : 0);
}

/// E15 workload 1: predicate scan over one relational leg. `reference` is
/// shared across both levels, so a pushdown that changed a single answer
/// byte shows up as a mismatch.
void BM_RelationalScanPushdown(benchmark::State& state) {
  static const rdb::Database* db = new rdb::Database(MakeHomesDb(512));
  static std::string* reference = new std::string;

  std::atomic<int64_t> exchanges{0};
  SessionEnvironment env;
  RegisterDb(&env, "realty", db, &exchanges);

  RunTally total;
  for (auto _ : state) {
    RunTally run = RunOnce(&env, &exchanges, kScanQuery,
                           static_cast<int>(state.range(0)), reference);
    total.sessions += run.sessions;
    total.mismatches += run.mismatches;
    total.exchanges += run.exchanges;
    total.answer_bytes += run.answer_bytes;
  }
  Report(state, total);
}
BENCHMARK(BM_RelationalScanPushdown)
    ->ArgName("level")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// E15 workload 2: the Fig. 3 join shape over two relational legs, a
/// constant zip filter pushed into each.
void BM_RelationalJoinPushdown(benchmark::State& state) {
  static const rdb::Database* homes = new rdb::Database(MakeHomesDb(256));
  static const rdb::Database* schools = new rdb::Database(MakeSchoolsDb(256));
  static std::string* reference = new std::string;

  std::atomic<int64_t> exchanges{0};
  SessionEnvironment env;
  RegisterDb(&env, "realty", homes, &exchanges);
  RegisterDb(&env, "edu", schools, &exchanges);

  RunTally total;
  for (auto _ : state) {
    RunTally run = RunOnce(&env, &exchanges, kJoinQuery,
                           static_cast<int>(state.range(0)), reference);
    total.sessions += run.sessions;
    total.mismatches += run.mismatches;
    total.exchanges += run.exchanges;
    total.answer_bytes += run.answer_bytes;
  }
  Report(state, total);
}
BENCHMARK(BM_RelationalJoinPushdown)
    ->ArgName("level")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// The original XML Fig. 3 workload: no pushdown target, so levels 0 and 1
/// must show exchange parity — reported rather than hidden.
void BM_XmlFig3Levels(benchmark::State& state) {
  static const xml::Document* homes = xml::MakeHomesDoc(48, 10).release();
  static const xml::Document* schools = xml::MakeSchoolsDoc(48, 10).release();
  static std::string* reference = new std::string;

  std::atomic<int64_t> exchanges{0};
  SessionEnvironment env;
  env.RegisterWrapperFactory(
      "homesSrc",
      [&exchanges]() -> std::unique_ptr<buffer::LxpWrapper> {
        return std::make_unique<CountedWrapper>(
            std::make_unique<wrappers::XmlLxpWrapper>(homes), &exchanges);
      },
      "homes.xml");
  env.RegisterWrapperFactory(
      "schoolsSrc",
      [&exchanges]() -> std::unique_ptr<buffer::LxpWrapper> {
        return std::make_unique<CountedWrapper>(
            std::make_unique<wrappers::XmlLxpWrapper>(schools), &exchanges);
      },
      "schools.xml");

  RunTally total;
  for (auto _ : state) {
    RunTally run = RunOnce(&env, &exchanges, kFig3,
                           static_cast<int>(state.range(0)), reference);
    total.sessions += run.sessions;
    total.mismatches += run.mismatches;
    total.exchanges += run.exchanges;
    total.answer_bytes += run.answer_bytes;
  }
  Report(state, total);
}
BENCHMARK(BM_XmlFig3Levels)
    ->ArgName("level")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// What a plan-cache miss pays: compile alone (level 0 effectively) vs
/// compile + full pass pipeline over the join workload.
void BM_OptimizeCost(benchmark::State& state) {
  const bool optimize = state.range(0) != 0;
  mediator::passes::OptimizerOptions options;
  {
    rdb::Database homes = MakeHomesDb(8);
    rdb::Database schools = MakeSchoolsDb(8);
    buffer::PushdownCapability hc =
        wrappers::RelationalLxpWrapper(&homes).Capability();
    buffer::PushdownCapability sc =
        wrappers::RelationalLxpWrapper(&schools).Capability();
    for (const auto* cap : {&hc, &sc}) {
      mediator::SourceCapability converted;
      converted.pushdown = cap->pushdown;
      converted.database = cap->database;
      for (const auto& [table, cols] : cap->tables) {
        for (const auto& col : cols) {
          converted.tables[table].push_back(
              {col.name,
               col.type == buffer::PushdownCapability::ColumnType::kInt
                   ? mediator::ColumnType::kInt
                   : col.type ==
                             buffer::PushdownCapability::ColumnType::kDouble
                         ? mediator::ColumnType::kDouble
                         : mediator::ColumnType::kString});
        }
      }
      options.sources[cap == &hc ? "realty" : "edu"] = converted;
    }
  }

  int64_t rewrites = 0;
  for (auto _ : state) {
    auto plan = mediator::CompileXmas(kJoinQuery).ValueOrDie();
    if (optimize) {
      auto report = mediator::passes::OptimizePlan(&plan, options);
      rewrites += report.ok() ? report.value().total() : 0;
    }
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rewrites_per_plan"] = benchmark::Counter(
      static_cast<double>(rewrites), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_OptimizeCost)
    ->ArgName("optimize")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
