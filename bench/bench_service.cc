// Experiment E12 (DESIGN.md): the mixd service layer under load.
//
//   * BM_ServiceThroughput — 64 concurrent sessions of a mixed workload
//     (open, full framed materialization of the Fig. 3 answer, fidelity
//     check against an in-process evaluation, close) against worker pools
//     of 1/2/4/8: the per-session serialization must scale across
//     sessions (acceptance: >= 3x sessions/sec at 8 workers vs 1).
//     The `mismatches` counter asserts byte-identical answers: every
//     framed materialization is compared against the in-process term.
//   * BM_ServiceOverload — a burst far beyond the admission queue bound on
//     ONE session (a serial lane): the excess is refused with kUnavailable
//     error frames while every admitted request completes (`ok` +
//     `rejected` = burst, `dropped` = 0).
//   * BM_WireCodec — encode+decode cost of a representative node frame.
#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/framed_document.h"
#include "mediator/instantiate.h"
#include "mediator/translate.h"
#include "service/service.h"
#include "service/wire.h"
#include "wrappers/xml_lxp_wrapper.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;
using service::MediatorService;
using service::SessionEnvironment;

const char* kFig3 = R"(
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
)";

/// LXP wrapper decorator that sleeps per exchange — the sim-net's per-message
/// latency (net::ChannelOptions, 0.5 ms default) made real. This is what the
/// worker pool exists for: while one session waits on a source fill, other
/// sessions' commands run, so throughput scales with workers even on a
/// single-core host (the waits overlap; the CPU work does not have to).
class DelayedLxpWrapper : public buffer::LxpWrapper {
 public:
  DelayedLxpWrapper(std::unique_ptr<buffer::LxpWrapper> inner,
                    std::chrono::microseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}

  std::string GetRoot(const std::string& uri) override {
    std::this_thread::sleep_for(delay_);
    return inner_->GetRoot(uri);
  }
  buffer::FragmentList Fill(const std::string& hole_id) override {
    std::this_thread::sleep_for(delay_);
    return inner_->Fill(hole_id);
  }
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override {
    std::this_thread::sleep_for(delay_);
    return inner_->FillMany(holes, budget);
  }

 private:
  std::unique_ptr<buffer::LxpWrapper> inner_;
  std::chrono::microseconds delay_;
};

struct Workload {
  std::unique_ptr<xml::Document> homes;
  std::unique_ptr<xml::Document> schools;
  std::string reference_term;  ///< in-process evaluation of the same plan

  explicit Workload(int n) {
    homes = xml::MakeHomesDoc(n, 10);
    schools = xml::MakeSchoolsDoc(n, 10);
    xml::DocNavigable homes_nav(homes.get());
    xml::DocNavigable schools_nav(schools.get());
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &homes_nav);
    sources.Register("schoolsSrc", &schools_nav);
    auto plan = mediator::CompileXmas(kFig3).ValueOrDie();
    auto med = mediator::LazyMediator::Build(*plan, sources).ValueOrDie();
    xml::Document out;
    reference_term = xml::ToTerm(xml::MaterializeInto(med->document(), &out));
  }

  /// `fill_delay` > 0 interposes DelayedLxpWrapper on every per-session
  /// wrapper instance (remote-source workload); 0 keeps fills CPU-only.
  void Populate(SessionEnvironment* env,
                std::chrono::microseconds fill_delay =
                    std::chrono::microseconds(0)) const {
    auto factory = [fill_delay](const xml::Document* doc) {
      return [doc, fill_delay]() -> std::unique_ptr<buffer::LxpWrapper> {
        auto inner = std::make_unique<wrappers::XmlLxpWrapper>(doc);
        if (fill_delay.count() == 0) return inner;
        return std::make_unique<DelayedLxpWrapper>(std::move(inner),
                                                   fill_delay);
      };
    };
    env->RegisterWrapperFactory("homesSrc", factory(homes.get()), "homes.xml");
    env->RegisterWrapperFactory("schoolsSrc", factory(schools.get()),
                                "schools.xml");
  }
};

std::string MaterializeFramed(client::FramedDocument* doc) {
  xml::Document out;
  return xml::ToTerm(xml::MaterializeInto(doc, &out));
}

/// 64 sessions, 16 client threads, `workers` server workers; every session
/// demand-pages its sources through wrappers with a 250 µs fill latency
/// (remote sources — the mixd deployment model). One benchmark "item" = one
/// completed session (open -> materialize -> close), so items_per_second is
/// the session throughput the acceptance bar compares: more workers overlap
/// more sessions' source waits.
void BM_ServiceThroughput(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kSessions = 64;
  constexpr int kClientThreads = 16;
  constexpr std::chrono::microseconds kFillDelay{250};
  static const Workload* workload = new Workload(24);

  int64_t sessions_done = 0;
  int64_t mismatches = 0;
  int64_t requests = 0;
  for (auto _ : state) {
    SessionEnvironment env;
    workload->Populate(&env, kFillDelay);
    MediatorService::Options options;
    options.workers = workers;
    options.queue_capacity = 4096;
    MediatorService service(&env, options);

    std::atomic<int64_t> bad{0};
    std::vector<std::thread> clients;
    clients.reserve(kClientThreads);
    for (int t = 0; t < kClientThreads; ++t) {
      clients.emplace_back([&service, &bad] {
        for (int s = 0; s < kSessions / kClientThreads; ++s) {
          auto doc = client::FramedDocument::Open(&service, kFig3);
          if (!doc.ok()) {
            ++bad;
            continue;
          }
          if (MaterializeFramed(doc.value().get()) !=
              workload->reference_term) {
            ++bad;
          }
          (void)doc.value()->Close();
        }
      });
    }
    for (auto& t : clients) t.join();
    sessions_done += kSessions;
    mismatches += bad.load();
    requests += service.Metrics().frames_in;
  }
  state.SetItemsProcessed(sessions_done);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["sessions_per_iter"] = kSessions;
  state.counters["mismatches"] = static_cast<double>(mismatches);
  state.counters["requests"] = benchmark::Counter(
      static_cast<double>(requests), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceThroughput)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// A burst of 512 fetches on one session against an 8-slot admission queue:
/// graceful degradation means every request gets exactly one response —
/// kUnavailable error frames for the overflow, real answers for the rest.
void BM_ServiceOverload(benchmark::State& state) {
  static const Workload* workload = new Workload(24);
  constexpr int kBurst = 512;

  int64_t ok = 0;
  int64_t rejected = 0;
  int64_t other = 0;
  int64_t dropped = 0;
  for (auto _ : state) {
    SessionEnvironment env;
    workload->Populate(&env);
    MediatorService::Options options;
    options.workers = 2;
    options.queue_capacity = 8;
    MediatorService service(&env, options);
    auto doc = client::FramedDocument::Open(&service, kFig3).ValueOrDie();

    service::wire::Frame fetch;
    fetch.type = service::wire::MsgType::kFetch;
    fetch.session = doc->session_id();
    fetch.node = doc->Root();
    std::string bytes = service::wire::EncodeFrame(fetch);

    std::mutex mu;
    std::condition_variable cv;
    int done = 0;
    std::atomic<int64_t> ok_now{0}, rejected_now{0}, other_now{0};
    for (int i = 0; i < kBurst; ++i) {
      service.CallAsync(bytes, [&](std::string response) {
        auto frame = service::wire::DecodeFrame(response);
        Status s = frame.ok() ? frame.value().ToStatus()
                              : Status::Internal("undecodable response");
        if (s.ok()) {
          ++ok_now;
        } else if (s.code() == Status::Code::kUnavailable) {
          ++rejected_now;
        } else {
          ++other_now;
        }
        std::lock_guard<std::mutex> lock(mu);
        if (++done == kBurst) cv.notify_one();
      });
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done == kBurst; });
    }
    ok += ok_now.load();
    rejected += rejected_now.load();
    other += other_now.load();
    dropped += kBurst - done;
  }
  state.SetItemsProcessed(ok + rejected + other);
  state.counters["ok"] = static_cast<double>(ok);
  state.counters["rejected"] = static_cast<double>(rejected);
  state.counters["other_errors"] = static_cast<double>(other);
  state.counters["dropped"] = static_cast<double>(dropped);
}
BENCHMARK(BM_ServiceOverload)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Encode+decode round trip of a kDown frame carrying a nested Skolem id —
/// the per-command codec tax of going framed.
void BM_WireCodec(benchmark::State& state) {
  service::wire::Frame frame;
  frame.type = service::wire::MsgType::kDown;
  frame.session = 7;
  frame.node = NodeId(
      "b", {int64_t{12}, std::string("H"),
            NodeId("src", {int64_t{3}, NodeId("x", {int64_t{44}})})});
  int64_t bytes = 0;
  for (auto _ : state) {
    std::string encoded = service::wire::EncodeFrame(frame);
    auto decoded = service::wire::DecodeFrame(encoded);
    benchmark::DoNotOptimize(decoded);
    bytes += static_cast<int64_t>(encoded.size());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_WireCodec);

}  // namespace
