// Experiment E10 (DESIGN.md): static query∘view composition (Section 3's
// preprocessing) vs. runtime mediator stacking (Fig. 1).
//
// Workload: a selective query over the Fig. 3 homes/schools view
// (med_homes whose home has one specific zip), client reads the full
// (small) answer. Three strategies:
//
//   * stacked:            query mediator over the view mediator's virtual
//                         document;
//   * composed:           one flat plan (view unfolded into the query);
//   * composed+rewritten: the flat plan after the rewriter runs over the
//                         combined operator tree (σ-enabling, pushdowns).
//
// Expected shape: source navigations are identical across strategies (the
// selection's variable is only derivable through the view's join, so no
// strategy can skip source work), but composition removes the per-hop
// id-wrapping administration of the mediator tree — a constant-factor
// wall-time win that grows with answer size — and yields one flat plan the
// rewriter can keep working on.
#include <benchmark/benchmark.h>

#include "mediator/compose.h"
#include "mediator/instantiate.h"
#include "mediator/rewrite.h"
#include "mediator/translate.h"
#include "xmas/parser.h"
#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/random_tree.h"

namespace {

using namespace mix;

mediator::PlanPtr ViewPlan() {
  auto q = xmas::ParseQuery(
      "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} "
      "</answer> {} "
      "WHERE homesSrc homes.home $H AND $H zip._ $V1 "
      "AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2");
  return mediator::TranslateQuery(q.value()).ValueOrDie();
}

mediator::PlanPtr QueryPlan() {
  auto q = xmas::ParseQuery(
      "CONSTRUCT <hits> $M {$M} </hits> {} "
      "WHERE theView answer.med_home $M AND $M home.zip._ $Z "
      "AND $Z = '91000'");
  return mediator::TranslateQuery(q.value()).ValueOrDie();
}

struct Instance {
  std::unique_ptr<xml::Document> homes;
  std::unique_ptr<xml::Document> schools;
};

Instance MakeInstance(int n) {
  return Instance{xml::MakeHomesDoc(n, n / 8), xml::MakeSchoolsDoc(n, n / 8)};
}

void BM_StackedSelectiveQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Instance inst = MakeInstance(n);
  auto view = ViewPlan();
  auto query = QueryPlan();
  for (auto _ : state) {
    xml::DocNavigable homes_nav(inst.homes.get());
    xml::DocNavigable schools_nav(inst.schools.get());
    NavStats stats;
    CountingNavigable hc(&homes_nav, &stats);
    CountingNavigable sc(&schools_nav, &stats);
    mediator::SourceRegistry lower_sources;
    lower_sources.Register("homesSrc", &hc);
    lower_sources.Register("schoolsSrc", &sc);
    auto lower = mediator::LazyMediator::Build(*view, lower_sources).ValueOrDie();
    mediator::SourceRegistry upper_sources;
    upper_sources.Register("theView", lower->document());
    auto upper = mediator::LazyMediator::Build(*query, upper_sources).ValueOrDie();
    auto answer = xml::Materialize(upper->document());
    benchmark::DoNotOptimize(answer->node_count());
    state.counters["src_navs"] = static_cast<double>(stats.total());
  }
}
BENCHMARK(BM_StackedSelectiveQuery)
    ->ArgNames({"n"})
    ->Args({100})
    ->Args({400})
    ->Args({1000});

void RunFlat(benchmark::State& state, int n, bool rewrite) {
  Instance inst = MakeInstance(n);
  auto view = ViewPlan();
  auto query = QueryPlan();
  auto composed =
      mediator::ComposeQueryOverView(*query, "theView", *view).ValueOrDie();
  if (rewrite) {
    mediator::RewriteOptions options;
    options.sigma_capable_sources = true;
    mediator::Rewrite(&composed, options);
  }
  for (auto _ : state) {
    xml::DocNavigable homes_nav(inst.homes.get());
    xml::DocNavigable schools_nav(inst.schools.get());
    NavStats stats;
    CountingNavigable hc(&homes_nav, &stats);
    CountingNavigable sc(&schools_nav, &stats);
    mediator::SourceRegistry sources;
    sources.Register("homesSrc", &hc);
    sources.Register("schoolsSrc", &sc);
    auto med = mediator::LazyMediator::Build(*composed, sources).ValueOrDie();
    auto answer = xml::Materialize(med->document());
    benchmark::DoNotOptimize(answer->node_count());
    state.counters["src_navs"] = static_cast<double>(stats.total());
  }
}

void BM_ComposedSelectiveQuery(benchmark::State& state) {
  RunFlat(state, static_cast<int>(state.range(0)), /*rewrite=*/false);
}
BENCHMARK(BM_ComposedSelectiveQuery)
    ->ArgNames({"n"})
    ->Args({100})
    ->Args({400})
    ->Args({1000});

void BM_ComposedRewrittenSelectiveQuery(benchmark::State& state) {
  RunFlat(state, static_cast<int>(state.range(0)), /*rewrite=*/true);
}
BENCHMARK(BM_ComposedRewrittenSelectiveQuery)
    ->ArgNames({"n"})
    ->Args({100})
    ->Args({400})
    ->Args({1000});

}  // namespace
